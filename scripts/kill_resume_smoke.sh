#!/usr/bin/env bash
# Kill-and-resume smoke test: SIGKILL an `orp solve` mid-run, resume it
# from the checkpoint, and assert the final result is bit-identical to
# an uninterrupted run — the crash-safety invariant, end to end through
# the real binary and a real kill.
#
# The comparison key is the machine-readable `solve-state:` line the
# CLI prints (h-ASPL as raw f64 bits + move counters).
set -euo pipefail

ORP="${ORP_BIN:-target/release/orp}"
N="${ORP_SMOKE_N:-64}"
R="${ORP_SMOKE_R:-8}"
ITERS="${ORP_SMOKE_ITERS:-60000}"
EVERY="${ORP_SMOKE_EVERY:-500}"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

if [ ! -x "$ORP" ]; then
    echo "orp binary not found at $ORP (build with: cargo build --release)" >&2
    exit 1
fi

echo "== uninterrupted reference run"
"$ORP" solve "$N" "$R" "$ITERS" "$DIR/ref.hsg" | tee "$DIR/ref.out"
REF_STATE=$(grep '^solve-state:' "$DIR/ref.out")

echo "== interrupted run: SIGKILL mid-anneal"
"$ORP" solve "$N" "$R" "$ITERS" "$DIR/cut.hsg" \
    --checkpoint "$DIR/ck.orp" --every "$EVERY" >"$DIR/cut.out" 2>&1 &
PID=$!
# wait for the first periodic checkpoint to exist, then kill hard
for _ in $(seq 1 200); do
    [ -s "$DIR/ck.orp" ] && break
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.05
done
if kill -9 "$PID" 2>/dev/null; then
    wait "$PID" 2>/dev/null || true
    echo "killed solve (pid $PID) mid-run"
else
    # the run beat us to completion — the resume below still must be a
    # bit-identical no-op, so the assertion stays meaningful
    wait "$PID" 2>/dev/null || true
    echo "run finished before the kill landed; resuming from the completion snapshot"
fi
[ -s "$DIR/ck.orp" ] || { echo "no checkpoint was written" >&2; exit 1; }

echo "== resumed run"
"$ORP" solve "$N" "$R" "$ITERS" "$DIR/res.hsg" \
    --checkpoint "$DIR/ck.orp" --resume | tee "$DIR/res.out"
RES_STATE=$(grep '^solve-state:' "$DIR/res.out")

echo "== compare"
echo "reference: $REF_STATE"
echo "resumed:   $RES_STATE"
if [ "$REF_STATE" != "$RES_STATE" ]; then
    echo "FAIL: resumed run diverged from the uninterrupted run" >&2
    exit 1
fi
if ! cmp -s "$DIR/ref.hsg" "$DIR/res.hsg"; then
    echo "FAIL: exported graphs differ byte-for-byte" >&2
    exit 1
fi
echo "PASS: kill + resume reproduced the uninterrupted result bit-identically"
