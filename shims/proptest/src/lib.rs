//! Offline mini property-testing harness exposing the slice of the
//! proptest API this workspace uses: the [`proptest!`] macro with
//! `pat in strategy` bindings, range/tuple/[`any`] strategies with
//! [`Strategy::prop_map`], `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, and [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports
//! its seed and generated inputs so it can be replayed by hand. Cases are
//! generated from a ChaCha8 stream seeded by the test name (override the
//! base seed with `PROPTEST_SEED`).

use rand::{Rng, RngCore, SeedableRng};
pub use rand_chacha::ChaCha8Rng;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-discarded) cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Result of one generated case.
pub enum TestOutcome {
    /// Assertions held.
    Pass,
    /// `prop_assume!` rejected the inputs; the case is not counted.
    Discard,
    /// An assertion failed with this message.
    Fail(String),
}

impl TestOutcome {
    /// Failure constructor used by the assertion macros.
    pub fn fail(msg: String) -> Self {
        TestOutcome::Fail(msg)
    }
}

/// A value generator, mirroring proptest's `Strategy`.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut ChaCha8Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a default whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut ChaCha8Rng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut ChaCha8Rng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut ChaCha8Rng) -> Self {
        rng.gen()
    }
}

/// Whole-domain strategy for `T` (`any::<u64>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut ChaCha8Rng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Constant strategy (`Just(v)`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut ChaCha8Rng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Drives one property: repeats until `cfg.cases` accepted cases pass,
/// panicking on the first failure with the case number and base seed.
pub fn run_cases<F>(cfg: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut ChaCha8Rng) -> TestOutcome,
{
    let base_seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| fnv1a(name.as_bytes()));
    let mut rng = ChaCha8Rng::seed_from_u64(base_seed);
    let mut accepted = 0u32;
    let mut discarded = 0u64;
    let max_discards = cfg.cases as u64 * 64 + 256;
    while accepted < cfg.cases {
        match case(&mut rng) {
            TestOutcome::Pass => accepted += 1,
            TestOutcome::Discard => {
                discarded += 1;
                if discarded > max_discards {
                    panic!(
                        "property `{name}`: too many discarded cases \
                         ({discarded} discards for {accepted} accepted; seed {base_seed})"
                    );
                }
            }
            TestOutcome::Fail(msg) => {
                panic!(
                    "property `{name}` failed on case {accepted} \
                     (base seed {base_seed}, PROPTEST_SEED={base_seed} to replay):\n{msg}"
                );
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(config, stringify!($name), |__pt_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __pt_rng);)*
                    {
                        $body
                    }
                    $crate::TestOutcome::Pass
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return $crate::TestOutcome::fail(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return $crate::TestOutcome::fail(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return $crate::TestOutcome::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r,
            ));
        }
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::TestOutcome::Discard;
        }
    };
}

/// The glob-imported surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose((a, b) in (1u32..10, 5u64..9).prop_map(|(x, y)| (x * 2, y + 1))) {
            prop_assert!((2..20).contains(&a));
            prop_assert!((6..10).contains(&b));
        }

        #[test]
        fn assume_discards(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property `failing` failed")]
    fn failures_panic_with_seed() {
        crate::run_cases(ProptestConfig::with_cases(4), "failing", |_rng| {
            crate::TestOutcome::fail("boom".into())
        });
    }
}
