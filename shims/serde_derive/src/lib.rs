//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! local serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote, which
//! are unreachable in this build environment). Supports the shapes the
//! workspace actually derives on: structs with named fields and enums
//! with unit variants. Anything else produces a compile error naming the
//! limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the deriving type.
enum Shape {
    /// Struct with named fields, in declaration order.
    Struct { name: String, fields: Vec<String> },
    /// Enum with unit variants only.
    Enum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error tokens")
}

/// Skips one attribute (`#` followed by a bracket group) if present.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, …) if present.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected struct or enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic type `{name}` is not supported by the offline serde derive"
        ));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
                "only brace-bodied types are supported by the offline serde derive, found {other:?}"
            ))
        }
    };
    let body: Vec<TokenTree> = body.into_iter().collect();
    if kind == "struct" {
        Ok(Shape::Struct {
            name,
            fields: parse_named_fields(&body)?,
        })
    } else {
        Ok(Shape::Enum {
            name,
            variants: parse_unit_variants(&body)?,
        })
    }
}

fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_vis(body, skip_attrs(body, i));
        let field = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{field}`, found {other:?}"
                ))
            }
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        while let Some(tok) = body.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(field);
    }
    Ok(fields)
}

fn parse_unit_variants(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        let variant = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        match body.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            other => {
                return Err(format!(
                    "only unit enum variants are supported by the offline serde derive \
                     (variant `{variant}` is followed by {other:?})"
                ))
            }
        }
        variants.push(variant);
    }
    Ok(variants)
}

/// Derives the shim's `Serialize` (a `to_value` tree builder).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl")
}

/// Derives the shim's `Deserialize` (field-by-field `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.get_field({f:?})?)?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(::serde::DeError(format!(\n\
                                     \"unknown variant {{other}} for {name}\"))),\n\
                             }},\n\
                             _ => Err(::serde::DeError(\"expected string variant\".to_string())),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl")
}
