//! Offline implementation of the ChaCha8 random number generator against
//! the local `rand` shim's traits.
//!
//! This is a faithful ChaCha core (Bernstein's quarter-round, 8 rounds,
//! 64-bit block counter) keyed from a 32-byte seed. It promises
//! determinism for a fixed seed within this workspace, not stream-level
//! bit compatibility with the upstream `rand_chacha` crate.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds — the annealer's reproducible workhorse rng.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words 0..8, then 64-bit block counter, then 2 nonce words.
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread index into `buf`; 16 means exhausted.
    idx: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Number of `u32` words in a serialized [`ChaCha8Rng`] state
/// (8 key words + 2 counter halves + 16 buffer words + 1 buffer index).
pub const CHACHA_STATE_WORDS: usize = 27;

impl ChaCha8Rng {
    /// Exports the complete generator state — key, block counter, the
    /// current output buffer, and the next unread index — as a flat word
    /// array. Restoring via [`ChaCha8Rng::from_state_words`] resumes the
    /// stream bit-exactly mid-block, which is what checkpoint/resume of
    /// a seeded search needs.
    pub fn state_words(&self) -> [u32; CHACHA_STATE_WORDS] {
        let mut w = [0u32; CHACHA_STATE_WORDS];
        w[..8].copy_from_slice(&self.key);
        w[8] = self.counter as u32;
        w[9] = (self.counter >> 32) as u32;
        w[10..26].copy_from_slice(&self.buf);
        w[26] = self.idx as u32;
        w
    }

    /// Rebuilds a generator from [`ChaCha8Rng::state_words`] output.
    /// The buffer index is clamped to the exhausted position so a
    /// corrupted word cannot cause an out-of-bounds read.
    pub fn from_state_words(w: &[u32; CHACHA_STATE_WORDS]) -> Self {
        let mut key = [0u32; 8];
        key.copy_from_slice(&w[..8]);
        let mut buf = [0u32; 16];
        buf.copy_from_slice(&w[10..26]);
        Self {
            key,
            counter: w[8] as u64 | ((w[9] as u64) << 32),
            buf,
            idx: (w[26] as usize).min(16),
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // nonce left zero: one stream per key
        let input = state;
        for _ in 0..4 {
            // a double round: 4 column rounds + 4 diagonal rounds
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (o, i) in state.iter_mut().zip(&input) {
            *o = o.wrapping_add(*i);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (w, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *w = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_cover_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (mut lo, mut hi) = (1.0f64, 0.0f64);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }

    #[test]
    fn u64_is_two_u32_draws() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let words: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let mut b = ChaCha8Rng::seed_from_u64(9);
        for pair in words.chunks_exact(2) {
            assert_eq!(b.next_u64(), pair[0] as u64 | ((pair[1] as u64) << 32));
        }
    }
}
