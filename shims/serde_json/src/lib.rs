//! Offline JSON front end for the local serde shim: renders a
//! [`serde::Value`] tree to JSON text and parses JSON text back.
//!
//! Numbers keep integer/float identity (`Value::Int` vs `Value::Float`);
//! floats render with Rust's shortest round-trip formatting, so
//! `from_str(&to_string(x))` reproduces `x` exactly for every type the
//! workspace serializes.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization/deserialization error.
pub type Error = DeError;

/// Renders a value compactly.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Renders a value with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // keep float identity on re-parse
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline(out, indent, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, DeError> {
        self.skip_ws();
        match self.peek() {
            None => Err(DeError("unexpected end of input".into())),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(DeError(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| DeError(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| DeError("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| DeError("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| DeError("bad \\u escape".into()))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(DeError(format!(
                                "bad escape {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(DeError("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError("bad number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| DeError(format!("bad float `{text}`: {e}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| DeError(format!("bad integer `{text}`: {e}")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(DeError(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(DeError(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Object(vec![
            ("n".into(), Value::Int(42)),
            ("x".into(), Value::Float(2.5)),
            ("s".into(), Value::Str("a \"b\"\n".into())),
            (
                "a".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let compact = to_string(&v).unwrap();
        let parsed: Value = from_str(&compact).unwrap();
        assert_eq!(parsed, v);
        let pretty = to_string_pretty(&v).unwrap();
        let parsed: Value = from_str(&pretty).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn floats_keep_identity() {
        for f in [0.1, 1.0, 1e-12, 123456.789, f64::MAX] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn integer_whole_floats_reparse_as_float() {
        let s = to_string(&1.0f64).unwrap();
        assert_eq!(s, "1.0");
        let v: Value = from_str(&s).unwrap();
        assert_eq!(v, Value::Float(1.0));
    }

    #[test]
    fn typed_roundtrip() {
        let data = vec![(2usize, 7u64), (3, 9)];
        let s = to_string(&data).unwrap();
        assert_eq!(s, "[[2,7],[3,9]]");
        let back: Vec<(usize, u64)> = from_str(&s).unwrap();
        assert_eq!(back, data);
    }
}
