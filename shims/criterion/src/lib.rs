//! Offline micro-benchmark harness exposing the criterion API surface
//! this workspace uses: [`Criterion::bench_function`], benchmark groups
//! with `sample_size` / `bench_with_input`, [`BenchmarkId`], [`black_box`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing model: each benchmark is warmed up, the per-iteration cost is
//! estimated, then `sample_size` batches are measured and the median /
//! min / max per-iteration times are reported on stdout. Every
//! measurement is also recorded on the [`Criterion`] instance so
//! harness-free benches can post-process results (e.g. write a JSON
//! artifact). Environment knobs: `CRITERION_SAMPLE_MS` (per-batch target
//! in ms, default 20), `CRITERION_WARMUP_MS` (default 100).

use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One recorded benchmark result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Group name, empty for ungrouped benches.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median time per iteration, in nanoseconds.
    pub median_ns: f64,
    /// Fastest sampled batch, per iteration.
    pub min_ns: f64,
    /// Slowest sampled batch, per iteration.
    pub max_ns: f64,
    /// Total iterations measured.
    pub iterations: u64,
}

/// Identifier combining a function name and an input parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` id, as upstream.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from a bare parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { name: s }
    }
}

/// Passed to the benchmark closure; `iter` runs the measured body.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    sample_size: usize,
    iterations: &'a mut u64,
}

impl Bencher<'_> {
    /// Measures `body`, collecting the configured number of samples.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut body: F) {
        let warmup = env_ms("CRITERION_WARMUP_MS", 100);
        let sample_target = env_ms("CRITERION_SAMPLE_MS", 20);
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < warmup || warm_iters == 0 {
            black_box(body());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch =
            ((sample_target.as_secs_f64() / est.max(1e-9)).ceil() as u64).clamp(1, 10_000_000);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            let per_iter = t.elapsed().as_secs_f64() / batch as f64;
            self.samples.push(per_iter * 1e9);
            *self.iterations += batch;
        }
    }
}

fn env_ms(key: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default),
    )
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run("", &id.name, 10, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// All measurements recorded so far (for JSON artifacts).
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    fn run<F>(&mut self, group: &str, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(sample_size);
        let mut iterations = 0u64;
        f(&mut Bencher {
            samples: &mut samples,
            sample_size,
            iterations: &mut iterations,
        });
        if samples.is_empty() {
            // the closure never called iter(); nothing to report
            return;
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let m = Measurement {
            group: group.to_string(),
            id: id.to_string(),
            median_ns: median,
            min_ns: samples[0],
            max_ns: *samples.last().expect("non-empty samples"),
            iterations,
        };
        let label = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        println!(
            "bench {label:<52} median {:>12}   (min {}, max {}, {} iters)",
            fmt_ns(m.median_ns),
            fmt_ns(m.min_ns),
            fmt_ns(m.max_ns),
            m.iterations
        );
        self.results.push(m);
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let (name, size) = (self.name.clone(), self.sample_size);
        self.criterion.run(&name, &id.name, size, f);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let (name, size) = (self.name.clone(), self.sample_size);
        self.criterion.run(&name, &id.name, size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream-compatible no-op).
    pub fn finish(&mut self) {}
}

/// Bundles benchmark functions into a runner, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_measurements() {
        std::env::set_var("CRITERION_WARMUP_MS", "1");
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1u32 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3)
            .bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
                b.iter(|| black_box(x * x))
            });
        g.finish();
        assert_eq!(c.measurements().len(), 2);
        assert_eq!(c.measurements()[1].group, "grp");
        assert_eq!(c.measurements()[1].id, "sq/4");
        assert!(c.measurements()[0].median_ns > 0.0);
    }
}
