//! Offline serialization shim with serde-compatible *names*.
//!
//! crates.io is unreachable in the build environment, so this crate
//! provides the thin slice of serde the workspace needs: a JSON-oriented
//! [`Value`] tree, [`Serialize`] / [`Deserialize`] traits implemented via
//! that tree, and re-exported derive macros. `serde_json` (also shimmed)
//! renders and parses the tree.
//!
//! The trait *shapes* are intentionally simpler than real serde (no
//! serializer abstraction, no zero-copy); every type used in this
//! workspace serializes through an owned [`Value`].

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (kept exact; covers the full `u64`/`i64` ranges).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object.
    pub fn get_field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError(format!("missing field `{name}`"))),
            other => Err(DeError(format!(
                "expected object for field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self`, with field/type mismatches as [`DeError`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i128) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("{} out of range for {}", i, stringify!($t)))),
                    other => Err(DeError(format!("expected integer, got {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(DeError(format!("expected number, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<K: fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(DeError(format!(
                                "expected {}-tuple, got array of {}", expected, items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError(format!("expected array, got {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            <Vec<(usize, u64)>>::from_value(&vec![(1usize, 2u64)].to_value()).unwrap(),
            vec![(1, 2)]
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn field_lookup_errors_are_descriptive() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert!(v.get_field("a").is_ok());
        let e = v.get_field("b").unwrap_err();
        assert!(e.0.contains("missing field"));
    }
}
