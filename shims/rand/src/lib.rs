//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits, uniform sampling over integer and
//! float ranges, and [`seq::SliceRandom`]. Algorithms follow the upstream
//! designs (SplitMix64 seeding, Lemire-style bounded sampling, 53-bit
//! float conversion) but make no bit-compatibility promise with upstream
//! `rand` — only determinism for a fixed seed within this workspace.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of a `u64` draw).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an rng (`rng.gen::<T>()`),
/// mirroring `Standard: Distribution<T>` upstream.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample (`rng.gen_range(range)`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform draw from `[0, bound)` via widening multiply with rejection
/// (Lemire's method) — unbiased.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`] type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the rng from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (as upstream).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Subset of upstream `SliceRandom`: in-place shuffle and uniform
    /// element choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Commonly imported names (`rand::prelude::*`).
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Counter(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut rng = Counter(11);
        let mut hist = [0u32; 8];
        for _ in 0..8000 {
            hist[rng.gen_range(0..8usize)] += 1;
        }
        for &h in &hist {
            assert!((700..1300).contains(&h), "{hist:?}");
        }
    }
}
