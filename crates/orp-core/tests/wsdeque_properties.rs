//! Property tests of the Chase–Lev work-stealing deque
//! ([`orp_core::wsdeque`]): under concurrent owner pops and thief
//! steals, every pushed task is consumed *exactly once* — nothing lost,
//! nothing duplicated — and the sequential orderings hold (owner pops
//! LIFO, thieves steal FIFO).

use orp_core::wsdeque::{Deque, Steal};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicBool, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Owner pushes `tasks` ids while randomly popping; `thieves`
    /// concurrent stealers drain the rest. The union of everything
    /// consumed must be the pushed set, each id exactly once.
    #[test]
    fn concurrent_consumption_is_exactly_once(
        tasks in 1usize..600,
        thieves in 1usize..4,
        seed in any::<u64>(),
    ) {
        let dq: Deque<u64> = Deque::with_capacity(tasks);
        let push_done = AtomicBool::new(false);
        let mut owner_got: Vec<u64> = Vec::new();
        let mut stolen: Vec<Vec<u64>> = Vec::new();

        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..thieves {
                handles.push(scope.spawn(|| {
                    let mut got = Vec::new();
                    loop {
                        // Sample the flag *before* the steal attempt: an
                        // Empty observed after `push_done` was already true
                        // means drained-forever (the owner pushes nothing
                        // after setting it). Checking the flag after the
                        // steal instead would race — the owner could push
                        // everything and finish between our Empty and the
                        // flag read, stranding tasks in the deque.
                        let done = push_done.load(Ordering::Acquire);
                        match dq.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => {
                                if done {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                    got
                }));
            }

            // owner: interleave pushes with occasional pops
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for id in 0..tasks as u64 {
                assert!(dq.push(id), "sized for the full task count");
                if rng.gen_range(0u32..3) == 0 {
                    if let Some(v) = dq.pop() {
                        owner_got.push(v);
                    }
                }
            }
            // a final partial drain, then hand the rest to the thieves
            while rng.gen::<bool>() {
                match dq.pop() {
                    Some(v) => owner_got.push(v),
                    None => break,
                }
            }
            push_done.store(true, Ordering::Release);

            for h in handles {
                stolen.push(h.join().expect("thief panicked"));
            }
        });

        let mut all: Vec<u64> = owner_got;
        for s in &stolen {
            all.extend_from_slice(s);
        }
        all.sort_unstable();
        let expect: Vec<u64> = (0..tasks as u64).collect();
        prop_assert!(
            all == expect,
            "consumed multiset must equal the pushed set exactly"
        );
    }

    /// Single-threaded semantics: the owner end is a LIFO stack.
    #[test]
    fn owner_pops_lifo(len in 0usize..64, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let items: Vec<u32> = (0..len).map(|_| rng.gen()).collect();
        let dq: Deque<u32> = Deque::with_capacity(items.len().max(1));
        for &v in &items {
            prop_assert!(dq.push(v));
        }
        let mut popped = Vec::new();
        while let Some(v) = dq.pop() {
            popped.push(v);
        }
        let mut rev = items.clone();
        rev.reverse();
        prop_assert_eq!(popped, rev);
        prop_assert!(dq.is_empty());
    }

    /// Single-threaded semantics: the thief end is FIFO (oldest first),
    /// and a full ring rejects pushes without corrupting anything.
    #[test]
    fn thieves_steal_fifo_and_overflow_is_clean(len in 1usize..64, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let items: Vec<u32> = (0..len).map(|_| rng.gen_range(0u32..1000)).collect();
        // capacity rounds up to a power of two; fill to the brim
        let dq: Deque<u32> = Deque::with_capacity(items.len());
        for &v in &items {
            prop_assert!(dq.push(v));
        }
        let cap = dq.capacity();
        for pad in 0..(cap - items.len()) {
            prop_assert!(dq.push(pad as u32 + 1_000_000));
        }
        prop_assert!(!dq.push(42), "full ring must reject the push");
        prop_assert_eq!(dq.len(), cap);

        let mut taken = Vec::new();
        for _ in 0..items.len() {
            match dq.steal() {
                Steal::Success(v) => taken.push(v),
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
        prop_assert!(taken == items, "steals must surface oldest-first");
    }
}

/// A deliberately tiny deque under maximal contention: many rounds of
/// one item contended by the owner and a thief — the single-element CAS
/// race — must hand the item to exactly one side every round.
#[test]
fn single_element_race_never_duplicates() {
    let dq: Deque<u64> = Deque::with_capacity(2);
    let rounds = 20_000u64;
    let go = AtomicBool::new(false);
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let thief = scope.spawn(|| {
            let mut got = Vec::new();
            while !done.load(Ordering::Acquire) {
                if let Steal::Success(v) = dq.steal() {
                    got.push(v);
                }
            }
            got
        });
        go.store(true, Ordering::Release);
        let mut owner_got = Vec::new();
        for round in 0..rounds {
            assert!(dq.push(round));
            if let Some(v) = dq.pop() {
                owner_got.push(v);
            }
            // anything the owner lost was stolen; wait until the deque
            // drains so rounds never overlap
            while !dq.is_empty() {
                std::hint::spin_loop();
            }
        }
        done.store(true, Ordering::Release);
        let mut all = thief.join().expect("thief panicked");
        all.extend_from_slice(&owner_got);
        all.sort_unstable();
        let expect: Vec<u64> = (0..rounds).collect();
        assert_eq!(all, expect, "every round's item consumed exactly once");
    });
}
