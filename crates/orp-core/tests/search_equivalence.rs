//! Property test: the incremental [`SearchState`] engine is observationally
//! identical to from-scratch recomputation, no matter what transaction
//! history it has been through.
//!
//! Each case drives a random sequence of swap / swing / nested 2-neighbor
//! swing transactions, each randomly committed or rolled back, and after
//! every step checks that
//!
//! * `evaluate()` agrees with a fresh `path_metrics` on the owned graph,
//! * the in-place CSR matches `SwitchCsr::from_graph`,
//! * the `EdgeSet` matches `HostSwitchGraph::links()`,
//! * the host-count vector matches `host_counts()`
//!
//! (the structural checks are `SearchState::check_consistency`).

use orp_core::construct::random_general;
use orp_core::metrics::path_metrics;
use orp_core::ops::{sample_swap, sample_swing, Swing};
use orp_core::search::SearchState;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One full cross-check of the engine against scratch recomputation.
/// Returns a description of the first divergence, if any.
fn divergence(st: &mut SearchState) -> Option<String> {
    if let Err(e) = st.check_consistency() {
        return Some(e);
    }
    let fresh = path_metrics(st.graph());
    let inc = st.evaluate();
    match (inc, fresh) {
        (None, None) => None,
        (Some(a), Some(b)) => {
            if a.total_length != b.total_length
                || a.diameter != b.diameter
                || (a.haspl - b.haspl).abs() > 1e-12
            {
                Some(format!(
                    "metrics diverged: incremental {a:?} vs fresh {b:?}"
                ))
            } else {
                None
            }
        }
        (a, b) => Some(format!("connectivity verdicts diverged: {a:?} vs {b:?}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_matches_scratch_recompute(
        gseed in 0u64..32,
        opseed in proptest::prelude::any::<u64>(),
        steps in 8usize..40,
    ) {
        // 16 switches × radix 8, 2 hosts/switch on average: hostless and
        // crowded switches both occur, and swings stay plentiful.
        let g = random_general(32, 16, 8, gseed).unwrap();
        let mut st = SearchState::new(g, Some(false)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(opseed);

        for step in 0..steps {
            match rng.gen_range(0u32..3) {
                // plain swap transaction
                0 => {
                    let Some(s) = sample_swap(st.graph(), st.edges(), &mut rng, 32) else {
                        continue;
                    };
                    st.begin();
                    st.apply_swap(s).unwrap();
                    if rng.gen::<bool>() {
                        st.commit();
                    } else {
                        st.rollback();
                    }
                }
                // plain swing transaction
                1 => {
                    let Some(s) = sample_swing(st.graph(), st.edges(), &mut rng, 32) else {
                        continue;
                    };
                    st.begin();
                    st.apply_swing(s).unwrap();
                    if rng.gen::<bool>() {
                        st.commit();
                    } else {
                        st.rollback();
                    }
                }
                // nested 2-neighbor swing transaction
                _ => {
                    let Some(s1) = sample_swing(st.graph(), st.edges(), &mut rng, 32) else {
                        continue;
                    };
                    st.begin();
                    st.apply_swing(s1).unwrap();
                    let cand: Vec<u32> = st
                        .graph()
                        .neighbors(s1.c)
                        .iter()
                        .copied()
                        .filter(|&d| {
                            d != s1.a
                                && d != s1.b
                                && Swing { a: d, b: s1.c, c: s1.b }.is_valid(st.graph())
                        })
                        .collect();
                    if let Some(&d) = cand.first() {
                        let s2 = Swing { a: d, b: s1.c, c: s1.b };
                        st.begin();
                        st.apply_swing(s2).unwrap();
                        if rng.gen::<bool>() {
                            st.commit(); // fold into outer txn
                        } else {
                            st.rollback();
                        }
                    }
                    if rng.gen::<bool>() {
                        st.commit();
                    } else {
                        st.rollback();
                    }
                }
            }
            if let Some(err) = divergence(&mut st) {
                prop_assert!(false, "step {}: {}", step, err);
            }
        }
    }
}
