//! Property test: every distance-cache configuration of the search
//! engine — no cache (full batched sweeps, the oracle), dense `u16`
//! rows, compressed `u8` rows, and the sharded multi-worker repair
//! path — is observationally *bit-identical* on any transaction
//! history, including rollbacks and nested transactions.
//!
//! This is the contract that lets `SearchConfig` be a pure
//! wall-clock/memory knob: solver results can never depend on cache
//! mode, memory budget, or worker count.

use orp_core::construct::random_general;
use orp_core::ops::{sample_swap, sample_swing, Swing};
use orp_core::search::{CacheCodec, SearchConfig, SearchState};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Drives one uniformly sampled transaction (swap / swing / nested
/// 2-neighbor swing, each committed or rolled back) on `st`, with every
/// random decision drawn from `rng`. Identical `rng` streams drive
/// identical move sequences on engines holding identical graphs.
fn step(st: &mut SearchState, rng: &mut ChaCha8Rng) {
    match rng.gen_range(0u32..3) {
        0 => {
            let Some(s) = sample_swap(st.graph(), st.edges(), rng, 32) else {
                return;
            };
            st.begin();
            st.apply_swap(s).unwrap();
            if rng.gen::<bool>() {
                st.commit();
            } else {
                st.rollback();
            }
        }
        1 => {
            let Some(s) = sample_swing(st.graph(), st.edges(), rng, 32) else {
                return;
            };
            st.begin();
            st.apply_swing(s).unwrap();
            if rng.gen::<bool>() {
                st.commit();
            } else {
                st.rollback();
            }
        }
        _ => {
            let Some(s1) = sample_swing(st.graph(), st.edges(), rng, 32) else {
                return;
            };
            st.begin();
            st.apply_swing(s1).unwrap();
            let cand: Vec<u32> = st
                .graph()
                .neighbors(s1.c)
                .iter()
                .copied()
                .filter(|&d| {
                    d != s1.a
                        && d != s1.b
                        && Swing {
                            a: d,
                            b: s1.c,
                            c: s1.b,
                        }
                        .is_valid(st.graph())
                })
                .collect();
            if let Some(&d) = cand.first() {
                let s2 = Swing {
                    a: d,
                    b: s1.c,
                    c: s1.b,
                };
                st.begin();
                st.apply_swing(s2).unwrap();
                if rng.gen::<bool>() {
                    st.commit();
                } else {
                    st.rollback();
                }
            }
            if rng.gen::<bool>() {
                st.commit();
            } else {
                st.rollback();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Plain-sweep oracle vs dense cache vs compressed cache vs the
    /// sharded (multi-worker) repair path: after every step, all four
    /// engines agree on connectivity, `total_length`, diameter, and the
    /// raw h-ASPL bits.
    #[test]
    fn all_cache_configurations_are_bit_identical(
        gseed in 0u64..32,
        opseed in any::<u64>(),
        steps in 8usize..32,
    ) {
        let g = random_general(32, 16, 8, gseed).unwrap();
        let dense = SearchConfig { cache_mode: orp_core::search::CacheMode::Dense, ..SearchConfig::default() };
        let packed = SearchConfig { cache_mode: orp_core::search::CacheMode::Compressed, ..SearchConfig::default() };
        let mut engines = vec![
            ("oracle", SearchState::with_search(g.clone(), 1, SearchConfig::off()).unwrap()),
            ("dense", SearchState::with_search(g.clone(), 1, dense.clone()).unwrap()),
            ("packed", SearchState::with_search(g.clone(), 1, packed.clone()).unwrap()),
            ("dense-sharded", SearchState::with_search(g.clone(), 3, dense).unwrap()),
            ("packed-sharded", SearchState::with_search(g, 4, packed).unwrap()),
        ];
        // the codecs actually differ — otherwise this test is vacuous
        prop_assert_eq!(engines[1].1.cache_codec(), Some(CacheCodec::Dense));
        prop_assert_eq!(engines[2].1.cache_codec(), Some(CacheCodec::Packed));
        prop_assert_eq!(engines[0].1.cache_codec(), None);

        for s in 0..steps {
            // one RNG per engine, same seed: identical move streams
            let mut results = Vec::new();
            for (name, st) in engines.iter_mut() {
                let mut rng = ChaCha8Rng::seed_from_u64(opseed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                step(st, &mut rng);
                if let Err(e) = st.check_consistency() {
                    prop_assert!(false, "step {s} [{name}]: {e}");
                }
                results.push((*name, st.evaluate()));
            }
            let (base_name, base) = (results[0].0, results[0].1);
            for (name, got) in &results[1..] {
                match (base, got) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        prop_assert!(
                            a.total_length == b.total_length,
                            "step {s} {base_name} vs {name}: total_length {} vs {}",
                            a.total_length, b.total_length
                        );
                        prop_assert!(
                            a.diameter == b.diameter,
                            "step {s} {name}: diameter {} vs {}", a.diameter, b.diameter
                        );
                        prop_assert!(
                            a.haspl.to_bits() == b.haspl.to_bits(),
                            "step {s} {base_name} vs {name}: h-ASPL bits differ ({} vs {})",
                            a.haspl, b.haspl
                        );
                    }
                    (a, b) => prop_assert!(
                        false,
                        "step {s} {base_name} vs {name}: connectivity diverged {a:?} vs {b:?}"
                    ),
                }
            }
        }
    }

    /// A degenerate memory budget degrades the cache to Off — and the
    /// degraded engine still matches the oracle bit-for-bit.
    #[test]
    fn starved_budget_degrades_but_stays_exact(
        gseed in 0u64..16,
        opseed in any::<u64>(),
    ) {
        let g = random_general(24, 12, 8, gseed).unwrap();
        let starved = SearchConfig {
            memory_budget_bytes: 1, // nothing fits
            ..SearchConfig::default()
        };
        let mut tight = SearchState::with_search(g.clone(), 2, starved).unwrap();
        prop_assert!(tight.cache_codec().is_none(), "budget must force Off");
        let mut oracle = SearchState::with_search(g, 1, SearchConfig::off()).unwrap();
        for s in 0..12usize {
            let mut ra = ChaCha8Rng::seed_from_u64(opseed.wrapping_add(s as u64));
            let mut rb = ra.clone();
            step(&mut tight, &mut ra);
            step(&mut oracle, &mut rb);
            let (a, b) = (tight.evaluate(), oracle.evaluate());
            match (a, b) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    prop_assert!(a.total_length == b.total_length, "step {s}");
                    prop_assert!(a.haspl.to_bits() == b.haspl.to_bits(), "step {s}");
                }
                (a, b) => prop_assert!(false, "step {s}: diverged {a:?} vs {b:?}"),
            }
        }
    }
}
