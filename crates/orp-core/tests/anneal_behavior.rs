//! Behavioural tests of the annealer, mirroring the paper's §5.3
//! observations at miniature scale so they run in CI time.

use orp_core::anneal::{anneal, anneal_general, anneal_regular, MoveKind, SaConfig};
use orp_core::bounds::{continuous_moore_haspl, optimal_switch_count};
use orp_core::construct::random_general;
use orp_core::metrics::path_metrics;

fn cfg(iters: usize, seed: u64) -> SaConfig {
    SaConfig {
        iters,
        seed,
        ..Default::default()
    }
}

/// §5.3 Case 1: when `m ≫ m_opt`, the swing annealer parks switches with
/// zero hosts (the Fig. 8 phenomenon).
#[test]
fn overprovisioned_m_creates_unused_switches() {
    let (n, r) = (96u32, 12u32);
    let (m_opt, _) = optimal_switch_count(n as u64, r as u64);
    let m = (3 * m_opt) as u32; // far beyond the optimum
    let res = anneal_general(n, m, r, &cfg(4000, 3)).expect("constructible");
    let hist = res.graph.host_distribution();
    assert!(
        hist[0] > 0,
        "expected some host-less switches at m = {m} (m_opt = {m_opt}): {hist:?}"
    );
}

/// §5.3 Case 2: when `m < m_opt`, the non-regular annealer can undercut
/// the continuous Moore bound (tree-like graphs).
#[test]
fn below_m_opt_nonregular_can_beat_continuous_moore() {
    let (n, r) = (256u32, 24u32);
    let (m_opt, _) = optimal_switch_count(n as u64, r as u64);
    // below the optimum but still with room for the ring backbone
    let m = (m_opt * 3 / 5).max(2) as u32;
    let bound = continuous_moore_haspl(n as u64, m as u64, r as u64);
    let res = anneal_general(n, m, r, &cfg(4000, 5)).expect("constructible");
    // the annealed non-regular graph should land below or near the
    // *regular* relaxation's bound
    assert!(
        res.metrics.haspl < bound + 0.05,
        "h-ASPL {} should approach/undercut the regular bound {bound}",
        res.metrics.haspl
    );
}

/// The curve over `m` has its empirical minimum near `m_opt` (the
/// paper's central observation, Fig. 5).
#[test]
fn empirical_minimum_tracks_m_opt() {
    let (n, r) = (128u32, 12u32);
    let (m_opt, _) = optimal_switch_count(n as u64, r as u64);
    let mut best = (0u32, f64::INFINITY);
    for factor in [5u32, 8, 10, 13, 18] {
        let m = (m_opt as u32 * factor / 10).max(2);
        if let Ok(res) = anneal_general(n, m, r, &cfg(2500, 7)) {
            if res.metrics.haspl < best.1 {
                best = (m, res.metrics.haspl);
            }
        }
    }
    let lo = (m_opt as f64 * 0.65) as u32;
    let hi = (m_opt as f64 * 1.5) as u32;
    assert!(
        (lo..=hi).contains(&best.0),
        "best m {} (h-ASPL {:.4}) far from m_opt {m_opt}",
        best.0,
        best.1
    );
}

/// Swap annealing preserves regularity throughout; swing annealing
/// preserves the number of hosts and switches but not the distribution.
#[test]
fn invariants_of_each_move_kind() {
    let reg = anneal_regular(64, 16, 8, &cfg(800, 9)).expect("constructible");
    assert_eq!(reg.graph.regularity(), Some((4, 4)));
    let gen = anneal_general(64, 16, 8, &cfg(800, 9)).expect("constructible");
    assert_eq!(gen.graph.num_hosts(), 64);
    assert_eq!(gen.graph.num_switches(), 16);
    gen.graph.validate().expect("valid");
}

/// Acceptance bookkeeping is consistent: accepted ≤ proposed, and the
/// disconnected counter only counts rejections.
#[test]
fn counters_are_consistent() {
    let start = random_general(96, 24, 8, 11).unwrap();
    let res = anneal(start, MoveKind::TwoNeighborSwing, &cfg(1500, 11)).unwrap();
    assert!(res.accepted <= res.proposed);
    assert!(res.proposed <= 1500);
    // best-so-far is at least as good as a fresh evaluation of the graph
    let fresh = path_metrics(&res.graph).unwrap();
    assert!((fresh.haspl - res.metrics.haspl).abs() < 1e-12);
}

/// Higher temperature accepts more moves (on average).
#[test]
fn temperature_controls_acceptance() {
    let start = random_general(96, 24, 8, 13).unwrap();
    let cold = SaConfig {
        iters: 1000,
        t0: 1e-9,
        t_end: 1e-9,
        seed: 13,
        ..Default::default()
    };
    let hot = SaConfig {
        iters: 1000,
        t0: 0.5,
        t_end: 0.4,
        seed: 13,
        ..Default::default()
    };
    let rc = anneal(start.clone(), MoveKind::TwoNeighborSwing, &cold).unwrap();
    let rh = anneal(start, MoveKind::TwoNeighborSwing, &hot).unwrap();
    assert!(
        rh.accepted > rc.accepted,
        "hot {} should accept more than cold {}",
        rh.accepted,
        rc.accepted
    );
}

/// Parallel evaluation must not change the search trajectory.
#[test]
fn parallel_eval_is_bit_identical() {
    let mk = |parallel| SaConfig {
        iters: 600,
        seed: 17,
        parallel_eval: parallel,
        ..Default::default()
    };
    let a = anneal_general(96, 24, 8, &mk(Some(false))).unwrap();
    let b = anneal_general(96, 24, 8, &mk(Some(true))).unwrap();
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.metrics.total_length, b.metrics.total_length);
}
