//! Property test: the non-mutating [`FaultView`] is observationally
//! identical to physically pruning the failed elements out of the graph.
//!
//! Each case builds a random host-switch graph, samples a random
//! [`FaultSet`], and checks that
//!
//! * the degraded metrics computed *through* the view equal the degraded
//!   metrics of the pruned copy under an **empty** fault set (the
//!   label-invariant fields: alive hosts, reachable pairs, h-ASPL,
//!   diameter, connectedness),
//! * the surviving adjacency seen through the view matches the pruned
//!   graph's physical links edge-for-edge (pruning preserves switch ids
//!   and compacts host ids),
//! * alive-host and largest-component counts agree.

use orp_core::construct::random_general;
use orp_core::fault::{FaultSet, FaultView};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn view_matches_pruned_copy(
        gseed in 0u64..32,
        fseed in proptest::prelude::any::<u64>(),
        m in 6u32..20,
        hosts_per in 1u32..4,
        sw_pct in 0u32..30,
        ln_pct in 0u32..30,
    ) {
        let n = m * hosts_per;
        let r = hosts_per + 5;
        let g = random_general(n, m, r, gseed).expect("constructible instance");
        let faults = FaultSet::sample(
            &g,
            sw_pct as f64 / 100.0,
            ln_pct as f64 / 100.0,
            fseed,
        );
        let view = FaultView::new(&g, &faults);
        let through_view = view.degraded_metrics();

        let pruned = view.pruned_graph();
        let no_faults = FaultSet::new();
        let on_pruned = FaultView::new(&pruned, &no_faults).degraded_metrics();

        // Label-invariant observables must agree exactly.
        prop_assert_eq!(through_view.alive_hosts, on_pruned.alive_hosts);
        prop_assert_eq!(through_view.alive_hosts, pruned.num_hosts());
        prop_assert_eq!(through_view.reachable_pairs, on_pruned.reachable_pairs);
        prop_assert_eq!(through_view.diameter, on_pruned.diameter);
        prop_assert_eq!(through_view.connected, on_pruned.connected);
        match (through_view.haspl, on_pruned.haspl) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert!(
                (a - b).abs() < 1e-12,
                "h-ASPL diverged: view {a} vs pruned {b}"
            ),
            (a, b) => prop_assert!(false, "h-ASPL presence diverged: {a:?} vs {b:?}"),
        }

        // The pruned graph never carries a failed element: same number of
        // physical links as surviving view edges.
        let view_edges: usize = view
            .surviving_adjacency()
            .iter()
            .map(|row| row.len())
            .sum::<usize>()
            / 2;
        prop_assert_eq!(pruned.num_links(), view_edges);

        // Component accounting is consistent with the reachable pairs.
        let comp = view.largest_component_hosts();
        prop_assert!(comp.len() as u32 <= through_view.alive_hosts);
        let comp_pairs = comp.len() as u64 * (comp.len() as u64).saturating_sub(1) / 2;
        prop_assert!(through_view.reachable_pairs >= comp_pairs);
        if through_view.connected {
            prop_assert_eq!(comp.len() as u32, through_view.alive_hosts);
        }
    }

    #[test]
    fn empty_fault_set_is_identity(gseed in 0u64..16, m in 4u32..16) {
        let n = m * 2;
        let g = random_general(n, m, 6, gseed).expect("constructible instance");
        let no_faults = FaultSet::new();
        let view = FaultView::new(&g, &no_faults);
        let dm = view.degraded_metrics();
        prop_assert_eq!(dm.alive_hosts, g.num_hosts());
        prop_assert!((dm.reachable_fraction - 1.0).abs() < 1e-15);
        prop_assert!(dm.connected);
        let full = orp_core::metrics::path_metrics(&g);
        match (dm.haspl, full) {
            (Some(a), Some(f)) => prop_assert!((a - f.haspl).abs() < 1e-12),
            (None, None) => {}
            (a, f) => prop_assert!(false, "haspl presence diverged: {a:?} vs {f:?}"),
        }
    }

    #[test]
    fn sampling_is_deterministic(
        gseed in 0u64..16,
        fseed in proptest::prelude::any::<u64>(),
        pct in 0u32..40,
    ) {
        let g = random_general(24, 12, 6, gseed).expect("constructible instance");
        let rate = pct as f64 / 100.0;
        let a = FaultSet::sample(&g, rate, rate, fseed);
        let b = FaultSet::sample(&g, rate, rate, fseed);
        prop_assert_eq!(a.failed_switches(), b.failed_switches());
        prop_assert_eq!(a.failed_links(), b.failed_links());
        prop_assert_eq!(a.failed_host_links(), b.failed_host_links());
    }
}
