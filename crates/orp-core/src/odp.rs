//! Order/Degree Problem (ODP) interop — the Graph Golf competition the
//! paper cites as [4].
//!
//! ODP works on plain graphs (the paper's predecessor problem): given
//! order and degree, minimise diameter then ASPL. This module exports a
//! host-switch graph's *switch fabric* in the competition's edge-list
//! format, parses such files, and scores them with the competition
//! metrics (diameter/ASPL gaps against the Moore bound).

use crate::bounds::moore_aspl;
use crate::error::{GraphError, ParseError};
use crate::graph::HostSwitchGraph;
use crate::metrics::switch_aspl;

/// Graph Golf scoring of a plain (switch) graph.
#[derive(Debug, Clone, PartialEq)]
pub struct OdpScore {
    /// Number of vertices.
    pub order: u64,
    /// Maximum degree.
    pub degree: u32,
    /// Measured diameter.
    pub diameter: u32,
    /// Measured ASPL.
    pub aspl: f64,
    /// Moore lower bound on the ASPL at this order/degree.
    pub aspl_lower_bound: f64,
    /// The competition's figure of merit: `(ASPL − bound)/bound`.
    pub aspl_gap: f64,
}

/// Scores the switch fabric of `g` with the ODP metrics; `None` if the
/// fabric is disconnected or trivial.
pub fn score(g: &HostSwitchGraph) -> Option<OdpScore> {
    let m = g.num_switches() as u64;
    if m < 2 {
        return None;
    }
    let aspl = switch_aspl(g)?;
    let degree = (0..g.num_switches())
        .map(|s| g.neighbors(s).len() as u32)
        .max()
        .unwrap_or(0);
    let mut diameter = 0;
    for s in 0..g.num_switches() {
        let ecc = g.switch_distances(s).into_iter().max().unwrap();
        if ecc == u32::MAX {
            return None;
        }
        diameter = diameter.max(ecc);
    }
    let bound = moore_aspl(m, degree as u64)?;
    Some(OdpScore {
        order: m,
        degree,
        diameter,
        aspl,
        aspl_lower_bound: bound,
        aspl_gap: (aspl - bound) / bound,
    })
}

/// Serializes the switch fabric as a Graph Golf edge list: one
/// `u v` pair per line.
pub fn to_edge_list(g: &HostSwitchGraph) -> String {
    let mut links: Vec<_> = g.links().collect();
    links.sort_unstable();
    let mut out = String::new();
    for (a, b) in links {
        out.push_str(&format!("{a} {b}\n"));
    }
    out
}

/// Parses a Graph Golf edge list into a host-less host-switch graph with
/// the given radix (must cover the maximum degree).
pub fn from_edge_list(text: &str, radix: u32) -> Result<HostSwitchGraph, ParseError> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_v = 0u32;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let bad = || ParseError::BadLine {
            line_no: idx + 1,
            content: raw.to_string(),
        };
        let mut it = line.split_whitespace();
        let a: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let b: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        max_v = max_v.max(a).max(b);
        edges.push((a, b));
    }
    if edges.is_empty() {
        return Err(ParseError::BadHeader("empty edge list".into()));
    }
    let mut g = HostSwitchGraph::new(max_v + 1, radix).map_err(ParseError::Graph)?;
    for (a, b) in edges {
        g.add_link(a, b).map_err(ParseError::Graph)?;
    }
    Ok(g)
}

/// Converts an ODP solution into an ORP candidate: spreads `n` hosts
/// over the fabric as evenly as the free ports allow.
pub fn into_host_switch(mut g: HostSwitchGraph, n: u32) -> Result<HostSwitchGraph, GraphError> {
    let m = g.num_switches();
    let capacity: u32 = (0..m).map(|s| g.free_ports(s)).sum();
    if n > capacity {
        return Err(GraphError::InvalidParameters(format!(
            "fabric has {capacity} free ports, asked for {n} hosts"
        )));
    }
    let mut left = n;
    while left > 0 {
        let mut placed = false;
        for s in 0..m {
            if left == 0 {
                break;
            }
            if g.free_ports(s) > 0 {
                g.attach_host(s)?;
                left -= 1;
                placed = true;
            }
        }
        debug_assert!(placed);
        if !placed {
            break;
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::random_regular_fabric;

    #[test]
    fn scoring_a_ring() {
        let mut g = HostSwitchGraph::new(6, 3).unwrap();
        for s in 0..6 {
            g.add_link(s, (s + 1) % 6).unwrap();
        }
        let sc = score(&g).unwrap();
        assert_eq!(sc.order, 6);
        assert_eq!(sc.degree, 2);
        assert_eq!(sc.diameter, 3);
        assert!((sc.aspl - 1.8).abs() < 1e-12);
        // a ring IS the Moore bound graph for degree 2
        assert!(sc.aspl_gap.abs() < 1e-12);
    }

    #[test]
    fn random_fabric_has_positive_gap() {
        let g = random_regular_fabric(40, 4, 7).unwrap();
        let sc = score(&g).unwrap();
        assert!(sc.aspl_gap >= 0.0);
        assert!(sc.aspl >= sc.aspl_lower_bound);
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = random_regular_fabric(20, 4, 3).unwrap();
        let text = to_edge_list(&g);
        let g2 = from_edge_list(&text, 4).unwrap();
        assert_eq!(g2.num_switches(), 20);
        assert_eq!(g2.num_links(), g.num_links());
        assert_eq!(score(&g), score(&g2));
    }

    #[test]
    fn bad_edge_lists_rejected() {
        assert!(from_edge_list("", 4).is_err());
        assert!(matches!(
            from_edge_list("0 x\n", 4),
            Err(ParseError::BadLine { line_no: 1, .. })
        ));
        // duplicate edge
        assert!(from_edge_list("0 1\n1 0\n", 4).is_err());
    }

    #[test]
    fn odp_to_orp_conversion() {
        // re-parse the degree-4 fabric at radix 8 so 4 ports per switch
        // stay free for hosts
        let fabric = random_regular_fabric(20, 4, 8).unwrap();
        let g = from_edge_list(&to_edge_list(&fabric), 8).unwrap();
        let hs = into_host_switch(g, 60).unwrap();
        assert_eq!(hs.num_hosts(), 60);
        hs.validate().unwrap();
        // capacity exceeded: only 80 free ports exist
        let g = from_edge_list(&to_edge_list(&fabric), 8).unwrap();
        assert!(into_host_switch(g, 1000).is_err());
    }

    #[test]
    fn disconnected_scores_none() {
        let mut g = HostSwitchGraph::new(4, 3).unwrap();
        g.add_link(0, 1).unwrap();
        g.add_link(2, 3).unwrap();
        assert!(score(&g).is_none());
    }
}
