//! Crash-safe checkpoint format: versioned, checksummed, atomically
//! written.
//!
//! Long solves and simulations must survive preemption, OOM-kills, and
//! stalls. This module provides the on-disk container every checkpoint
//! in the workspace uses (see DESIGN.md §6):
//!
//! ```text
//! +----------------+---------+--------+-------------+---------+-------+
//! | magic "ORPCKPT0" | version | kind | payload len | payload | crc32 |
//! |     8 bytes      |   u32   | u32  |     u64     |   ...   |  u32  |
//! +----------------+---------+--------+-------------+---------+-------+
//! ```
//!
//! All integers are little-endian. The CRC-32 (IEEE) covers everything
//! after the magic up to and including the payload, so truncation,
//! bit-flips, and partially-written files are all rejected with a
//! structured [`CkptError`] instead of being deserialized into garbage
//! state. Files are written via [`atomic_write`] — write to a sibling
//! temp file, `fsync`, then `rename` — so a crash mid-write leaves
//! either the old complete checkpoint or the new complete checkpoint,
//! never a torn file.
//!
//! Domain types implement [`Checkpointable`] (a `KIND` tag plus
//! [`Encoder`]/[`Decoder`] round-trip methods) and get `save`/`load`
//! for free. Floating-point values are stored as raw IEEE-754 bits so a
//! resumed run continues with *bit-identical* state — the invariant the
//! whole layer exists to uphold.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// File magic: identifies an orp checkpoint regardless of kind.
pub const MAGIC: [u8; 8] = *b"ORPCKPT0";

/// Current container format version. Bump on any layout change; old
/// files are rejected with [`CkptError::UnsupportedVersion`].
pub const FORMAT_VERSION: u32 = 1;

/// Structured failure modes for checkpoint I/O and decoding.
///
/// `Clone + PartialEq` so it can ride inside `SaError` and the facade's
/// unified error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// Underlying filesystem operation failed (message preserved;
    /// `std::io::Error` itself is not `Clone`).
    Io(String),
    /// File (or a section inside it) ended before the declared length.
    Truncated,
    /// The file does not start with the orp checkpoint magic.
    BadMagic,
    /// The container was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The checkpoint holds a different kind of state than requested
    /// (e.g. a simulator snapshot fed to `--resume` of a solve).
    WrongKind {
        /// Kind tag found in the file header.
        found: u32,
        /// Kind tag the caller required.
        expected: u32,
    },
    /// The CRC-32 over the header and payload does not match: the file
    /// was bit-flipped, truncated at a section boundary, or otherwise
    /// corrupted after being written.
    ChecksumMismatch,
    /// The container was intact but a payload section failed validation
    /// (named in the message).
    BadSection(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(msg) => write!(f, "checkpoint i/o error: {msg}"),
            Self::Truncated => write!(f, "checkpoint file is truncated"),
            Self::BadMagic => write!(f, "not an orp checkpoint (bad magic)"),
            Self::UnsupportedVersion { found, expected } => write!(
                f,
                "unsupported checkpoint version {found} (this build reads version {expected})"
            ),
            Self::WrongKind { found, expected } => write!(
                f,
                "checkpoint holds kind {found} but kind {expected} was requested"
            ),
            Self::ChecksumMismatch => {
                write!(f, "checkpoint checksum mismatch (file corrupted)")
            }
            Self::BadSection(what) => write!(f, "invalid checkpoint section: {what}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------

/// Slicing-by-8 lookup tables: `CRC32_TABLES[0]` is the classic
/// byte-at-a-time table; `CRC32_TABLES[k][b]` advances a CRC whose next
/// input byte `b` is followed by `k` zero bytes, letting the hot loop
/// fold 8 input bytes per iteration instead of one. Same polynomial,
/// same checksum values — just ~6× the throughput, which matters now
/// that million-flow configurations are fingerprinted and checkpoints
/// reach hundreds of megabytes.
const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC32_TABLES: [[u32; 256]; 8] = crc32_tables();

/// CRC-32 (IEEE) of `data`. Public so tests can construct deliberately
/// corrupted files with a *valid* checksum over *invalid* contents.
pub fn crc32(data: &[u8]) -> u32 {
    let t = &CRC32_TABLES;
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Encoder / Decoder
// ---------------------------------------------------------------------

/// Appends little-endian primitives to a growing byte buffer.
///
/// Floats go through [`Encoder::put_f64`] as raw bits — never as text —
/// so decoded values compare bit-equal to what was saved.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// New empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u32(x);
        }
    }

    /// Appends a length-prefixed `f64` slice (raw bits per element).
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_f64(x);
        }
    }
}

/// Reads little-endian primitives back out of a byte slice, returning
/// [`CkptError::Truncated`] on any short read.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool; any nonzero byte is `true`.
    pub fn get_bool(&mut self) -> Result<bool, CkptError> {
        Ok(self.get_u8()? != 0)
    }

    /// Reads a length, bounding it by the bytes actually remaining so a
    /// corrupted length cannot trigger an enormous allocation.
    fn get_len(&mut self, elem_size: usize) -> Result<usize, CkptError> {
        let n = self.get_u64()? as usize;
        if n.checked_mul(elem_size)
            .is_none_or(|b| b > self.remaining())
        {
            return Err(CkptError::Truncated);
        }
        Ok(n)
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let n = self.get_len(1)?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CkptError> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| CkptError::BadSection("non-UTF-8 string".into()))
    }

    /// Reads a length-prefixed `u32` vector.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, CkptError> {
        let n = self.get_len(4)?;
        (0..n).map(|_| self.get_u32()).collect()
    }

    /// Reads a length-prefixed `f64` vector (raw bits per element).
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, CkptError> {
        let n = self.get_len(8)?;
        (0..n).map(|_| self.get_f64()).collect()
    }
}

// ---------------------------------------------------------------------
// Atomic file writes
// ---------------------------------------------------------------------

/// Writes `bytes` to `path` atomically: the data goes to a sibling
/// `.tmp` file, is `fsync`ed, then `rename`d over the destination.
/// Readers (and a resumed run) therefore see either the previous
/// complete file or the new complete file — never a torn write.
///
/// Used by every artifact writer in the workspace (checkpoints,
/// `results/*.json`, saved `.hsg` graphs, exported traces).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), CkptError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    // Persist the rename itself; failure here (e.g. on filesystems that
    // do not allow opening a directory) does not invalidate the data.
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Container read / write
// ---------------------------------------------------------------------

/// Wraps `payload` in the versioned, checksummed container and writes
/// it atomically to `path`.
pub fn write_checkpoint(path: &Path, kind: u32, payload: &[u8]) -> Result<(), CkptError> {
    let mut body = Vec::with_capacity(16 + payload.len());
    body.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    body.extend_from_slice(&kind.to_le_bytes());
    body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    body.extend_from_slice(payload);
    let crc = crc32(&body);
    let mut file = Vec::with_capacity(MAGIC.len() + body.len() + 4);
    file.extend_from_slice(&MAGIC);
    file.extend_from_slice(&body);
    file.extend_from_slice(&crc.to_le_bytes());
    atomic_write(path, &file)
}

/// Validates a container's magic, version, kind, declared length, and
/// checksum, returning the payload bytes.
pub fn parse_checkpoint(file: &[u8], kind: u32) -> Result<&[u8], CkptError> {
    if file.len() < MAGIC.len() {
        return Err(CkptError::Truncated);
    }
    if file[..MAGIC.len()] != MAGIC {
        return Err(CkptError::BadMagic);
    }
    let body = &file[MAGIC.len()..];
    // version + kind + len + crc is the minimum body.
    if body.len() < 4 + 4 + 8 + 4 {
        return Err(CkptError::Truncated);
    }
    let (checked, crc_bytes) = body.split_at(body.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4"));
    if crc32(checked) != stored_crc {
        // Distinguish the common truncation case (payload shorter than
        // its declared length) from in-place corruption.
        let declared = u64::from_le_bytes(checked[8..16].try_into().expect("8")) as usize;
        if checked.len() - 16 < declared {
            return Err(CkptError::Truncated);
        }
        return Err(CkptError::ChecksumMismatch);
    }
    let mut d = Decoder::new(checked);
    let version = d.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(CkptError::UnsupportedVersion {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let found_kind = d.get_u32()?;
    if found_kind != kind {
        return Err(CkptError::WrongKind {
            found: found_kind,
            expected: kind,
        });
    }
    let declared = d.get_u64()? as usize;
    if d.remaining() != declared {
        return Err(CkptError::Truncated);
    }
    Ok(&checked[16..])
}

/// Reads `path` and returns the validated payload of a `kind`
/// checkpoint.
pub fn read_checkpoint(path: &Path, kind: u32) -> Result<Vec<u8>, CkptError> {
    let file = fs::read(path)?;
    parse_checkpoint(&file, kind).map(|p| p.to_vec())
}

/// State that can be saved to and restored from a checkpoint file.
///
/// Implementors pick a unique `KIND` tag (stored in the container
/// header so a solve checkpoint can never be mistaken for a simulator
/// snapshot) and round-trip their state through [`Encoder`] /
/// [`Decoder`]. `save` / `load` handle the container and atomicity.
pub trait Checkpointable: Sized {
    /// Kind tag identifying this state family in the container header.
    const KIND: u32;

    /// Serializes the complete state into `enc`.
    fn encode_ckpt(&self, enc: &mut Encoder);

    /// Reconstructs the state from `dec`, validating every section.
    fn decode_ckpt(dec: &mut Decoder<'_>) -> Result<Self, CkptError>;

    /// Writes this state to `path` as an atomic, checksummed
    /// checkpoint.
    fn save(&self, path: &Path) -> Result<(), CkptError> {
        let mut enc = Encoder::new();
        self.encode_ckpt(&mut enc);
        write_checkpoint(path, Self::KIND, &enc.into_bytes())
    }

    /// Loads and validates a checkpoint of this kind from `path`.
    fn load(path: &Path) -> Result<Self, CkptError> {
        let payload = read_checkpoint(path, Self::KIND)?;
        let mut dec = Decoder::new(&payload);
        let v = Self::decode_ckpt(&mut dec)?;
        Ok(v)
    }
}

/// Kind tag for annealer checkpoints ([`crate::anneal::Anneal`]).
pub const KIND_ANNEAL: u32 = 1;
/// Kind tag for event-simulator checkpoints (`orp-netsim`).
pub const KIND_SIM: u32 = 2;
/// Kind tag for parallel-tempering checkpoints
/// ([`crate::temper::Temper`]): a ladder header plus one embedded
/// annealer payload per replica.
pub const KIND_TEMPER: u32 = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Demo {
        a: u64,
        x: f64,
        tag: String,
        v: Vec<u32>,
    }

    impl Checkpointable for Demo {
        const KIND: u32 = 77;
        fn encode_ckpt(&self, enc: &mut Encoder) {
            enc.put_u64(self.a);
            enc.put_f64(self.x);
            enc.put_str(&self.tag);
            enc.put_u32_slice(&self.v);
        }
        fn decode_ckpt(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
            Ok(Self {
                a: dec.get_u64()?,
                x: dec.get_f64()?,
                tag: dec.get_str()?,
                v: dec.get_u32_vec()?,
            })
        }
    }

    fn demo() -> Demo {
        Demo {
            a: 0xDEAD_BEEF_CAFE,
            x: -0.1234567891011,
            tag: "hello".into(),
            v: vec![1, 2, 3, u32::MAX],
        }
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32/IEEE of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn round_trip_through_file() {
        let dir = std::env::temp_dir().join(format!("orp_ckpt_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.orp");
        let d = demo();
        d.save(&path).unwrap();
        assert_eq!(Demo::load(&path).unwrap(), d);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let mut enc = Encoder::new();
        demo().encode_ckpt(&mut enc);
        let payload = enc.into_bytes();
        let mut body = Vec::new();
        body.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        body.extend_from_slice(&Demo::KIND.to_le_bytes());
        body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        body.extend_from_slice(&payload);
        let crc = crc32(&body);
        let mut file = Vec::new();
        file.extend_from_slice(&MAGIC);
        file.extend_from_slice(&body);
        file.extend_from_slice(&crc.to_le_bytes());
        assert!(parse_checkpoint(&file, Demo::KIND).is_ok());
        for cut in 0..file.len() {
            let err = parse_checkpoint(&file[..cut], Demo::KIND).unwrap_err();
            assert!(
                matches!(
                    err,
                    CkptError::Truncated | CkptError::BadMagic | CkptError::ChecksumMismatch
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn bit_flip_rejected() {
        let mut enc = Encoder::new();
        demo().encode_ckpt(&mut enc);
        let payload = enc.into_bytes();
        let mut body = Vec::new();
        body.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        body.extend_from_slice(&Demo::KIND.to_le_bytes());
        body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        body.extend_from_slice(&payload);
        let crc = crc32(&body);
        let mut file = Vec::new();
        file.extend_from_slice(&MAGIC);
        file.extend_from_slice(&body);
        file.extend_from_slice(&crc.to_le_bytes());
        // Flip one bit somewhere in the payload region.
        let idx = MAGIC.len() + 16 + payload.len() / 2;
        file[idx] ^= 0x10;
        assert_eq!(
            parse_checkpoint(&file, Demo::KIND).unwrap_err(),
            CkptError::ChecksumMismatch
        );
    }

    #[test]
    fn version_and_kind_mismatch_rejected() {
        let mut body = Vec::new();
        body.extend_from_slice(&(FORMAT_VERSION + 9).to_le_bytes());
        body.extend_from_slice(&Demo::KIND.to_le_bytes());
        body.extend_from_slice(&0u64.to_le_bytes());
        let crc = crc32(&body);
        let mut file = Vec::new();
        file.extend_from_slice(&MAGIC);
        file.extend_from_slice(&body);
        file.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            parse_checkpoint(&file, Demo::KIND).unwrap_err(),
            CkptError::UnsupportedVersion { .. }
        ));

        let mut body = Vec::new();
        body.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        body.extend_from_slice(&99u32.to_le_bytes());
        body.extend_from_slice(&0u64.to_le_bytes());
        let crc = crc32(&body);
        let mut file = Vec::new();
        file.extend_from_slice(&MAGIC);
        file.extend_from_slice(&body);
        file.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            parse_checkpoint(&file, Demo::KIND).unwrap_err(),
            CkptError::WrongKind {
                found: 99,
                expected: 77
            }
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            parse_checkpoint(b"NOTACKPTxxxxxxxxxxxxxxxxxxxx", 1).unwrap_err(),
            CkptError::BadMagic
        );
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = std::env::temp_dir().join(format!("orp_aw_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.bin");
        atomic_write(&path, b"first version").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temp file left behind.
        assert!(!dir.join("out.bin.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
