//! Randomized search for ORP (Section 5): simulated annealing with the
//! swap operation (restricted to regular host-switch graphs, §5.1) and
//! with the 2-neighbor swing operation (arbitrary host-switch graphs,
//! §5.2), plus the end-to-end [`solve_orp`] pipeline of §5.3 that first
//! predicts `m_opt` from the continuous Moore bound.

use crate::ckpt::{self, CkptError, Decoder, Encoder};
use crate::construct::{random_general, random_regular};
use crate::error::{GraphError, SaError, WorkerPanic};
use crate::graph::HostSwitchGraph;
use crate::metrics::PathMetrics;
use crate::ops::{sample_swap, sample_swing, Swing};
use crate::search::{
    resolve_parallel_eval, EvalOutcome, EvalPathKind, SearchConfig, SearchState, EARLY_REJECT_LOG,
};
use crate::solver::Solver;
use crate::watchdog::{ProgressHandle, WatchSource, Watchdog, WatchdogConfig};
use orp_obs::{Event, Recorder, StreamSink};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::{ChaCha8Rng, CHACHA_STATE_WORDS};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Default checkpoint stride for [`Anneal::checkpoint`]: a save every
/// this many iterations keeps the measured overhead well under 2% of
/// wall time (see `results/BENCH_ckpt_overhead.json`) while bounding
/// lost work on a kill.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 5000;

/// Which neighbourhood the annealer explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveKind {
    /// Swap only (Fig. 2) — preserves the host distribution, so a regular
    /// initial graph stays regular.
    Swap,
    /// Plain swing only (Fig. 3) — ablation; the paper argues this alone
    /// is insufficient because it always changes host-switch edges.
    Swing,
    /// The 2-neighbor swing of §5.2 (Fig. 4): try a swing; if rejected,
    /// try the follow-up swing whose net effect is a swap.
    TwoNeighborSwing,
}

impl MoveKind {
    fn code(self) -> u8 {
        match self {
            Self::Swap => 0,
            Self::Swing => 1,
            Self::TwoNeighborSwing => 2,
        }
    }

    fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(Self::Swap),
            1 => Some(Self::Swing),
            2 => Some(Self::TwoNeighborSwing),
            _ => None,
        }
    }
}

/// Annealing schedule and bookkeeping knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SaConfig {
    /// Number of proposed moves.
    pub iters: usize,
    /// Initial temperature (h-ASPL units).
    pub t0: f64,
    /// Final temperature. Set `t0 = t_end = 0` for pure hill climbing.
    pub t_end: f64,
    /// RNG seed; identical seeds reproduce identical runs.
    pub seed: u64,
    /// Retries when sampling a valid move.
    pub sample_attempts: usize,
    /// Record `(iteration, best h-ASPL)` every this many iterations
    /// (0 = no history).
    pub history_stride: usize,
    /// Threaded h-ASPL evaluation. `None` (the default) auto-selects:
    /// threads are used when the instance has at least
    /// [`crate::search::PARALLEL_SWITCH_THRESHOLD`] switches and more
    /// than one CPU is available. `Some(_)` overrides the heuristic.
    pub parallel_eval: Option<bool>,
    /// Exact evaluation worker-thread count. `None` (the default) defers
    /// to `parallel_eval`; `Some(w)` pins the persistent pool to `w`
    /// workers regardless of the heuristic — [`solve_orp_multi`] uses
    /// this to split the machine's cores across restart workers.
    /// Results are bit-identical for every worker count.
    pub eval_workers: Option<usize>,
    /// Enables the Δh-ASPL lower-bound early reject: a proposal the
    /// distance cache can prove is uphill by more than
    /// [`crate::search::EARLY_REJECT_LOG`]` × t` (acceptance probability
    /// below `exp(−40)`) is rejected without running any BFS. On by
    /// default. The skipped Metropolis draw advances the RNG stream
    /// differently, so toggling this changes trajectories (each setting
    /// remains fully seed-reproducible).
    pub early_reject: bool,
    /// Distance-cache policy for the evaluation engine (codec selection
    /// and memory budget). Like `eval_workers`, this is a pure
    /// wall-clock/memory knob: cached, uncached, dense and compressed
    /// evaluation all produce bit-identical metrics, so it is exempt
    /// from the checkpoint config echo and may differ on resume.
    pub search: SearchConfig,
}

impl Default for SaConfig {
    fn default() -> Self {
        Self {
            iters: 20_000,
            t0: 0.01,
            t_end: 1e-6,
            seed: 1,
            sample_attempts: 32,
            history_stride: 0,
            parallel_eval: None,
            eval_workers: None,
            early_reject: true,
            search: SearchConfig::default(),
        }
    }
}

impl SaConfig {
    /// Convenience: hill climbing (zero temperature throughout).
    pub fn hill_climb(iters: usize, seed: u64) -> Self {
        Self {
            iters,
            t0: 0.0,
            t_end: 0.0,
            seed,
            ..Self::default()
        }
    }

    /// Starts a typed builder pre-loaded with the defaults.
    pub fn builder() -> SaConfigBuilder {
        SaConfigBuilder {
            cfg: Self::default(),
        }
    }
}

/// Typed builder for [`SaConfig`]; obtain via [`SaConfig::builder`].
///
/// ```
/// use orp_core::anneal::SaConfig;
/// let cfg = SaConfig::builder().iters(500).seed(7).build();
/// assert_eq!(cfg.iters, 500);
/// ```
#[derive(Debug, Clone)]
pub struct SaConfigBuilder {
    cfg: SaConfig,
}

impl SaConfigBuilder {
    /// Number of proposed moves.
    pub fn iters(mut self, iters: usize) -> Self {
        self.cfg.iters = iters;
        self
    }

    /// Initial temperature (h-ASPL units).
    pub fn t0(mut self, t0: f64) -> Self {
        self.cfg.t0 = t0;
        self
    }

    /// Final temperature.
    pub fn t_end(mut self, t_end: f64) -> Self {
        self.cfg.t_end = t_end;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Retries when sampling a valid move.
    pub fn sample_attempts(mut self, attempts: usize) -> Self {
        self.cfg.sample_attempts = attempts;
        self
    }

    /// Best-so-far history stride (0 = no history).
    pub fn history_stride(mut self, stride: usize) -> Self {
        self.cfg.history_stride = stride;
        self
    }

    /// Overrides the parallel-evaluation heuristic.
    pub fn parallel_eval(mut self, parallel: bool) -> Self {
        self.cfg.parallel_eval = Some(parallel);
        self
    }

    /// Pins the evaluation pool to an exact worker count.
    pub fn eval_workers(mut self, workers: usize) -> Self {
        self.cfg.eval_workers = Some(workers);
        self
    }

    /// Enables or disables the lower-bound early reject.
    pub fn early_reject(mut self, on: bool) -> Self {
        self.cfg.early_reject = on;
        self
    }

    /// Distance-cache policy (codec and memory budget) for the
    /// evaluation engine.
    pub fn search(mut self, search: SearchConfig) -> Self {
        self.cfg.search = search;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> SaConfig {
        self.cfg
    }
}

/// Outcome of an annealing run.
#[derive(Debug, Clone)]
pub struct SaResult {
    /// Best graph found.
    pub graph: HostSwitchGraph,
    /// Its metrics.
    pub metrics: PathMetrics,
    /// Moves proposed.
    pub proposed: usize,
    /// Moves accepted.
    pub accepted: usize,
    /// Moves reverted because they disconnected some host pair.
    pub disconnected: usize,
    /// `(iteration, best h-ASPL)` samples when history was requested.
    pub history: Vec<(usize, f64)>,
}

pub(crate) struct Annealer {
    state: SearchState,
    rng: ChaCha8Rng,
    cur: PathMetrics,
    best: HostSwitchGraph,
    best_metrics: PathMetrics,
    accepted: usize,
    proposed: usize,
    disconnected: usize,
    history: Vec<(usize, f64)>,
    /// Candidate buffer for the 2-neighbor second swing, reused across
    /// proposals so the steady state allocates nothing.
    cand_buf: Vec<u32>,
    /// Telemetry handle; the default no-op recorder costs one branch per
    /// call and never touches the RNG, so recording cannot change results.
    rec: Recorder,
    /// Current iteration (for best-trajectory telemetry).
    it: usize,
    /// Accepted-move mix, tracked unconditionally (plain integer adds)
    /// and published as counters only when the recorder is enabled.
    swap_accepted: usize,
    swing_accepted: usize,
    two_neighbor_first: usize,
    two_neighbor_second: usize,
    /// Whether guarded evaluation may early-reject without a BFS.
    early_reject: bool,
    /// Next iteration to execute — 0 for a fresh run, the checkpointed
    /// boundary after a resume.
    next_it: usize,
    /// Current temperature, carried in the struct (not loop-local) so a
    /// checkpoint stores its exact bits: a resumed run keeps cooling by
    /// multiplication from the saved value, bit-identically to the
    /// uninterrupted run (recomputing `t0 · ratioᵏ` would not be).
    t: f64,
    /// Phase-telemetry cursor (hoisted for checkpointing).
    phase_index: u32,
    phase_base_proposed: usize,
    phase_base_accepted: usize,
}

fn encode_metrics(m: &PathMetrics, enc: &mut Encoder) {
    enc.put_f64(m.haspl);
    enc.put_u32(m.diameter);
    enc.put_u64(m.total_length);
}

fn decode_metrics(dec: &mut Decoder<'_>) -> Result<PathMetrics, CkptError> {
    Ok(PathMetrics {
        haspl: dec.get_f64()?,
        diameter: dec.get_u32()?,
        total_length: dec.get_u64()?,
    })
}

/// Run-control knobs threaded into the annealing loop: where and how
/// often to checkpoint, and the watchdog handle to report progress to.
#[derive(Debug, Default)]
pub(crate) struct RunCtl {
    pub(crate) ckpt_path: Option<PathBuf>,
    pub(crate) every: usize,
    pub(crate) watch: Option<ProgressHandle>,
    pub(crate) window_secs: f64,
    /// Deterministic interruption point: force-checkpoint and bail out
    /// *before* executing this iteration, exactly like a watchdog stall.
    /// Used by the resume tests to cut a run at a known boundary.
    pub(crate) stop_after: Option<usize>,
    /// Live telemetry stream: when set (and the recorder is enabled),
    /// the loop publishes fresh gauges and appends one delta batch on
    /// the sink's wall-clock cadence.
    pub(crate) stream: Option<StreamSink>,
    /// Replica label for parallel tempering: gauges are namespaced
    /// `r{k}.…` so one stream carries every replica without collisions.
    pub(crate) stream_label: Option<u32>,
}

impl Annealer {
    pub(crate) fn new(
        g: HostSwitchGraph,
        cfg: &SaConfig,
        rec: Recorder,
    ) -> Result<Self, GraphError> {
        let workers = Self::resolved_workers(g.num_switches(), cfg);
        let mut state = SearchState::with_search(g, workers, cfg.search)?;
        // Per-worker scheduler counters only tick when someone records;
        // an unrecorded run keeps the zero-cost (one relaxed load) path.
        state.set_pool_telemetry(rec.is_enabled());
        let cur = state.evaluate().ok_or(GraphError::Disconnected)?;
        Ok(Self {
            best: state.graph().clone(),
            best_metrics: cur,
            state,
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            cur,
            accepted: 0,
            proposed: 0,
            disconnected: 0,
            history: Vec::new(),
            cand_buf: Vec::new(),
            rec,
            it: 0,
            swap_accepted: 0,
            swing_accepted: 0,
            two_neighbor_first: 0,
            two_neighbor_second: 0,
            early_reject: cfg.early_reject,
            next_it: 0,
            t: cfg.t0,
            phase_index: 0,
            phase_base_proposed: 0,
            phase_base_accepted: 0,
        })
    }

    fn resolved_workers(g_switches: u32, cfg: &SaConfig) -> usize {
        cfg.eval_workers
            .map(|w| w.max(1))
            .unwrap_or_else(|| resolve_parallel_eval(cfg.parallel_eval, g_switches))
    }

    /// Serializes the complete mid-run state. Everything that feeds the
    /// remaining iterations is captured bit-exactly: the config echo
    /// (validated on resume), loop cursors, move counters, current/best
    /// metrics, the RNG mid-stream state, both graphs in their exact
    /// internal order, the [`crate::ops::EdgeSet`] storage order the
    /// sampler indexes into, and the recorded history. The `DistCache`
    /// and eval telemetry are deliberately *not* serialized — the cache
    /// is rebuilt exactly on load (cached and full evaluation are
    /// bit-identical by the PR 5 guarantee).
    pub(crate) fn encode_ckpt(&self, kind: MoveKind, cfg: &SaConfig, enc: &mut Encoder) {
        // Config echo.
        enc.put_u8(kind.code());
        enc.put_u64(cfg.iters as u64);
        enc.put_f64(cfg.t0);
        enc.put_f64(cfg.t_end);
        enc.put_u64(cfg.seed);
        enc.put_u64(cfg.sample_attempts as u64);
        enc.put_u64(cfg.history_stride as u64);
        enc.put_bool(cfg.early_reject);
        // Loop cursors.
        enc.put_u64(self.next_it as u64);
        enc.put_f64(self.t);
        // Counters.
        enc.put_u64(self.proposed as u64);
        enc.put_u64(self.accepted as u64);
        enc.put_u64(self.disconnected as u64);
        enc.put_u64(self.swap_accepted as u64);
        enc.put_u64(self.swing_accepted as u64);
        enc.put_u64(self.two_neighbor_first as u64);
        enc.put_u64(self.two_neighbor_second as u64);
        enc.put_u32(self.phase_index);
        enc.put_u64(self.phase_base_proposed as u64);
        enc.put_u64(self.phase_base_accepted as u64);
        // Metrics (raw f64 bits).
        encode_metrics(&self.cur, enc);
        encode_metrics(&self.best_metrics, enc);
        // RNG mid-stream state.
        enc.put_u32_slice(&self.rng.state_words());
        // Current graph + the sampler's edge order, then the best graph.
        self.state.graph().encode_exact(enc);
        let order = self.state.edges().edges();
        enc.put_u64(order.len() as u64);
        for &(a, b) in order {
            enc.put_u32(a);
            enc.put_u32(b);
        }
        self.best.encode_exact(enc);
        // History.
        enc.put_u64(self.history.len() as u64);
        for &(it, v) in &self.history {
            enc.put_u64(it as u64);
            enc.put_f64(v);
        }
    }

    /// Atomically writes the current state to `path`.
    fn save_ckpt(&self, kind: MoveKind, cfg: &SaConfig, path: &Path) -> Result<(), CkptError> {
        let span = self.rec.span("anneal.checkpoint");
        let mut enc = Encoder::new();
        self.encode_ckpt(kind, cfg, &mut enc);
        let r = ckpt::write_checkpoint(path, ckpt::KIND_ANNEAL, &enc.into_bytes());
        drop(span);
        if r.is_ok() {
            self.rec.incr("anneal.checkpoints", 1);
        }
        r
    }

    /// Rebuilds an annealer from a checkpoint payload. The config and
    /// move kind of the resuming call must match the checkpointed ones
    /// (`eval_workers`/`parallel_eval`/`search` excepted — worker count
    /// and cache policy are pure wall-clock/memory knobs; every codec
    /// evaluates bit-identically). After restoring, the search state is
    /// re-evaluated from scratch and the result is required to match
    /// the checkpointed metrics bit-for-bit, so silent drift between
    /// the stored graph and stored metrics is impossible.
    pub(crate) fn from_ckpt(
        payload: &[u8],
        kind: MoveKind,
        cfg: &SaConfig,
        rec: Recorder,
    ) -> Result<Self, SaError> {
        let bad = |what: &str| SaError::Ckpt(CkptError::BadSection(what.into()));
        let mut dec = Decoder::new(payload);
        let stored_kind = MoveKind::from_code(dec.get_u8().map_err(SaError::Ckpt)?)
            .ok_or_else(|| bad("unknown move kind"))?;
        if stored_kind != kind {
            return Err(bad("move kind does not match the checkpoint"));
        }
        let d = |r: Result<u64, CkptError>| r.map_err(SaError::Ckpt);
        let df = |r: Result<f64, CkptError>| r.map_err(SaError::Ckpt);
        let iters = d(dec.get_u64())?;
        let t0 = df(dec.get_f64())?;
        let t_end = df(dec.get_f64())?;
        let seed = d(dec.get_u64())?;
        let sample_attempts = d(dec.get_u64())?;
        let history_stride = d(dec.get_u64())?;
        let early_reject = dec.get_bool().map_err(SaError::Ckpt)?;
        if iters != cfg.iters as u64
            || t0.to_bits() != cfg.t0.to_bits()
            || t_end.to_bits() != cfg.t_end.to_bits()
            || seed != cfg.seed
            || sample_attempts != cfg.sample_attempts as u64
            || history_stride != cfg.history_stride as u64
            || early_reject != cfg.early_reject
        {
            return Err(bad(
                "config does not match the checkpoint (iters/t0/t_end/seed/\
                 sample_attempts/history_stride/early_reject must be identical)",
            ));
        }
        let next_it = d(dec.get_u64())? as usize;
        let t = df(dec.get_f64())?;
        let proposed = d(dec.get_u64())? as usize;
        let accepted = d(dec.get_u64())? as usize;
        let disconnected = d(dec.get_u64())? as usize;
        let swap_accepted = d(dec.get_u64())? as usize;
        let swing_accepted = d(dec.get_u64())? as usize;
        let two_neighbor_first = d(dec.get_u64())? as usize;
        let two_neighbor_second = d(dec.get_u64())? as usize;
        let phase_index = dec.get_u32().map_err(SaError::Ckpt)?;
        let phase_base_proposed = d(dec.get_u64())? as usize;
        let phase_base_accepted = d(dec.get_u64())? as usize;
        let cur = decode_metrics(&mut dec).map_err(SaError::Ckpt)?;
        let best_metrics = decode_metrics(&mut dec).map_err(SaError::Ckpt)?;
        let rng_words = dec.get_u32_vec().map_err(SaError::Ckpt)?;
        let rng_words: [u32; CHACHA_STATE_WORDS] = rng_words
            .try_into()
            .map_err(|_| bad("rng state has the wrong length"))?;
        let cur_graph = HostSwitchGraph::decode_exact(&mut dec).map_err(SaError::Ckpt)?;
        let n_edges = d(dec.get_u64())? as usize;
        let mut edge_order = Vec::with_capacity(n_edges.min(payload.len() / 8));
        for _ in 0..n_edges {
            let a = dec.get_u32().map_err(SaError::Ckpt)?;
            let b = dec.get_u32().map_err(SaError::Ckpt)?;
            edge_order.push((a, b));
        }
        let best = HostSwitchGraph::decode_exact(&mut dec).map_err(SaError::Ckpt)?;
        let n_hist = d(dec.get_u64())? as usize;
        let mut history = Vec::with_capacity(n_hist.min(payload.len() / 16));
        for _ in 0..n_hist {
            let it = d(dec.get_u64())? as usize;
            let v = df(dec.get_f64())?;
            history.push((it, v));
        }
        if next_it as u64 > iters {
            return Err(bad("iteration cursor past the end of the schedule"));
        }
        let workers = Self::resolved_workers(cur_graph.num_switches(), cfg);
        let mut state =
            SearchState::with_search_edge_order(cur_graph, workers, cfg.search, &edge_order)
                .map_err(|e| SaError::Ckpt(CkptError::BadSection(format!("search state: {e}"))))?;
        state.set_pool_telemetry(rec.is_enabled());
        let reeval = state
            .evaluate()
            .ok_or_else(|| bad("restored graph is disconnected"))?;
        if reeval.haspl.to_bits() != cur.haspl.to_bits()
            || reeval.total_length != cur.total_length
            || reeval.diameter != cur.diameter
        {
            return Err(bad(
                "re-evaluated metrics do not match the checkpointed metrics",
            ));
        }
        Ok(Self {
            state,
            rng: ChaCha8Rng::from_state_words(&rng_words),
            cur,
            best,
            best_metrics,
            accepted,
            proposed,
            disconnected,
            history,
            cand_buf: Vec::new(),
            rec,
            it: next_it,
            swap_accepted,
            swing_accepted,
            two_neighbor_first,
            two_neighbor_second,
            early_reject: cfg.early_reject,
            next_it,
            t,
            phase_index,
            phase_base_proposed,
            phase_base_accepted,
        })
    }

    /// Runs one guarded evaluation under the eval-latency histogram.
    ///
    /// At temperature `t` the Metropolis rule accepts an uphill move of
    /// `Δ` with probability `exp(-Δ/t)`, so any proposal whose h-ASPL
    /// lower bound exceeds `cur + EARLY_REJECT_LOG·t` would be accepted
    /// with probability below `exp(-EARLY_REJECT_LOG)` — effectively
    /// never — and the guard skips the BFS for it entirely.
    fn evaluate_timed(&mut self, t: f64) -> EvalOutcome {
        let reject_above = if self.early_reject {
            Some(self.cur.haspl + EARLY_REJECT_LOG * t.max(0.0))
        } else {
            None
        };
        let state = &mut self.state;
        let out = self
            .rec
            .time("anneal.eval_ns", || state.evaluate_guarded(reject_above));
        let stats = self.state.eval_stats();
        if stats.last_kind == EvalPathKind::Incremental {
            // histogram of the affected-source fraction, in percent
            self.rec.record(
                "eval.affected_pct",
                (100 * u64::from(stats.last_affected)) / u64::from(stats.last_sources.max(1)),
            );
        }
        out
    }

    fn metropolis(&mut self, delta: f64, t: f64) -> bool {
        if delta <= 0.0 {
            return true;
        }
        if t <= 0.0 {
            return false;
        }
        self.rng.gen::<f64>() < (-delta / t).exp()
    }

    fn note_accept(&mut self, metrics: PathMetrics) {
        self.cur = metrics;
        self.accepted += 1;
        if metrics.haspl < self.best_metrics.haspl {
            self.best_metrics = metrics;
            self.best = self.state.graph().clone();
            if self.rec.is_enabled() {
                self.rec
                    .series("anneal.best_haspl", self.it as f64, metrics.haspl);
                self.rec.emit(Event::Best {
                    iter: self.it as u64,
                    value: metrics.haspl,
                });
            }
        }
    }

    /// Converts a failed move application into a structured, diagnosable
    /// error (instead of the historical panic): the transaction is
    /// unwound `depth` levels so the state stays consistent for a final
    /// checkpoint, and the error names the move and iteration.
    fn invariant_broken(
        &mut self,
        what: &'static str,
        depth: usize,
        source: GraphError,
    ) -> SaError {
        for _ in 0..depth {
            self.state.rollback();
        }
        SaError::InvariantBroken {
            what,
            iter: self.it as u64,
            source,
        }
    }

    /// One swap proposal; returns whether it was accepted.
    fn step_swap(&mut self, t: f64, attempts: usize) -> Result<bool, SaError> {
        let Some(s) = sample_swap(
            self.state.graph(),
            self.state.edges(),
            &mut self.rng,
            attempts,
        ) else {
            return Ok(false);
        };
        self.proposed += 1;
        self.state.begin();
        if let Err(e) = self.state.apply_swap(s) {
            return Err(self.invariant_broken("swap", 1, e));
        }
        match self.evaluate_timed(t) {
            EvalOutcome::Metrics(m2) => {
                let delta = m2.haspl - self.cur.haspl;
                if self.metropolis(delta, t) {
                    self.state.commit();
                    self.note_accept(m2);
                    self.swap_accepted += 1;
                    return Ok(true);
                }
                self.state.rollback();
                Ok(false)
            }
            EvalOutcome::EarlyRejected(_) => {
                self.state.rollback();
                Ok(false)
            }
            EvalOutcome::Disconnected => {
                self.disconnected += 1;
                self.state.rollback();
                Ok(false)
            }
        }
    }

    /// One plain-swing proposal.
    fn step_swing(&mut self, t: f64, attempts: usize) -> Result<bool, SaError> {
        let Some(s) = sample_swing(
            self.state.graph(),
            self.state.edges(),
            &mut self.rng,
            attempts,
        ) else {
            return Ok(false);
        };
        self.proposed += 1;
        self.state.begin();
        if let Err(e) = self.state.apply_swing(s) {
            return Err(self.invariant_broken("swing", 1, e));
        }
        match self.evaluate_timed(t) {
            EvalOutcome::Metrics(m2) => {
                let delta = m2.haspl - self.cur.haspl;
                if self.metropolis(delta, t) {
                    self.state.commit();
                    self.note_accept(m2);
                    self.swing_accepted += 1;
                    return Ok(true);
                }
                self.state.rollback();
                Ok(false)
            }
            EvalOutcome::EarlyRejected(_) => {
                self.state.rollback();
                Ok(false)
            }
            EvalOutcome::Disconnected => {
                self.disconnected += 1;
                self.state.rollback();
                Ok(false)
            }
        }
    }

    /// One 2-neighbor-swing proposal (the four steps of §5.2), expressed
    /// as a nested transaction: the second swing stacks on the first and
    /// either both commit or both unwind.
    fn step_two_neighbor(&mut self, t: f64, attempts: usize) -> Result<bool, SaError> {
        let Some(s1) = sample_swing(
            self.state.graph(),
            self.state.edges(),
            &mut self.rng,
            attempts,
        ) else {
            return Ok(false);
        };
        self.proposed += 1;
        // Step 1: the 1-neighbor solution.
        self.state.begin();
        if let Err(e) = self.state.apply_swing(s1) {
            return Err(self.invariant_broken("swing", 1, e));
        }
        match self.evaluate_timed(t) {
            EvalOutcome::Metrics(m1) => {
                let delta = m1.haspl - self.cur.haspl;
                if self.metropolis(delta, t) {
                    // Step 2: accept the 1-neighbor solution.
                    self.state.commit();
                    self.note_accept(m1);
                    self.two_neighbor_first += 1;
                    return Ok(true);
                }
            }
            // An early-rejected first swing falls through to the second
            // swing, exactly like a Metropolis rejection would.
            EvalOutcome::EarlyRejected(_) => {}
            EvalOutcome::Disconnected => self.disconnected += 1,
        }
        // Step 3: the 2-neighbor solution swing(s_d, s_c, s_b):
        // pick d adjacent to c (excluding a), rewire {d,c} and move a host
        // back from b to c. Net effect on the original graph is the swap
        // {a,b},{c,d} → {a,c},{b,d}.
        let s2 = {
            let g = self.state.graph();
            self.cand_buf.clear();
            self.cand_buf
                .extend(g.neighbors(s1.c).iter().copied().filter(|&d| {
                    d != s1.a
                        && d != s1.b
                        && Swing {
                            a: d,
                            b: s1.c,
                            c: s1.b,
                        }
                        .is_valid(g)
                }));
            match self.cand_buf.as_slice() {
                [] => None,
                cs => Some(Swing {
                    a: cs[self.rng.gen_range(0..cs.len())],
                    b: s1.c,
                    c: s1.b,
                }),
            }
        };
        if let Some(s2) = s2 {
            self.state.begin();
            if let Err(e) = self.state.apply_swing(s2) {
                // Unwind both the inner and the outer transaction.
                return Err(self.invariant_broken("2-neighbor second swing", 2, e));
            }
            match self.evaluate_timed(t) {
                EvalOutcome::Metrics(m2) => {
                    let delta = m2.haspl - self.cur.haspl;
                    if self.metropolis(delta, t) {
                        // Step 4: accept the 2-neighbor solution — the inner
                        // commit folds s2 into the outer transaction.
                        self.state.commit();
                        self.state.commit();
                        self.note_accept(m2);
                        self.two_neighbor_second += 1;
                        return Ok(true);
                    }
                }
                EvalOutcome::EarlyRejected(_) => {}
                EvalOutcome::Disconnected => self.disconnected += 1,
            }
            self.state.rollback();
        }
        // Otherwise the initial solution holds.
        self.state.rollback();
        Ok(false)
    }

    /// Metrics of the current (not best) solution.
    pub(crate) fn cur_metrics(&self) -> PathMetrics {
        self.cur
    }

    /// Current temperature.
    pub(crate) fn temperature(&self) -> f64 {
        self.t
    }

    /// Overwrites the current temperature — the tempering exchange swaps
    /// rungs between replicas through this (state stays put; only the
    /// temperature moves, so no graph copying is needed).
    pub(crate) fn set_temperature(&mut self, t: f64) {
        self.t = t;
    }

    /// Advances the annealer up to (but not past) iteration `stop_at`,
    /// leaving it at a quiescent iteration boundary — the same boundary
    /// checkpoints are defined at. [`Annealer::run`] is this to
    /// `cfg.iters` plus [`Annealer::finish`]; parallel tempering instead
    /// calls it once per exchange round on every replica.
    pub(crate) fn run_range(
        &mut self,
        kind: MoveKind,
        cfg: &SaConfig,
        ctl: &RunCtl,
        stop_at: usize,
    ) -> Result<(), SaError> {
        let iters = cfg.iters.max(1);
        // Geometric cooling; degenerate temperatures fall back to constant.
        let ratio = if cfg.t0 > 0.0 && cfg.t_end > 0.0 {
            (cfg.t_end / cfg.t0).powf(1.0 / iters as f64)
        } else {
            1.0
        };
        // Phase telemetry: ten phases per run, each reporting its local
        // proposal/acceptance mix (so acceptance-rate decay is visible).
        // The cursors live on `self` so checkpoints carry them.
        let phase_stride = (iters / 10).max(1);
        let stop_at = stop_at.min(cfg.iters);
        while self.next_it < stop_at {
            let it = self.next_it;
            self.it = it;
            // A checkpoint taken here captures the state *between*
            // iterations — the quiescent boundary the resume invariant
            // is defined at.
            if let Some(path) = &ctl.ckpt_path {
                if ctl.every > 0 && it > 0 && it.is_multiple_of(ctl.every) {
                    self.save_ckpt(kind, cfg, path)?;
                }
            }
            let stalled = ctl.watch.as_ref().is_some_and(|w| w.is_stalled());
            if stalled || ctl.stop_after == Some(it) {
                if let Some(watch) = &ctl.watch {
                    watch.acknowledge_stall();
                }
                let checkpoint = match &ctl.ckpt_path {
                    Some(p) => {
                        self.save_ckpt(kind, cfg, p)?;
                        Some(p.clone())
                    }
                    None => None,
                };
                return Err(SaError::Stalled {
                    window_secs: ctl.window_secs,
                    iter: it as u64,
                    checkpoint,
                });
            }
            let t = self.t;
            let _accepted = match kind {
                MoveKind::Swap => self.step_swap(t, cfg.sample_attempts)?,
                MoveKind::Swing => self.step_swing(t, cfg.sample_attempts)?,
                MoveKind::TwoNeighborSwing => self.step_two_neighbor(t, cfg.sample_attempts)?,
            };
            self.t *= ratio;
            self.next_it = it + 1;
            if let Some(watch) = &ctl.watch {
                watch.tick();
            }
            // Live streaming: `due()` is one lock + clock read, and the
            // publish/snapshot work only runs when the cadence elapsed,
            // so the steady-state cost stays under the 2% overhead bar.
            if let Some(sink) = &ctl.stream {
                if sink.due() {
                    let rec = self.rec.clone();
                    sink.maybe_flush(&rec, || {
                        self.publish_live(ctl.stream_label, it + 1, cfg.iters);
                    });
                }
            }
            if cfg.history_stride > 0 && it.is_multiple_of(cfg.history_stride) {
                self.history.push((it, self.best_metrics.haspl));
            }
            if self.rec.is_enabled() && (it + 1).is_multiple_of(phase_stride) {
                self.rec.emit(Event::Phase {
                    index: self.phase_index,
                    temperature: self.t,
                    proposed: (self.proposed - self.phase_base_proposed) as u64,
                    accepted: (self.accepted - self.phase_base_accepted) as u64,
                    best: self.best_metrics.haspl,
                });
                self.phase_index += 1;
                self.phase_base_proposed = self.proposed;
                self.phase_base_accepted = self.accepted;
            }
        }
        Ok(())
    }

    /// Publishes the live gauge set the streaming dashboard renders:
    /// progress, proposal/acceptance totals, best-so-far trajectory,
    /// eval-path mix, per-worker scheduler counters and the distance
    /// cache footprint. The totals [`Annealer::finish`] publishes
    /// exactly once as counters are mirrored here as *gauges*
    /// (absolute, last-write-wins), so a stream read mid-run shows live
    /// values without ever double counting. With `label = Some(k)`
    /// every name is prefixed `r{k}.` so tempering replicas share one
    /// recorder without collisions.
    fn publish_live(&self, label: Option<u32>, iter: usize, total: usize) {
        use std::fmt::Write as _;
        if !self.rec.is_enabled() {
            return;
        }
        let mut name = String::with_capacity(48);
        let mut put = |suffix: std::fmt::Arguments<'_>, v: f64| {
            name.clear();
            if let Some(k) = label {
                let _ = write!(name, "r{k}.");
            }
            let _ = name.write_fmt(suffix);
            self.rec.gauge_dyn(&name, v);
        };
        put(format_args!("progress.iter"), iter as f64);
        put(format_args!("progress.total"), total as f64);
        put(format_args!("anneal.proposed"), self.proposed as f64);
        put(format_args!("anneal.accepted"), self.accepted as f64);
        put(
            format_args!("anneal.disconnected"),
            self.disconnected as f64,
        );
        put(format_args!("anneal.best_haspl"), self.best_metrics.haspl);
        put(format_args!("anneal.temperature"), self.t);
        let stats = *self.state.eval_stats();
        put(format_args!("eval.full"), stats.full as f64);
        put(format_args!("eval.incremental"), stats.incremental as f64);
        put(
            format_args!("eval.early_reject"),
            stats.early_rejected as f64,
        );
        put(format_args!("cache.rows_repaired"), stats.repaired as f64);
        put(format_args!("cache.rows_swept"), stats.swept as f64);
        put(
            format_args!("cache.resident_bytes"),
            self.state.cache_resident_bytes() as f64,
        );
        if let Some(codec) = self.state.cache_codec() {
            put(
                format_args!("cache.packed"),
                matches!(codec, crate::search::CacheCodec::Packed) as u8 as f64,
            );
        }
        for (i, w) in self.state.pool_stats().iter().enumerate() {
            put(format_args!("pool.w{i}.pushes"), w.pushes as f64);
            put(format_args!("pool.w{i}.pops"), w.pops as f64);
            put(format_args!("pool.w{i}.steals"), w.steals as f64);
            put(format_args!("pool.w{i}.steal_fails"), w.steal_fails as f64);
            put(format_args!("pool.w{i}.busy_ns"), w.busy_ns as f64);
            put(format_args!("pool.w{i}.idle_ns"), w.idle_ns as f64);
            put(format_args!("pool.w{i}.peak_depth"), w.peak_depth as f64);
        }
    }

    /// Final checkpoint, telemetry flush and result extraction; call
    /// once [`Annealer::run_range`] has reached `cfg.iters`.
    pub(crate) fn finish(
        self,
        kind: MoveKind,
        cfg: &SaConfig,
        ctl: &RunCtl,
    ) -> Result<SaResult, SaError> {
        // Final save: a kill between completion and the caller consuming
        // the result still resumes (trivially) to the identical answer.
        if let Some(path) = &ctl.ckpt_path {
            if ctl.every > 0 {
                self.save_ckpt(kind, cfg, path)?;
            }
        }
        if self.rec.is_enabled() {
            self.rec.incr("anneal.proposed", self.proposed as u64);
            self.rec.incr("anneal.accepted", self.accepted as u64);
            self.rec
                .incr("anneal.disconnected", self.disconnected as u64);
            self.rec
                .incr("anneal.swap_accepted", self.swap_accepted as u64);
            self.rec
                .incr("anneal.swing_accepted", self.swing_accepted as u64);
            self.rec
                .incr("anneal.two_neighbor_first", self.two_neighbor_first as u64);
            self.rec.incr(
                "anneal.two_neighbor_second",
                self.two_neighbor_second as u64,
            );
            // Which eval path ran: full recompute vs affected-source
            // re-BFS vs guard-skipped (no BFS at all).
            let stats = *self.state.eval_stats();
            self.rec.incr("eval.full", stats.full);
            self.rec.incr("eval.incremental", stats.incremental);
            self.rec.incr("eval.early_reject", stats.early_rejected);
            self.rec.incr("eval.repaired", stats.repaired);
        }
        // Flush the closing state of *this* run segment to the live
        // stream (the final counters above ride along). The stream's
        // own `done` record is written by the owner via
        // [`StreamSink::finish`] once the whole solve ends.
        if let Some(sink) = &ctl.stream {
            let rec = self.rec.clone();
            sink.flush_now(&rec, || {
                self.publish_live(ctl.stream_label, self.next_it, cfg.iters.max(1));
            });
        }
        Ok(SaResult {
            graph: self.best,
            metrics: self.best_metrics,
            proposed: self.proposed,
            accepted: self.accepted,
            disconnected: self.disconnected,
            history: self.history,
        })
    }

    pub(crate) fn run(
        mut self,
        kind: MoveKind,
        cfg: &SaConfig,
        ctl: &RunCtl,
    ) -> Result<SaResult, SaError> {
        let span = self.rec.span("anneal.run");
        self.run_range(kind, cfg, ctl, cfg.iters)?;
        drop(span);
        self.finish(kind, cfg, ctl)
    }
}

/// Builder-style entry point for one annealing run.
///
/// This is the redesigned public API: every knob is optional, and an
/// [`orp_obs::Recorder`] can be attached without touching the search
/// itself (the recorder never feeds back into the RNG, so a recording
/// run is bit-identical to an unrecorded one).
///
/// ```
/// use orp_core::anneal::{Anneal, MoveKind, SaConfig};
/// use orp_core::construct::random_regular;
///
/// let start = random_regular(16, 4, 6, 1).unwrap();
/// let res = Anneal::builder(start)
///     .kind(MoveKind::Swap)
///     .config(SaConfig::builder().iters(50).seed(1).build())
///     .run()
///     .unwrap();
/// assert!(res.proposed <= 50);
/// ```
#[derive(Debug, Clone)]
pub struct Anneal {
    start: HostSwitchGraph,
    kind: MoveKind,
    cfg: SaConfig,
    rec: Recorder,
    ckpt: Option<PathBuf>,
    every: usize,
    resume: Option<PathBuf>,
    watchdog: Option<Duration>,
    watch_source: WatchSource,
    watch_worker: u32,
    watch_hard_exit: bool,
    stream: Option<StreamSink>,
}

impl Anneal {
    /// Starts a builder annealing `start` with the defaults: the
    /// 2-neighbor swing neighbourhood, [`SaConfig::default`], no
    /// recording, no checkpointing, no watchdog.
    pub fn builder(start: HostSwitchGraph) -> Self {
        Self {
            start,
            kind: MoveKind::TwoNeighborSwing,
            cfg: SaConfig::default(),
            rec: Recorder::disabled(),
            ckpt: None,
            every: DEFAULT_CHECKPOINT_EVERY,
            resume: None,
            watchdog: None,
            watch_source: WatchSource::Anneal,
            watch_worker: 0,
            watch_hard_exit: false,
            stream: None,
        }
    }

    /// Which neighbourhood to explore.
    pub fn kind(mut self, kind: MoveKind) -> Self {
        self.kind = kind;
        self
    }

    /// Schedule and bookkeeping knobs.
    pub fn config(mut self, cfg: SaConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Attaches a telemetry recorder (defaults to the no-op recorder).
    pub fn recorder(mut self, rec: Recorder) -> Self {
        self.rec = rec;
        self
    }

    /// Enables crash-safe checkpointing: the run state is atomically
    /// saved to `path` every [`Anneal::checkpoint_every`] iterations
    /// (and once on completion). A run killed at any point and resumed
    /// via [`Anneal::resume_from`] produces the bit-identical final
    /// result of the uninterrupted run.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.ckpt = Some(path.into());
        self
    }

    /// Checkpoint stride in iterations (default
    /// [`DEFAULT_CHECKPOINT_EVERY`]; 0 disables periodic saves while
    /// keeping stall force-checkpoints).
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.every = every;
        self
    }

    /// Resumes from a checkpoint previously written by this builder
    /// (the starting graph is ignored). The config and move kind must
    /// match the checkpointed run — everything except
    /// `eval_workers`/`parallel_eval`, which are pure wall-clock knobs.
    /// Fails with [`SaError::Ckpt`] if the file is missing, corrupt,
    /// truncated, of the wrong kind/version, or config-incompatible.
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume = Some(path.into());
        self
    }

    /// Arms a stall watchdog: if no iteration completes within
    /// `window` (wall clock), the run emits a structured
    /// `watchdog.stalled` diagnostic, force-checkpoints (when a
    /// checkpoint path is set), and returns [`SaError::Stalled`]
    /// instead of hanging forever.
    pub fn watchdog(mut self, window: Duration) -> Self {
        self.watchdog = Some(window);
        self
    }

    /// Labels the watchdog diagnostics with a source kind and worker
    /// index (multi-restart solves tag each restart).
    pub fn watchdog_label(mut self, source: WatchSource, worker: u32) -> Self {
        self.watch_source = source;
        self.watch_worker = worker;
        self
    }

    /// Lets the watchdog abort the whole process if the run is so
    /// wedged it never reaches an iteration boundary to observe the
    /// stall verdict (see [`WatchdogConfig::hard_exit`]). Intended for
    /// the CLI; library callers should leave this off.
    pub fn watchdog_hard_exit(mut self, yes: bool) -> Self {
        self.watch_hard_exit = yes;
        self
    }

    /// Attaches a live metrics stream: on the sink's wall-clock cadence
    /// the annealing loop publishes fresh gauges (progress, eval mix,
    /// per-worker scheduler counters, cache footprint) and appends one
    /// self-describing JSONL batch that `orp watch` can tail mid-run.
    /// No-op unless a recorder is also attached.
    pub fn stream(mut self, sink: StreamSink) -> Self {
        self.stream = Some(sink);
        self
    }

    /// Runs the annealer (resuming first if configured).
    pub fn run(self) -> Result<SaResult, SaError> {
        let annealer = match &self.resume {
            Some(p) => {
                let payload = ckpt::read_checkpoint(p, ckpt::KIND_ANNEAL)?;
                Annealer::from_ckpt(&payload, self.kind, &self.cfg, self.rec.clone())?
            }
            None => Annealer::new(self.start, &self.cfg, self.rec.clone())?,
        };
        let wd = self.watchdog.map(|window| {
            Watchdog::spawn(
                WatchdogConfig::new(window)
                    .source(self.watch_source)
                    .worker(self.watch_worker)
                    .hard_exit(self.watch_hard_exit),
                self.rec.clone(),
            )
        });
        let ctl = RunCtl {
            ckpt_path: self.ckpt,
            every: self.every,
            watch: wd.as_ref().map(Watchdog::handle),
            window_secs: self.watchdog.map_or(0.0, |w| w.as_secs_f64()),
            stop_after: None,
            stream: self.stream,
            stream_label: None,
        };
        annealer.run(self.kind, &self.cfg, &ctl)
    }
}

/// Anneals an arbitrary starting graph with the chosen move kind.
///
/// The starting graph must have all host pairs connected. This is the
/// recorder-less convenience form of [`Anneal::builder`].
pub fn anneal(start: HostSwitchGraph, kind: MoveKind, cfg: &SaConfig) -> Result<SaResult, SaError> {
    Anneal::builder(start).kind(kind).config(cfg.clone()).run()
}

/// §5.1: swap-based annealing over regular host-switch graphs with `m`
/// switches (`m | n` required).
pub fn anneal_regular(n: u32, m: u32, r: u32, cfg: &SaConfig) -> Result<SaResult, SaError> {
    let start = random_regular(n, m, r, cfg.seed)?;
    anneal(start, MoveKind::Swap, cfg)
}

/// §5.2: 2-neighbor-swing annealing from a balanced random graph with `m`
/// switches (any `m`).
pub fn anneal_general(n: u32, m: u32, r: u32, cfg: &SaConfig) -> Result<SaResult, SaError> {
    let start = random_general(n, m, r, cfg.seed)?;
    anneal(start, MoveKind::TwoNeighborSwing, cfg)
}

/// §5.3, the proposed method end-to-end: choose `m = m_opt` by minimising
/// the continuous Moore bound, then run the 2-neighbor-swing annealer.
///
/// Returns the result together with the predicted `m_opt`.
#[deprecated(since = "0.3.0", note = "use `Solver::builder(n, r)` instead")]
pub fn solve_orp(n: u32, r: u32, cfg: &SaConfig) -> Result<(SaResult, u32), SaError> {
    let report = Solver::builder(n, r).config(cfg.clone()).run()?;
    Ok((report.result, report.m_opt))
}

/// Robustness knobs for [`solve_orp_multi_report`]: per-restart
/// checkpoints, resume, and stall supervision.
#[derive(Debug, Clone, Default)]
pub struct MultiOpts {
    /// Per-restart checkpoint prefix: restart `i` checkpoints to
    /// `<prefix>.r<i>` (see [`restart_ckpt_path`]), so one crashed
    /// worker never loses its siblings' progress.
    pub checkpoint: Option<PathBuf>,
    /// Checkpoint stride (0 = [`DEFAULT_CHECKPOINT_EVERY`]).
    pub checkpoint_every: usize,
    /// Resume each restart whose checkpoint file already exists;
    /// restarts without one start fresh.
    pub resume: bool,
    /// Arm a per-restart stall watchdog with this window.
    pub watchdog: Option<Duration>,
}

/// Outcome of a multi-restart solve that survived at least one restart:
/// the best result plus a structured account of what happened to the
/// rest.
#[derive(Debug, Clone)]
pub struct MultiReport {
    /// Best result over the restarts that completed.
    pub result: SaResult,
    /// The predicted optimal switch count the restarts annealed with.
    pub m_opt: u32,
    /// Restarts that ran to completion.
    pub completed: usize,
    /// Restarts that panicked, with per-worker diagnostics. A panicked
    /// sibling no longer poisons the solve — the surviving results are
    /// still returned.
    pub panics: Vec<WorkerPanic>,
    /// Restarts that returned a structured error (e.g. stalled), with
    /// their indices.
    pub errors: Vec<(usize, SaError)>,
}

/// Checkpoint path for restart `i` of a multi-restart solve: the
/// configured prefix with `.r<i>` appended.
pub fn restart_ckpt_path(prefix: &Path, i: usize) -> PathBuf {
    let mut os = prefix.as_os_str().to_owned();
    os.push(format!(".r{i}"));
    PathBuf::from(os)
}

/// Builds the [`crate::solver::Solver`] equivalent of a historical
/// multi-restart call.
fn multi_solver(n: u32, r: u32, cfg: &SaConfig, restarts: usize, opts: &MultiOpts) -> Solver {
    let mut b = Solver::builder(n, r)
        .config(cfg.clone())
        .restarts(restarts.max(1));
    if let Some(prefix) = &opts.checkpoint {
        b = b.checkpoint(prefix).resume(opts.resume);
        if opts.checkpoint_every > 0 {
            b = b.checkpoint_every(opts.checkpoint_every);
        }
    }
    if let Some(window) = opts.watchdog {
        b = b.watchdog(window);
    }
    b
}

/// Multi-restart solve with the full robustness surface: independently
/// seeded annealers on parallel OS threads, per-restart
/// checkpoints/resume/watchdog via [`MultiOpts`], and panic isolation —
/// a crashed worker is reported in [`MultiReport::panics`] while its
/// siblings' results survive. Restart `i` uses seed `cfg.seed + i`, so
/// the single-restart case reproduces a plain [`Anneal`] run exactly.
///
/// Fails only when *no* restart completes: with the first structured
/// error if one exists, else [`SaError::AllWorkersPanicked`].
#[deprecated(since = "0.3.0", note = "use `Solver::builder(n, r)` instead")]
pub fn solve_orp_multi_report(
    n: u32,
    r: u32,
    cfg: &SaConfig,
    restarts: usize,
    opts: &MultiOpts,
) -> Result<MultiReport, SaError> {
    let report = multi_solver(n, r, cfg, restarts, opts).run()?;
    Ok(MultiReport {
        result: report.result,
        m_opt: report.m_opt,
        completed: report.completed,
        panics: report.panics,
        errors: report.errors,
    })
}

/// Multi-restart solve: runs `restarts` independently seeded annealers
/// on parallel OS threads and keeps the best result. Restart `i` uses
/// seed `cfg.seed + i`, so the single-restart case reproduces a plain
/// [`Anneal`] run exactly.
#[deprecated(since = "0.3.0", note = "use `Solver::builder(n, r)` instead")]
pub fn solve_orp_multi(
    n: u32,
    r: u32,
    cfg: &SaConfig,
    restarts: usize,
) -> Result<(SaResult, u32), SaError> {
    let report = multi_solver(n, r, cfg, restarts, &MultiOpts::default()).run()?;
    Ok((report.result, report.m_opt))
}

/// Calibrates an initial temperature from the instance itself: samples
/// random swing moves on a scratch copy and sets `t0` to the median
/// |Δh-ASPL| (so roughly half of all degrading moves are accepted at the
/// start) and `t_end` three orders of magnitude below.
pub fn auto_temperature(start: &HostSwitchGraph, cfg: &SaConfig) -> SaConfig {
    let Ok(mut state) = SearchState::new(start.clone(), Some(false)) else {
        return cfg.clone();
    };
    let Some(base) = state.evaluate() else {
        return cfg.clone();
    };
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x7e5);
    let mut deltas: Vec<f64> = Vec::new();
    for _ in 0..24 {
        let Some(s) = sample_swing(state.graph(), state.edges(), &mut rng, 16) else {
            continue;
        };
        state.begin();
        state.apply_swing(s).expect("sampled move valid");
        if let Some(m2) = state.evaluate() {
            deltas.push((m2.haspl - base.haspl).abs());
        }
        state.rollback();
    }
    if deltas.is_empty() {
        return cfg.clone();
    }
    deltas.sort_by(f64::total_cmp);
    let t0 = deltas[deltas.len() / 2].max(1e-9);
    SaConfig {
        t0,
        t_end: t0 * 1e-3,
        ..cfg.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::haspl_lower_bound;
    use crate::metrics::path_metrics;

    fn small_cfg(iters: usize) -> SaConfig {
        SaConfig {
            iters,
            t0: 0.02,
            t_end: 1e-5,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn swap_anneal_improves_over_random_start() {
        let n = 64;
        let m = 16;
        let r = 8; // per = 4, k = 4
        let start = random_regular(n, m, r, 7).unwrap();
        let before = path_metrics(&start).unwrap().haspl;
        let res = anneal(start, MoveKind::Swap, &small_cfg(800)).unwrap();
        assert!(res.metrics.haspl <= before);
        res.graph.validate().unwrap();
        // swap preserves regularity
        assert_eq!(res.graph.regularity(), Some((4, 4)));
        assert!(res.accepted > 0);
    }

    #[test]
    fn two_neighbor_swing_anneal_improves() {
        let n = 64;
        let m = 16;
        let r = 8;
        let start = random_general(n, m, r, 3).unwrap();
        let before = path_metrics(&start).unwrap().haspl;
        let res = anneal(start, MoveKind::TwoNeighborSwing, &small_cfg(800)).unwrap();
        assert!(res.metrics.haspl <= before);
        res.graph.validate().unwrap();
        assert_eq!(res.graph.num_hosts(), n);
        assert_eq!(res.graph.num_switches(), m);
        assert!(res.metrics.haspl >= haspl_lower_bound(n as u64, r as u64) - 1e-9);
    }

    #[test]
    fn plain_swing_anneal_runs() {
        let start = random_general(48, 12, 8, 5).unwrap();
        let res = anneal(start, MoveKind::Swing, &small_cfg(400)).unwrap();
        res.graph.validate().unwrap();
        assert!(res.metrics.haspl >= 2.0);
    }

    #[test]
    fn hill_climb_never_accepts_worse() {
        let start = random_general(48, 12, 8, 5).unwrap();
        let before = path_metrics(&start).unwrap();
        let cfg = SaConfig::hill_climb(400, 11);
        let res = anneal(start, MoveKind::TwoNeighborSwing, &cfg).unwrap();
        assert!(res.metrics.haspl <= before.haspl);
    }

    #[test]
    fn runs_are_reproducible() {
        let cfg = small_cfg(300);
        let a = anneal_general(48, 12, 8, &cfg).unwrap();
        let b = anneal_general(48, 12, 8, &cfg).unwrap();
        assert_eq!(a.metrics.total_length, b.metrics.total_length);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn history_is_monotone_nonincreasing() {
        let cfg = SaConfig {
            history_stride: 50,
            ..small_cfg(500)
        };
        let res = anneal_general(48, 12, 8, &cfg).unwrap();
        assert!(!res.history.is_empty());
        for w in res.history.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
    }

    /// The deprecated free functions stay thin wrappers over
    /// [`Solver`]: identical results, identical single-restart
    /// degeneration.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_solver() {
        let cfg = small_cfg(300);
        let (res, m_opt) = solve_orp(64, 10, &cfg).unwrap();
        assert_eq!(res.graph.num_switches(), m_opt);
        assert_eq!(res.graph.num_hosts(), 64);
        res.graph.validate().unwrap();
        let lb = haspl_lower_bound(64, 10);
        assert!(res.metrics.haspl >= lb - 1e-9);
        let report = Solver::builder(64, 10).config(cfg.clone()).run().unwrap();
        assert_eq!(res.graph, report.result.graph);
        assert_eq!(res.metrics, report.result.metrics);
        // solve_orp_multi(·, 1) degenerates to solve_orp.
        let (b, _) = solve_orp_multi(64, 10, &cfg, 1).unwrap();
        assert_eq!(res.graph, b.graph);
        // solve_orp_multi_report keeps the MultiReport surface intact.
        let multi = solve_orp_multi_report(64, 10, &cfg, 2, &MultiOpts::default()).unwrap();
        assert_eq!(multi.completed, 2);
        assert!(multi.panics.is_empty() && multi.errors.is_empty());
        assert!(multi.result.metrics.haspl <= res.metrics.haspl + 1e-12);
    }

    #[test]
    fn auto_temperature_matches_move_scale() {
        let g = random_general(128, 32, 10, 3).unwrap();
        let tuned = auto_temperature(&g, &SaConfig::default());
        // typical swing deltas at this size are O(1/n)..O(0.1)
        assert!(tuned.t0 > 0.0 && tuned.t0 < 0.5, "t0 = {}", tuned.t0);
        assert!(tuned.t_end < tuned.t0);
        // annealing with the tuned schedule still works
        let res = anneal(
            g,
            MoveKind::TwoNeighborSwing,
            &SaConfig {
                iters: 400,
                ..tuned
            },
        )
        .unwrap();
        res.graph.validate().unwrap();
    }

    #[test]
    fn recorded_run_is_identical_and_populates_telemetry() {
        let cfg = small_cfg(300);
        let start = random_general(48, 12, 8, 3).unwrap();
        let plain = anneal(start.clone(), MoveKind::TwoNeighborSwing, &cfg).unwrap();
        let rec = Recorder::enabled();
        let traced = Anneal::builder(start)
            .kind(MoveKind::TwoNeighborSwing)
            .config(cfg)
            .recorder(rec.clone())
            .run()
            .unwrap();
        // recording must not perturb the search
        assert_eq!(plain.graph, traced.graph);
        assert_eq!(plain.accepted, traced.accepted);
        let snap = rec.snapshot().unwrap();
        assert_eq!(
            snap.counter("anneal.proposed"),
            Some(traced.proposed as u64)
        );
        assert_eq!(
            snap.counter("anneal.accepted"),
            Some(traced.accepted as u64)
        );
        assert_eq!(snap.event_count("anneal.phase"), 10);
        assert!(snap.histogram("anneal.eval_ns").unwrap().count >= traced.proposed as u64);
        assert!(!snap.series("anneal.best_haspl").unwrap().is_empty());
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "anneal.run");
    }

    #[test]
    fn sa_config_builder_matches_struct_literal() {
        let built = SaConfig::builder()
            .iters(123)
            .t0(0.5)
            .t_end(1e-4)
            .seed(9)
            .sample_attempts(8)
            .history_stride(10)
            .parallel_eval(false)
            .eval_workers(3)
            .early_reject(false)
            .search(SearchConfig::off())
            .build();
        assert_eq!(built.iters, 123);
        assert_eq!(built.t0, 0.5);
        assert_eq!(built.t_end, 1e-4);
        assert_eq!(built.seed, 9);
        assert_eq!(built.sample_attempts, 8);
        assert_eq!(built.history_stride, 10);
        assert_eq!(built.parallel_eval, Some(false));
        assert_eq!(built.eval_workers, Some(3));
        assert!(!built.early_reject);
        assert_eq!(built.search, SearchConfig::off());
    }

    #[test]
    fn eval_worker_count_does_not_change_results() {
        // Every pool size reduces partial sums in deterministic order, so
        // pinning more eval workers is a pure wall-clock knob.
        let one = SaConfig {
            eval_workers: Some(1),
            ..small_cfg(300)
        };
        let three = SaConfig {
            eval_workers: Some(3),
            ..small_cfg(300)
        };
        let a = anneal_general(48, 12, 8, &one).unwrap();
        let b = anneal_general(48, 12, 8, &three).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn early_reject_off_still_converges() {
        // Disabling the guard changes which proposals consume RNG draws,
        // so results may differ from the guarded run — but the run itself
        // must stay valid and each setting stays seed-reproducible.
        let cfg = SaConfig {
            early_reject: false,
            ..small_cfg(400)
        };
        let a = anneal_general(48, 12, 8, &cfg).unwrap();
        let b = anneal_general(48, 12, 8, &cfg).unwrap();
        assert_eq!(a.graph, b.graph);
        a.graph.validate().unwrap();
    }

    #[test]
    fn anneal_rejects_disconnected_start() {
        let mut g = HostSwitchGraph::new(2, 4).unwrap();
        g.attach_host(0).unwrap();
        g.attach_host(1).unwrap();
        assert!(anneal(g, MoveKind::Swap, &small_cfg(10)).is_err());
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("orp_anneal_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The tentpole invariant: a run cut at *any* iteration boundary and
    /// resumed from its forced checkpoint finishes with the bit-identical
    /// result of the uninterrupted run — graph, metric bits, counters,
    /// and history all equal.
    #[test]
    fn interrupted_resume_is_bit_identical() {
        let dir = temp_dir("resume");
        let path = dir.join("run.ckpt");
        let cfg = SaConfig {
            history_stride: 50,
            ..small_cfg(600)
        };
        let start = random_general(48, 12, 8, cfg.seed).unwrap();
        let reference = anneal(start.clone(), MoveKind::TwoNeighborSwing, &cfg).unwrap();
        for cut in [1usize, 123, 250, 599] {
            let annealer = Annealer::new(start.clone(), &cfg, Recorder::disabled()).unwrap();
            let ctl = RunCtl {
                ckpt_path: Some(path.clone()),
                stop_after: Some(cut),
                ..Default::default()
            };
            let err = annealer
                .run(MoveKind::TwoNeighborSwing, &cfg, &ctl)
                .unwrap_err();
            assert!(matches!(err, SaError::Stalled { iter, .. } if iter == cut as u64));
            let resumed = Anneal::builder(start.clone())
                .kind(MoveKind::TwoNeighborSwing)
                .config(cfg.clone())
                .resume_from(&path)
                .run()
                .unwrap();
            assert_eq!(resumed.graph, reference.graph, "cut at {cut}");
            assert_eq!(
                resumed.metrics.haspl.to_bits(),
                reference.metrics.haspl.to_bits(),
                "cut at {cut}"
            );
            assert_eq!(resumed.metrics, reference.metrics);
            assert_eq!(resumed.proposed, reference.proposed, "cut at {cut}");
            assert_eq!(resumed.accepted, reference.accepted, "cut at {cut}");
            assert_eq!(resumed.disconnected, reference.disconnected);
            assert_eq!(resumed.history, reference.history, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Resuming twice in a row (kill the resumed run too) still lands on
    /// the uninterrupted result.
    #[test]
    fn double_interruption_still_resumes_exactly() {
        let dir = temp_dir("resume2");
        let path = dir.join("run.ckpt");
        let cfg = small_cfg(500);
        let start = random_general(48, 12, 8, cfg.seed).unwrap();
        let reference = anneal(start.clone(), MoveKind::Swap, &cfg).unwrap();
        // First cut at 150 from a fresh run.
        let a = Annealer::new(start.clone(), &cfg, Recorder::disabled()).unwrap();
        let ctl = RunCtl {
            ckpt_path: Some(path.clone()),
            stop_after: Some(150),
            ..Default::default()
        };
        a.run(MoveKind::Swap, &cfg, &ctl).unwrap_err();
        // Second cut at 350 from the resumed run.
        let payload = ckpt::read_checkpoint(&path, ckpt::KIND_ANNEAL).unwrap();
        let b = Annealer::from_ckpt(&payload, MoveKind::Swap, &cfg, Recorder::disabled()).unwrap();
        let ctl = RunCtl {
            ckpt_path: Some(path.clone()),
            stop_after: Some(350),
            ..Default::default()
        };
        b.run(MoveKind::Swap, &cfg, &ctl).unwrap_err();
        // Final resume runs to completion.
        let resumed = Anneal::builder(start)
            .kind(MoveKind::Swap)
            .config(cfg.clone())
            .resume_from(&path)
            .run()
            .unwrap();
        assert_eq!(resumed.graph, reference.graph);
        assert_eq!(resumed.metrics, reference.metrics);
        assert_eq!(resumed.accepted, reference.accepted);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_mismatched_config_kind_and_missing_file() {
        let dir = temp_dir("reject");
        let path = dir.join("run.ckpt");
        let cfg = small_cfg(300);
        let start = random_general(48, 12, 8, cfg.seed).unwrap();
        let a = Annealer::new(start.clone(), &cfg, Recorder::disabled()).unwrap();
        let ctl = RunCtl {
            ckpt_path: Some(path.clone()),
            stop_after: Some(100),
            ..Default::default()
        };
        a.run(MoveKind::TwoNeighborSwing, &cfg, &ctl).unwrap_err();
        // Different seed: the config echo must match bitwise.
        let other = SaConfig {
            seed: cfg.seed + 1,
            ..cfg.clone()
        };
        let err = Anneal::builder(start.clone())
            .config(other)
            .resume_from(&path)
            .run()
            .unwrap_err();
        assert!(matches!(err, SaError::Ckpt(CkptError::BadSection(_))));
        // Different move kind.
        let err = Anneal::builder(start.clone())
            .kind(MoveKind::Swap)
            .config(cfg.clone())
            .resume_from(&path)
            .run()
            .unwrap_err();
        assert!(matches!(err, SaError::Ckpt(CkptError::BadSection(_))));
        // Missing file surfaces as an IO checkpoint error.
        let err = Anneal::builder(start)
            .config(cfg)
            .resume_from(dir.join("nope.ckpt"))
            .run()
            .unwrap_err();
        assert!(matches!(err, SaError::Ckpt(CkptError::Io(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eval_worker_count_does_not_change_resume() {
        // `eval_workers` is exempt from the config echo: resuming with a
        // different pool size is allowed and bit-identical.
        let dir = temp_dir("workers");
        let path = dir.join("run.ckpt");
        let cfg = SaConfig {
            eval_workers: Some(1),
            ..small_cfg(400)
        };
        let start = random_general(48, 12, 8, cfg.seed).unwrap();
        let reference = anneal(start.clone(), MoveKind::TwoNeighborSwing, &cfg).unwrap();
        let a = Annealer::new(start.clone(), &cfg, Recorder::disabled()).unwrap();
        let ctl = RunCtl {
            ckpt_path: Some(path.clone()),
            stop_after: Some(200),
            ..Default::default()
        };
        a.run(MoveKind::TwoNeighborSwing, &cfg, &ctl).unwrap_err();
        let resumed = Anneal::builder(start)
            .config(SaConfig {
                eval_workers: Some(3),
                ..cfg
            })
            .resume_from(&path)
            .run()
            .unwrap();
        assert_eq!(resumed.graph, reference.graph);
        assert_eq!(resumed.metrics, reference.metrics);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[allow(deprecated)]
    fn multi_report_writes_per_restart_checkpoints_and_resumes() {
        let dir = temp_dir("multi");
        let prefix = dir.join("solve.ckpt");
        let cfg = small_cfg(300);
        let opts = MultiOpts {
            checkpoint: Some(prefix.clone()),
            checkpoint_every: 100,
            ..Default::default()
        };
        let report = solve_orp_multi_report(64, 10, &cfg, 2, &opts).unwrap();
        assert_eq!(report.completed, 2);
        assert!(report.panics.is_empty());
        assert!(report.errors.is_empty());
        assert!(restart_ckpt_path(&prefix, 0).exists());
        assert!(restart_ckpt_path(&prefix, 1).exists());
        // Plain multi-restart must agree with the checkpointed one.
        let (plain, m) = solve_orp_multi(64, 10, &cfg, 2).unwrap();
        assert_eq!(report.m_opt, m);
        assert_eq!(report.result.graph, plain.graph);
        // Resuming from the completed checkpoints lands on the same
        // answer immediately.
        let resumed = solve_orp_multi_report(
            64,
            10,
            &cfg,
            2,
            &MultiOpts {
                resume: true,
                ..opts
            },
        )
        .unwrap();
        assert_eq!(resumed.result.graph, report.result.graph);
        assert_eq!(resumed.result.metrics, report.result.metrics);
        std::fs::remove_dir_all(&dir).ok();
    }
}
