//! Randomized search for ORP (Section 5): simulated annealing with the
//! swap operation (restricted to regular host-switch graphs, §5.1) and
//! with the 2-neighbor swing operation (arbitrary host-switch graphs,
//! §5.2), plus the end-to-end [`solve_orp`] pipeline of §5.3 that first
//! predicts `m_opt` from the continuous Moore bound.

use crate::bounds::optimal_switch_count;
use crate::construct::{random_general, random_regular};
use crate::error::GraphError;
use crate::graph::HostSwitchGraph;
use crate::metrics::PathMetrics;
use crate::ops::{sample_swap, sample_swing, Swing};
use crate::search::{
    resolve_parallel_eval, EvalOutcome, EvalPathKind, SearchState, EARLY_REJECT_LOG,
};
use orp_obs::{Event, Recorder};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which neighbourhood the annealer explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveKind {
    /// Swap only (Fig. 2) — preserves the host distribution, so a regular
    /// initial graph stays regular.
    Swap,
    /// Plain swing only (Fig. 3) — ablation; the paper argues this alone
    /// is insufficient because it always changes host-switch edges.
    Swing,
    /// The 2-neighbor swing of §5.2 (Fig. 4): try a swing; if rejected,
    /// try the follow-up swing whose net effect is a swap.
    TwoNeighborSwing,
}

/// Annealing schedule and bookkeeping knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SaConfig {
    /// Number of proposed moves.
    pub iters: usize,
    /// Initial temperature (h-ASPL units).
    pub t0: f64,
    /// Final temperature. Set `t0 = t_end = 0` for pure hill climbing.
    pub t_end: f64,
    /// RNG seed; identical seeds reproduce identical runs.
    pub seed: u64,
    /// Retries when sampling a valid move.
    pub sample_attempts: usize,
    /// Record `(iteration, best h-ASPL)` every this many iterations
    /// (0 = no history).
    pub history_stride: usize,
    /// Threaded h-ASPL evaluation. `None` (the default) auto-selects:
    /// threads are used when the instance has at least
    /// [`crate::search::PARALLEL_SWITCH_THRESHOLD`] switches and more
    /// than one CPU is available. `Some(_)` overrides the heuristic.
    pub parallel_eval: Option<bool>,
    /// Exact evaluation worker-thread count. `None` (the default) defers
    /// to `parallel_eval`; `Some(w)` pins the persistent pool to `w`
    /// workers regardless of the heuristic — [`solve_orp_multi`] uses
    /// this to split the machine's cores across restart workers.
    /// Results are bit-identical for every worker count.
    pub eval_workers: Option<usize>,
    /// Enables the Δh-ASPL lower-bound early reject: a proposal the
    /// distance cache can prove is uphill by more than
    /// [`crate::search::EARLY_REJECT_LOG`]` × t` (acceptance probability
    /// below `exp(−40)`) is rejected without running any BFS. On by
    /// default. The skipped Metropolis draw advances the RNG stream
    /// differently, so toggling this changes trajectories (each setting
    /// remains fully seed-reproducible).
    pub early_reject: bool,
}

impl Default for SaConfig {
    fn default() -> Self {
        Self {
            iters: 20_000,
            t0: 0.01,
            t_end: 1e-6,
            seed: 1,
            sample_attempts: 32,
            history_stride: 0,
            parallel_eval: None,
            eval_workers: None,
            early_reject: true,
        }
    }
}

impl SaConfig {
    /// Convenience: hill climbing (zero temperature throughout).
    pub fn hill_climb(iters: usize, seed: u64) -> Self {
        Self {
            iters,
            t0: 0.0,
            t_end: 0.0,
            seed,
            ..Self::default()
        }
    }

    /// Starts a typed builder pre-loaded with the defaults.
    pub fn builder() -> SaConfigBuilder {
        SaConfigBuilder {
            cfg: Self::default(),
        }
    }
}

/// Typed builder for [`SaConfig`]; obtain via [`SaConfig::builder`].
///
/// ```
/// use orp_core::anneal::SaConfig;
/// let cfg = SaConfig::builder().iters(500).seed(7).build();
/// assert_eq!(cfg.iters, 500);
/// ```
#[derive(Debug, Clone)]
pub struct SaConfigBuilder {
    cfg: SaConfig,
}

impl SaConfigBuilder {
    /// Number of proposed moves.
    pub fn iters(mut self, iters: usize) -> Self {
        self.cfg.iters = iters;
        self
    }

    /// Initial temperature (h-ASPL units).
    pub fn t0(mut self, t0: f64) -> Self {
        self.cfg.t0 = t0;
        self
    }

    /// Final temperature.
    pub fn t_end(mut self, t_end: f64) -> Self {
        self.cfg.t_end = t_end;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Retries when sampling a valid move.
    pub fn sample_attempts(mut self, attempts: usize) -> Self {
        self.cfg.sample_attempts = attempts;
        self
    }

    /// Best-so-far history stride (0 = no history).
    pub fn history_stride(mut self, stride: usize) -> Self {
        self.cfg.history_stride = stride;
        self
    }

    /// Overrides the parallel-evaluation heuristic.
    pub fn parallel_eval(mut self, parallel: bool) -> Self {
        self.cfg.parallel_eval = Some(parallel);
        self
    }

    /// Pins the evaluation pool to an exact worker count.
    pub fn eval_workers(mut self, workers: usize) -> Self {
        self.cfg.eval_workers = Some(workers);
        self
    }

    /// Enables or disables the lower-bound early reject.
    pub fn early_reject(mut self, on: bool) -> Self {
        self.cfg.early_reject = on;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> SaConfig {
        self.cfg
    }
}

/// Outcome of an annealing run.
#[derive(Debug, Clone)]
pub struct SaResult {
    /// Best graph found.
    pub graph: HostSwitchGraph,
    /// Its metrics.
    pub metrics: PathMetrics,
    /// Moves proposed.
    pub proposed: usize,
    /// Moves accepted.
    pub accepted: usize,
    /// Moves reverted because they disconnected some host pair.
    pub disconnected: usize,
    /// `(iteration, best h-ASPL)` samples when history was requested.
    pub history: Vec<(usize, f64)>,
}

struct Annealer {
    state: SearchState,
    rng: ChaCha8Rng,
    cur: PathMetrics,
    best: HostSwitchGraph,
    best_metrics: PathMetrics,
    accepted: usize,
    proposed: usize,
    disconnected: usize,
    history: Vec<(usize, f64)>,
    /// Candidate buffer for the 2-neighbor second swing, reused across
    /// proposals so the steady state allocates nothing.
    cand_buf: Vec<u32>,
    /// Telemetry handle; the default no-op recorder costs one branch per
    /// call and never touches the RNG, so recording cannot change results.
    rec: Recorder,
    /// Current iteration (for best-trajectory telemetry).
    it: usize,
    /// Accepted-move mix, tracked unconditionally (plain integer adds)
    /// and published as counters only when the recorder is enabled.
    swap_accepted: usize,
    swing_accepted: usize,
    two_neighbor_first: usize,
    two_neighbor_second: usize,
    /// Whether guarded evaluation may early-reject without a BFS.
    early_reject: bool,
}

impl Annealer {
    fn new(g: HostSwitchGraph, cfg: &SaConfig, rec: Recorder) -> Result<Self, GraphError> {
        let workers = cfg
            .eval_workers
            .map(|w| w.max(1))
            .unwrap_or_else(|| resolve_parallel_eval(cfg.parallel_eval, g.num_switches()));
        let mut state = SearchState::with_workers(g, workers)?;
        let cur = state.evaluate().ok_or(GraphError::Disconnected)?;
        Ok(Self {
            best: state.graph().clone(),
            best_metrics: cur,
            state,
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            cur,
            accepted: 0,
            proposed: 0,
            disconnected: 0,
            history: Vec::new(),
            cand_buf: Vec::new(),
            rec,
            it: 0,
            swap_accepted: 0,
            swing_accepted: 0,
            two_neighbor_first: 0,
            two_neighbor_second: 0,
            early_reject: cfg.early_reject,
        })
    }

    /// Runs one guarded evaluation under the eval-latency histogram.
    ///
    /// At temperature `t` the Metropolis rule accepts an uphill move of
    /// `Δ` with probability `exp(-Δ/t)`, so any proposal whose h-ASPL
    /// lower bound exceeds `cur + EARLY_REJECT_LOG·t` would be accepted
    /// with probability below `exp(-EARLY_REJECT_LOG)` — effectively
    /// never — and the guard skips the BFS for it entirely.
    fn evaluate_timed(&mut self, t: f64) -> EvalOutcome {
        let reject_above = if self.early_reject {
            Some(self.cur.haspl + EARLY_REJECT_LOG * t.max(0.0))
        } else {
            None
        };
        let state = &mut self.state;
        let out = self
            .rec
            .time("anneal.eval_ns", || state.evaluate_guarded(reject_above));
        let stats = self.state.eval_stats();
        if stats.last_kind == EvalPathKind::Incremental {
            // histogram of the affected-source fraction, in percent
            self.rec.record(
                "eval.affected_pct",
                (100 * u64::from(stats.last_affected)) / u64::from(stats.last_sources.max(1)),
            );
        }
        out
    }

    fn metropolis(&mut self, delta: f64, t: f64) -> bool {
        if delta <= 0.0 {
            return true;
        }
        if t <= 0.0 {
            return false;
        }
        self.rng.gen::<f64>() < (-delta / t).exp()
    }

    fn note_accept(&mut self, metrics: PathMetrics) {
        self.cur = metrics;
        self.accepted += 1;
        if metrics.haspl < self.best_metrics.haspl {
            self.best_metrics = metrics;
            self.best = self.state.graph().clone();
            if self.rec.is_enabled() {
                self.rec
                    .series("anneal.best_haspl", self.it as f64, metrics.haspl);
                self.rec.emit(Event::Best {
                    iter: self.it as u64,
                    value: metrics.haspl,
                });
            }
        }
    }

    /// One swap proposal; returns whether it was accepted.
    fn step_swap(&mut self, t: f64, attempts: usize) -> bool {
        let Some(s) = sample_swap(
            self.state.graph(),
            self.state.edges(),
            &mut self.rng,
            attempts,
        ) else {
            return false;
        };
        self.proposed += 1;
        self.state.begin();
        self.state.apply_swap(s).expect("sampled swap is valid");
        match self.evaluate_timed(t) {
            EvalOutcome::Metrics(m2) => {
                let delta = m2.haspl - self.cur.haspl;
                if self.metropolis(delta, t) {
                    self.state.commit();
                    self.note_accept(m2);
                    self.swap_accepted += 1;
                    return true;
                }
                self.state.rollback();
                false
            }
            EvalOutcome::EarlyRejected(_) => {
                self.state.rollback();
                false
            }
            EvalOutcome::Disconnected => {
                self.disconnected += 1;
                self.state.rollback();
                false
            }
        }
    }

    /// One plain-swing proposal.
    fn step_swing(&mut self, t: f64, attempts: usize) -> bool {
        let Some(s) = sample_swing(
            self.state.graph(),
            self.state.edges(),
            &mut self.rng,
            attempts,
        ) else {
            return false;
        };
        self.proposed += 1;
        self.state.begin();
        self.state.apply_swing(s).expect("sampled swing is valid");
        match self.evaluate_timed(t) {
            EvalOutcome::Metrics(m2) => {
                let delta = m2.haspl - self.cur.haspl;
                if self.metropolis(delta, t) {
                    self.state.commit();
                    self.note_accept(m2);
                    self.swing_accepted += 1;
                    return true;
                }
                self.state.rollback();
                false
            }
            EvalOutcome::EarlyRejected(_) => {
                self.state.rollback();
                false
            }
            EvalOutcome::Disconnected => {
                self.disconnected += 1;
                self.state.rollback();
                false
            }
        }
    }

    /// One 2-neighbor-swing proposal (the four steps of §5.2), expressed
    /// as a nested transaction: the second swing stacks on the first and
    /// either both commit or both unwind.
    fn step_two_neighbor(&mut self, t: f64, attempts: usize) -> bool {
        let Some(s1) = sample_swing(
            self.state.graph(),
            self.state.edges(),
            &mut self.rng,
            attempts,
        ) else {
            return false;
        };
        self.proposed += 1;
        // Step 1: the 1-neighbor solution.
        self.state.begin();
        self.state.apply_swing(s1).expect("sampled swing is valid");
        match self.evaluate_timed(t) {
            EvalOutcome::Metrics(m1) => {
                let delta = m1.haspl - self.cur.haspl;
                if self.metropolis(delta, t) {
                    // Step 2: accept the 1-neighbor solution.
                    self.state.commit();
                    self.note_accept(m1);
                    self.two_neighbor_first += 1;
                    return true;
                }
            }
            // An early-rejected first swing falls through to the second
            // swing, exactly like a Metropolis rejection would.
            EvalOutcome::EarlyRejected(_) => {}
            EvalOutcome::Disconnected => self.disconnected += 1,
        }
        // Step 3: the 2-neighbor solution swing(s_d, s_c, s_b):
        // pick d adjacent to c (excluding a), rewire {d,c} and move a host
        // back from b to c. Net effect on the original graph is the swap
        // {a,b},{c,d} → {a,c},{b,d}.
        let s2 = {
            let g = self.state.graph();
            self.cand_buf.clear();
            self.cand_buf
                .extend(g.neighbors(s1.c).iter().copied().filter(|&d| {
                    d != s1.a
                        && d != s1.b
                        && Swing {
                            a: d,
                            b: s1.c,
                            c: s1.b,
                        }
                        .is_valid(g)
                }));
            match self.cand_buf.as_slice() {
                [] => None,
                cs => Some(Swing {
                    a: cs[self.rng.gen_range(0..cs.len())],
                    b: s1.c,
                    c: s1.b,
                }),
            }
        };
        if let Some(s2) = s2 {
            self.state.begin();
            self.state.apply_swing(s2).expect("validated candidate");
            match self.evaluate_timed(t) {
                EvalOutcome::Metrics(m2) => {
                    let delta = m2.haspl - self.cur.haspl;
                    if self.metropolis(delta, t) {
                        // Step 4: accept the 2-neighbor solution — the inner
                        // commit folds s2 into the outer transaction.
                        self.state.commit();
                        self.state.commit();
                        self.note_accept(m2);
                        self.two_neighbor_second += 1;
                        return true;
                    }
                }
                EvalOutcome::EarlyRejected(_) => {}
                EvalOutcome::Disconnected => self.disconnected += 1,
            }
            self.state.rollback();
        }
        // Otherwise the initial solution holds.
        self.state.rollback();
        false
    }

    fn run(mut self, kind: MoveKind, cfg: &SaConfig) -> SaResult {
        let span = self.rec.span("anneal.run");
        let iters = cfg.iters.max(1);
        // Geometric cooling; degenerate temperatures fall back to constant.
        let ratio = if cfg.t0 > 0.0 && cfg.t_end > 0.0 {
            (cfg.t_end / cfg.t0).powf(1.0 / iters as f64)
        } else {
            1.0
        };
        // Phase telemetry: ten phases per run, each reporting its local
        // proposal/acceptance mix (so acceptance-rate decay is visible).
        let phase_stride = (iters / 10).max(1);
        let mut phase_index = 0u32;
        let mut phase_base_proposed = 0usize;
        let mut phase_base_accepted = 0usize;
        let mut t = cfg.t0;
        for it in 0..cfg.iters {
            self.it = it;
            let _accepted = match kind {
                MoveKind::Swap => self.step_swap(t, cfg.sample_attempts),
                MoveKind::Swing => self.step_swing(t, cfg.sample_attempts),
                MoveKind::TwoNeighborSwing => self.step_two_neighbor(t, cfg.sample_attempts),
            };
            t *= ratio;
            if cfg.history_stride > 0 && it % cfg.history_stride == 0 {
                self.history.push((it, self.best_metrics.haspl));
            }
            if self.rec.is_enabled() && (it + 1) % phase_stride == 0 {
                self.rec.emit(Event::Phase {
                    index: phase_index,
                    temperature: t,
                    proposed: (self.proposed - phase_base_proposed) as u64,
                    accepted: (self.accepted - phase_base_accepted) as u64,
                    best: self.best_metrics.haspl,
                });
                phase_index += 1;
                phase_base_proposed = self.proposed;
                phase_base_accepted = self.accepted;
            }
        }
        if self.rec.is_enabled() {
            self.rec.incr("anneal.proposed", self.proposed as u64);
            self.rec.incr("anneal.accepted", self.accepted as u64);
            self.rec
                .incr("anneal.disconnected", self.disconnected as u64);
            self.rec
                .incr("anneal.swap_accepted", self.swap_accepted as u64);
            self.rec
                .incr("anneal.swing_accepted", self.swing_accepted as u64);
            self.rec
                .incr("anneal.two_neighbor_first", self.two_neighbor_first as u64);
            self.rec.incr(
                "anneal.two_neighbor_second",
                self.two_neighbor_second as u64,
            );
            // Which eval path ran: full recompute vs affected-source
            // re-BFS vs guard-skipped (no BFS at all).
            let stats = *self.state.eval_stats();
            self.rec.incr("eval.full", stats.full);
            self.rec.incr("eval.incremental", stats.incremental);
            self.rec.incr("eval.early_reject", stats.early_rejected);
            self.rec.incr("eval.repaired", stats.repaired);
        }
        drop(span);
        SaResult {
            graph: self.best,
            metrics: self.best_metrics,
            proposed: self.proposed,
            accepted: self.accepted,
            disconnected: self.disconnected,
            history: self.history,
        }
    }
}

/// Builder-style entry point for one annealing run.
///
/// This is the redesigned public API: every knob is optional, and an
/// [`orp_obs::Recorder`] can be attached without touching the search
/// itself (the recorder never feeds back into the RNG, so a recording
/// run is bit-identical to an unrecorded one).
///
/// ```
/// use orp_core::anneal::{Anneal, MoveKind, SaConfig};
/// use orp_core::construct::random_regular;
///
/// let start = random_regular(16, 4, 6, 1).unwrap();
/// let res = Anneal::builder(start)
///     .kind(MoveKind::Swap)
///     .config(SaConfig::builder().iters(50).seed(1).build())
///     .run()
///     .unwrap();
/// assert!(res.proposed <= 50);
/// ```
#[derive(Debug, Clone)]
pub struct Anneal {
    start: HostSwitchGraph,
    kind: MoveKind,
    cfg: SaConfig,
    rec: Recorder,
}

impl Anneal {
    /// Starts a builder annealing `start` with the defaults: the
    /// 2-neighbor swing neighbourhood, [`SaConfig::default`], and no
    /// recording.
    pub fn builder(start: HostSwitchGraph) -> Self {
        Self {
            start,
            kind: MoveKind::TwoNeighborSwing,
            cfg: SaConfig::default(),
            rec: Recorder::disabled(),
        }
    }

    /// Which neighbourhood to explore.
    pub fn kind(mut self, kind: MoveKind) -> Self {
        self.kind = kind;
        self
    }

    /// Schedule and bookkeeping knobs.
    pub fn config(mut self, cfg: SaConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Attaches a telemetry recorder (defaults to the no-op recorder).
    pub fn recorder(mut self, rec: Recorder) -> Self {
        self.rec = rec;
        self
    }

    /// Runs the annealer.
    pub fn run(self) -> Result<SaResult, GraphError> {
        Ok(Annealer::new(self.start, &self.cfg, self.rec)?.run(self.kind, &self.cfg))
    }
}

/// Anneals an arbitrary starting graph with the chosen move kind.
///
/// The starting graph must have all host pairs connected. This is the
/// recorder-less convenience form of [`Anneal::builder`].
pub fn anneal(
    start: HostSwitchGraph,
    kind: MoveKind,
    cfg: &SaConfig,
) -> Result<SaResult, GraphError> {
    Anneal::builder(start).kind(kind).config(cfg.clone()).run()
}

/// §5.1: swap-based annealing over regular host-switch graphs with `m`
/// switches (`m | n` required).
pub fn anneal_regular(n: u32, m: u32, r: u32, cfg: &SaConfig) -> Result<SaResult, GraphError> {
    let start = random_regular(n, m, r, cfg.seed)?;
    anneal(start, MoveKind::Swap, cfg)
}

/// §5.2: 2-neighbor-swing annealing from a balanced random graph with `m`
/// switches (any `m`).
pub fn anneal_general(n: u32, m: u32, r: u32, cfg: &SaConfig) -> Result<SaResult, GraphError> {
    let start = random_general(n, m, r, cfg.seed)?;
    anneal(start, MoveKind::TwoNeighborSwing, cfg)
}

/// §5.3, the proposed method end-to-end: choose `m = m_opt` by minimising
/// the continuous Moore bound, then run the 2-neighbor-swing annealer.
///
/// Returns the result together with the predicted `m_opt`.
pub fn solve_orp(n: u32, r: u32, cfg: &SaConfig) -> Result<(SaResult, u32), GraphError> {
    let (m_opt, _) = optimal_switch_count(n as u64, r as u64);
    let m_opt = m_opt as u32;
    let res = anneal_general(n, m_opt, r, cfg)?;
    Ok((res, m_opt))
}

/// Multi-restart [`solve_orp`]: runs `restarts` independently seeded
/// annealers on parallel OS threads and keeps the best result. Restart
/// `i` uses seed `cfg.seed + i`, so the single-restart case reproduces
/// [`solve_orp`] exactly.
pub fn solve_orp_multi(
    n: u32,
    r: u32,
    cfg: &SaConfig,
    restarts: usize,
) -> Result<(SaResult, u32), GraphError> {
    let (m_opt, _) = optimal_switch_count(n as u64, r as u64);
    let m_opt = m_opt as u32;
    // Split the machine across the restarts instead of pinning every
    // inner eval to one core: with `restarts < cores` the leftover cores
    // feed each restart's persistent eval pool. An explicit
    // `eval_workers` in `cfg` wins over the split.
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let per_restart = cfg
        .eval_workers
        .map(|w| w.max(1))
        .unwrap_or_else(|| (cores / restarts.max(1)).max(1));
    let results: Vec<Result<SaResult, GraphError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..restarts.max(1) as u64)
            .map(|i| {
                let mut c = cfg.clone();
                c.seed = cfg.seed.wrapping_add(i);
                c.eval_workers = Some(per_restart);
                scope.spawn(move || anneal_general(n, m_opt, r, &c))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("restart worker panicked"))
            .collect()
    });
    let mut best: Option<SaResult> = None;
    let mut last_err = None;
    for res in results {
        match res {
            Ok(r) => {
                if best
                    .as_ref()
                    .map(|b| r.metrics.haspl < b.metrics.haspl)
                    .unwrap_or(true)
                {
                    best = Some(r);
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    match best {
        Some(b) => Ok((b, m_opt)),
        None => Err(last_err.unwrap_or(GraphError::ConstructionFailed("no restarts ran".into()))),
    }
}

/// Calibrates an initial temperature from the instance itself: samples
/// random swing moves on a scratch copy and sets `t0` to the median
/// |Δh-ASPL| (so roughly half of all degrading moves are accepted at the
/// start) and `t_end` three orders of magnitude below.
pub fn auto_temperature(start: &HostSwitchGraph, cfg: &SaConfig) -> SaConfig {
    let Ok(mut state) = SearchState::new(start.clone(), Some(false)) else {
        return cfg.clone();
    };
    let Some(base) = state.evaluate() else {
        return cfg.clone();
    };
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x7e5);
    let mut deltas: Vec<f64> = Vec::new();
    for _ in 0..24 {
        let Some(s) = sample_swing(state.graph(), state.edges(), &mut rng, 16) else {
            continue;
        };
        state.begin();
        state.apply_swing(s).expect("sampled move valid");
        if let Some(m2) = state.evaluate() {
            deltas.push((m2.haspl - base.haspl).abs());
        }
        state.rollback();
    }
    if deltas.is_empty() {
        return cfg.clone();
    }
    deltas.sort_by(f64::total_cmp);
    let t0 = deltas[deltas.len() / 2].max(1e-9);
    SaConfig {
        t0,
        t_end: t0 * 1e-3,
        ..cfg.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::haspl_lower_bound;
    use crate::metrics::path_metrics;

    fn small_cfg(iters: usize) -> SaConfig {
        SaConfig {
            iters,
            t0: 0.02,
            t_end: 1e-5,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn swap_anneal_improves_over_random_start() {
        let n = 64;
        let m = 16;
        let r = 8; // per = 4, k = 4
        let start = random_regular(n, m, r, 7).unwrap();
        let before = path_metrics(&start).unwrap().haspl;
        let res = anneal(start, MoveKind::Swap, &small_cfg(800)).unwrap();
        assert!(res.metrics.haspl <= before);
        res.graph.validate().unwrap();
        // swap preserves regularity
        assert_eq!(res.graph.regularity(), Some((4, 4)));
        assert!(res.accepted > 0);
    }

    #[test]
    fn two_neighbor_swing_anneal_improves() {
        let n = 64;
        let m = 16;
        let r = 8;
        let start = random_general(n, m, r, 3).unwrap();
        let before = path_metrics(&start).unwrap().haspl;
        let res = anneal(start, MoveKind::TwoNeighborSwing, &small_cfg(800)).unwrap();
        assert!(res.metrics.haspl <= before);
        res.graph.validate().unwrap();
        assert_eq!(res.graph.num_hosts(), n);
        assert_eq!(res.graph.num_switches(), m);
        assert!(res.metrics.haspl >= haspl_lower_bound(n as u64, r as u64) - 1e-9);
    }

    #[test]
    fn plain_swing_anneal_runs() {
        let start = random_general(48, 12, 8, 5).unwrap();
        let res = anneal(start, MoveKind::Swing, &small_cfg(400)).unwrap();
        res.graph.validate().unwrap();
        assert!(res.metrics.haspl >= 2.0);
    }

    #[test]
    fn hill_climb_never_accepts_worse() {
        let start = random_general(48, 12, 8, 5).unwrap();
        let before = path_metrics(&start).unwrap();
        let cfg = SaConfig::hill_climb(400, 11);
        let res = anneal(start, MoveKind::TwoNeighborSwing, &cfg).unwrap();
        assert!(res.metrics.haspl <= before.haspl);
    }

    #[test]
    fn runs_are_reproducible() {
        let cfg = small_cfg(300);
        let a = anneal_general(48, 12, 8, &cfg).unwrap();
        let b = anneal_general(48, 12, 8, &cfg).unwrap();
        assert_eq!(a.metrics.total_length, b.metrics.total_length);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn history_is_monotone_nonincreasing() {
        let cfg = SaConfig {
            history_stride: 50,
            ..small_cfg(500)
        };
        let res = anneal_general(48, 12, 8, &cfg).unwrap();
        assert!(!res.history.is_empty());
        for w in res.history.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
    }

    #[test]
    fn solve_orp_uses_m_opt() {
        let (res, m_opt) = solve_orp(64, 10, &small_cfg(300)).unwrap();
        assert_eq!(res.graph.num_switches(), m_opt);
        assert_eq!(res.graph.num_hosts(), 64);
        res.graph.validate().unwrap();
        let lb = haspl_lower_bound(64, 10);
        assert!(res.metrics.haspl >= lb - 1e-9);
        // should come reasonably close to the bound on such a small case
        assert!(
            res.metrics.haspl <= lb + 1.5,
            "{} vs {lb}",
            res.metrics.haspl
        );
    }

    #[test]
    fn multi_restart_takes_the_best() {
        let cfg = small_cfg(300);
        let (single, _) = solve_orp(64, 10, &cfg).unwrap();
        let (multi, m) = solve_orp_multi(64, 10, &cfg, 4).unwrap();
        assert_eq!(multi.graph.num_switches(), m);
        assert!(multi.metrics.haspl <= single.metrics.haspl + 1e-12);
    }

    #[test]
    fn single_restart_reproduces_solve_orp() {
        let cfg = small_cfg(300);
        let (a, _) = solve_orp(64, 10, &cfg).unwrap();
        let (b, _) = solve_orp_multi(64, 10, &cfg, 1).unwrap();
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn auto_temperature_matches_move_scale() {
        let g = random_general(128, 32, 10, 3).unwrap();
        let tuned = auto_temperature(&g, &SaConfig::default());
        // typical swing deltas at this size are O(1/n)..O(0.1)
        assert!(tuned.t0 > 0.0 && tuned.t0 < 0.5, "t0 = {}", tuned.t0);
        assert!(tuned.t_end < tuned.t0);
        // annealing with the tuned schedule still works
        let res = anneal(
            g,
            MoveKind::TwoNeighborSwing,
            &SaConfig {
                iters: 400,
                ..tuned
            },
        )
        .unwrap();
        res.graph.validate().unwrap();
    }

    #[test]
    fn recorded_run_is_identical_and_populates_telemetry() {
        let cfg = small_cfg(300);
        let start = random_general(48, 12, 8, 3).unwrap();
        let plain = anneal(start.clone(), MoveKind::TwoNeighborSwing, &cfg).unwrap();
        let rec = Recorder::enabled();
        let traced = Anneal::builder(start)
            .kind(MoveKind::TwoNeighborSwing)
            .config(cfg)
            .recorder(rec.clone())
            .run()
            .unwrap();
        // recording must not perturb the search
        assert_eq!(plain.graph, traced.graph);
        assert_eq!(plain.accepted, traced.accepted);
        let snap = rec.snapshot().unwrap();
        assert_eq!(
            snap.counter("anneal.proposed"),
            Some(traced.proposed as u64)
        );
        assert_eq!(
            snap.counter("anneal.accepted"),
            Some(traced.accepted as u64)
        );
        assert_eq!(snap.event_count("anneal.phase"), 10);
        assert!(snap.histogram("anneal.eval_ns").unwrap().count >= traced.proposed as u64);
        assert!(!snap.series("anneal.best_haspl").unwrap().is_empty());
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "anneal.run");
    }

    #[test]
    fn sa_config_builder_matches_struct_literal() {
        let built = SaConfig::builder()
            .iters(123)
            .t0(0.5)
            .t_end(1e-4)
            .seed(9)
            .sample_attempts(8)
            .history_stride(10)
            .parallel_eval(false)
            .eval_workers(3)
            .early_reject(false)
            .build();
        assert_eq!(built.iters, 123);
        assert_eq!(built.t0, 0.5);
        assert_eq!(built.t_end, 1e-4);
        assert_eq!(built.seed, 9);
        assert_eq!(built.sample_attempts, 8);
        assert_eq!(built.history_stride, 10);
        assert_eq!(built.parallel_eval, Some(false));
        assert_eq!(built.eval_workers, Some(3));
        assert!(!built.early_reject);
    }

    #[test]
    fn eval_worker_count_does_not_change_results() {
        // Every pool size reduces partial sums in deterministic order, so
        // pinning more eval workers is a pure wall-clock knob.
        let one = SaConfig {
            eval_workers: Some(1),
            ..small_cfg(300)
        };
        let three = SaConfig {
            eval_workers: Some(3),
            ..small_cfg(300)
        };
        let a = anneal_general(48, 12, 8, &one).unwrap();
        let b = anneal_general(48, 12, 8, &three).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn early_reject_off_still_converges() {
        // Disabling the guard changes which proposals consume RNG draws,
        // so results may differ from the guarded run — but the run itself
        // must stay valid and each setting stays seed-reproducible.
        let cfg = SaConfig {
            early_reject: false,
            ..small_cfg(400)
        };
        let a = anneal_general(48, 12, 8, &cfg).unwrap();
        let b = anneal_general(48, 12, 8, &cfg).unwrap();
        assert_eq!(a.graph, b.graph);
        a.graph.validate().unwrap();
    }

    #[test]
    fn anneal_rejects_disconnected_start() {
        let mut g = HostSwitchGraph::new(2, 4).unwrap();
        g.attach_host(0).unwrap();
        g.attach_host(1).unwrap();
        assert!(anneal(g, MoveKind::Swap, &small_cfg(10)).is_err());
    }
}
