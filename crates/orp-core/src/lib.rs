//! # orp-core — host-switch graphs and the Order/Radix Problem
//!
//! Reference implementation of *"Order/Radix Problem: Towards Low
//! End-to-End Latency Interconnection Networks"* (Yasudo et al.,
//! ICPP 2017).
//!
//! A [`HostSwitchGraph`] models an interconnection network with `n`
//! single-port **hosts** and `m` radix-`r` **switches**. The *Order/Radix
//! Problem* (ORP) asks: given `n` and `r` — with `m` free — find the
//! host-switch graph minimising the host-to-host average shortest path
//! length (**h-ASPL**), which is the ideal all-to-all latency of the
//! network.
//!
//! The crate provides:
//!
//! * the graph model and invariant enforcement ([`graph`]),
//! * exact h-ASPL / diameter computation via switch-level APSP
//!   ([`metrics`]),
//! * all lower bounds of the paper — Theorems 1 and 2, the Moore bound,
//!   and the continuous Moore bound that predicts the optimal switch
//!   count `m_opt` ([`bounds`]),
//! * the swap / swing / 2-neighbor-swing local-search operations
//!   ([`ops`]), the transactional, allocation-free evaluation engine
//!   behind the annealer ([`search`]), and the simulated-annealing solver
//!   itself ([`anneal`]),
//! * constructions for the analytically optimal regimes ([`construct`])
//!   and a textual interchange format ([`io`]).
//!
//! ## Quickstart
//!
//! ```
//! use orp_core::solver::Solver;
//! use orp_core::anneal::SaConfig;
//! use orp_core::bounds::haspl_lower_bound;
//!
//! let cfg = SaConfig { iters: 500, seed: 42, ..Default::default() };
//! let report = Solver::builder(64, 10).config(cfg).run().unwrap();
//! assert_eq!(report.result.graph.num_switches(), report.m_opt);
//! assert!(report.result.metrics.haspl >= haspl_lower_bound(64, 10));
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod anneal;
pub mod bounds;
pub mod ckpt;
pub mod construct;
pub mod error;
pub mod exact;
pub mod fault;
pub mod graph;
pub mod io;
pub mod metrics;
pub mod odp;
pub mod ops;
pub mod random_graphs;
pub mod search;
pub mod solver;
pub mod temper;
pub mod watchdog;
pub mod wsdeque;

pub use anneal::{Anneal, MoveKind, MultiOpts, MultiReport, SaConfig, SaConfigBuilder, SaResult};
pub use ckpt::{Checkpointable, CkptError};
pub use error::{GraphError, SaError, WorkerPanic};
pub use fault::{DegradedMetrics, FaultSet, FaultView};
pub use graph::{Host, HostSwitchGraph, Switch};
pub use metrics::{path_metrics, path_metrics_par, PathMetrics};
pub use search::{CacheCodec, CacheMode, PoolWorkerStats, SearchConfig, SearchState};
pub use solver::{SolveReport, Solver};
pub use temper::{geometric_ladder, ExchangeStats, Temper, TemperResult};
pub use watchdog::{WatchSource, Watchdog, WatchdogConfig};
