//! Fault models and degraded-operation metrics.
//!
//! A deployed network loses switches and links; the paper's h-ASPL
//! advantage only matters if it survives that. This module models
//! failures as a [`FaultSet`] — failed switches, switch–switch links and
//! host–switch uplinks — that is *applied as a view* over an immutable
//! [`HostSwitchGraph`] ([`FaultView`]), so the same topology can be
//! evaluated under many fault draws without rebuilding anything.
//!
//! The degraded metrics mirror §3.2 under faults:
//!
//! * **reachable-pair fraction** — surviving host pairs that can still
//!   communicate, over all original pairs (1.0 = unhurt),
//! * **degraded h-ASPL / diameter** — path metrics over the pairs that
//!   remain reachable (fault-free h-ASPL when the fault set is empty),
//! * **path diversity** — edge-disjoint shortest-path counts between
//!   switch pairs, the headroom the network has before a cut isolates
//!   someone.
//!
//! Fault draws are deterministic: [`FaultSet::sample`] with a fixed seed
//! always fails the same elements.

use crate::graph::{Host, HostSwitchGraph, Switch};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A set of failed network elements, independent of any particular graph
/// until applied through a [`FaultView`].
///
/// Switch failure subsumes the failure of every incident link and of the
/// uplinks of every host attached to it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSet {
    /// Failed switches, sorted, deduplicated.
    switches: Vec<Switch>,
    /// Failed switch–switch links as `(min, max)` pairs, sorted.
    links: Vec<(Switch, Switch)>,
    /// Hosts whose uplink to their switch failed, sorted.
    host_links: Vec<Host>,
}

impl FaultSet {
    /// The empty fault set (fault-free operation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether no element failed.
    pub fn is_empty(&self) -> bool {
        self.switches.is_empty() && self.links.is_empty() && self.host_links.is_empty()
    }

    /// Number of failed switches.
    pub fn num_failed_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of failed switch–switch links (excluding those implied by
    /// switch failures).
    pub fn num_failed_links(&self) -> usize {
        self.links.len()
    }

    /// Number of failed host uplinks (excluding those implied by switch
    /// failures).
    pub fn num_failed_host_links(&self) -> usize {
        self.host_links.len()
    }

    /// The failed switches, sorted.
    pub fn failed_switches(&self) -> &[Switch] {
        &self.switches
    }

    /// The explicitly failed switch–switch links, sorted `(min, max)`.
    pub fn failed_links(&self) -> &[(Switch, Switch)] {
        &self.links
    }

    /// The explicitly failed host uplinks, sorted.
    pub fn failed_host_links(&self) -> &[Host] {
        &self.host_links
    }

    /// Marks switch `s` failed.
    pub fn fail_switch(&mut self, s: Switch) -> &mut Self {
        if let Err(pos) = self.switches.binary_search(&s) {
            self.switches.insert(pos, s);
        }
        self
    }

    /// Marks the switch–switch link `{a, b}` failed.
    pub fn fail_link(&mut self, a: Switch, b: Switch) -> &mut Self {
        let key = (a.min(b), a.max(b));
        if let Err(pos) = self.links.binary_search(&key) {
            self.links.insert(pos, key);
        }
        self
    }

    /// Marks the uplink of host `h` failed.
    pub fn fail_host_link(&mut self, h: Host) -> &mut Self {
        if let Err(pos) = self.host_links.binary_search(&h) {
            self.host_links.insert(pos, h);
        }
        self
    }

    /// Whether switch `s` is marked failed.
    pub fn switch_failed(&self, s: Switch) -> bool {
        self.switches.binary_search(&s).is_ok()
    }

    /// Whether link `{a, b}` is marked failed *explicitly* (switch
    /// failures are not consulted; see [`FaultView::link_alive`]).
    pub fn link_failed(&self, a: Switch, b: Switch) -> bool {
        self.links.binary_search(&(a.min(b), a.max(b))).is_ok()
    }

    /// Whether the uplink of host `h` is marked failed explicitly.
    pub fn host_link_failed(&self, h: Host) -> bool {
        self.host_links.binary_search(&h).is_ok()
    }

    /// Draws a random fault set over `g`: every switch fails
    /// independently with probability `switch_rate`, every switch–switch
    /// link with probability `link_rate`. Deterministic for a fixed
    /// `seed` (switches in id order, links in [`HostSwitchGraph::links`]
    /// order).
    pub fn sample(g: &HostSwitchGraph, switch_rate: f64, link_rate: f64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut f = Self::new();
        for s in 0..g.num_switches() {
            if rng.gen::<f64>() < switch_rate {
                f.fail_switch(s);
            }
        }
        for (a, b) in g.links() {
            if rng.gen::<f64>() < link_rate {
                f.fail_link(a, b);
            }
        }
        f
    }
}

/// Degraded path metrics of a faulted network (the §3.2 metrics computed
/// over the pairs that survive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedMetrics {
    /// Hosts in the original graph.
    pub total_hosts: u32,
    /// Hosts that still have a live uplink to a live switch.
    pub alive_hosts: u32,
    /// Unordered host pairs in the original graph.
    pub total_pairs: u64,
    /// Surviving pairs that can still communicate.
    pub reachable_pairs: u64,
    /// `reachable_pairs / total_pairs` (1.0 when there are no pairs).
    pub reachable_fraction: f64,
    /// h-ASPL over the reachable pairs; `None` when no pair survives.
    pub haspl: Option<f64>,
    /// Host-to-host diameter over the reachable pairs (0 when none).
    pub diameter: u32,
    /// Whether every pair of *surviving* hosts is still connected.
    pub connected: bool,
}

/// Edge-disjoint shortest-path statistics over sampled host pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiversitySummary {
    /// Minimum edge-disjoint shortest-path count over the sample.
    pub min: u32,
    /// Mean edge-disjoint shortest-path count over the sample.
    pub mean: f64,
    /// Number of (reachable, distinct-switch) pairs sampled.
    pub pairs: usize,
}

/// A non-mutating degraded view: `graph` with `faults` subtracted.
#[derive(Debug, Clone, Copy)]
pub struct FaultView<'a> {
    graph: &'a HostSwitchGraph,
    faults: &'a FaultSet,
}

impl<'a> FaultView<'a> {
    /// Applies `faults` to `graph` as a view.
    pub fn new(graph: &'a HostSwitchGraph, faults: &'a FaultSet) -> Self {
        Self { graph, faults }
    }

    /// The underlying fault-free graph.
    pub fn graph(&self) -> &HostSwitchGraph {
        self.graph
    }

    /// The applied fault set.
    pub fn faults(&self) -> &FaultSet {
        self.faults
    }

    /// Whether switch `s` survives.
    pub fn switch_alive(&self, s: Switch) -> bool {
        !self.faults.switch_failed(s)
    }

    /// Whether the link `{a, b}` survives: both endpoints alive and the
    /// link itself not failed. (Does not check that the link exists.)
    pub fn link_alive(&self, a: Switch, b: Switch) -> bool {
        self.switch_alive(a) && self.switch_alive(b) && !self.faults.link_failed(a, b)
    }

    /// Whether host `h` survives: its uplink and its switch are alive.
    pub fn host_alive(&self, h: Host) -> bool {
        !self.faults.host_link_failed(h) && self.switch_alive(self.graph.switch_of(h))
    }

    /// Surviving switch-neighbours of `s` (empty when `s` is dead).
    pub fn surviving_neighbors(&self, s: Switch) -> impl Iterator<Item = Switch> + '_ {
        let dead = !self.switch_alive(s);
        self.graph
            .neighbors(s)
            .iter()
            .copied()
            .filter(move |&v| !dead && self.link_alive(s, v))
    }

    /// Surviving adjacency lists, indexed by switch id (dead switches get
    /// empty lists) — the input shape fault-aware routing builds from.
    pub fn surviving_adjacency(&self) -> Vec<Vec<Switch>> {
        (0..self.graph.num_switches())
            .map(|s| self.surviving_neighbors(s).collect())
            .collect()
    }

    /// Per-switch count of surviving hosts.
    pub fn surviving_host_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.graph.num_switches() as usize];
        for h in 0..self.graph.num_hosts() {
            if self.host_alive(h) {
                counts[self.graph.switch_of(h) as usize] += 1;
            }
        }
        counts
    }

    /// BFS hop counts over the *surviving* switch graph from `src`
    /// (`u32::MAX` = unreachable; everything unreachable when `src` is
    /// dead).
    pub fn switch_distances(&self, src: Switch) -> Vec<u32> {
        let m = self.graph.num_switches() as usize;
        let mut dist = vec![u32::MAX; m];
        if !self.switch_alive(src) {
            return dist;
        }
        let mut queue = std::collections::VecDeque::with_capacity(m);
        dist[src as usize] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for v in self.surviving_neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Materialises the view as a physically pruned graph: same switch
    /// ids and radix, only surviving links, surviving hosts re-attached
    /// to their original switches (host *ids* are compacted). The
    /// reference the view-based metrics are equivalence-tested against.
    pub fn pruned_graph(&self) -> HostSwitchGraph {
        let g = self.graph;
        let mut p = HostSwitchGraph::new(g.num_switches(), g.radix())
            .expect("pruning preserves valid parameters");
        for (a, b) in g.links() {
            if self.link_alive(a, b) {
                p.add_link(a, b).expect("pruned link fits original ports");
            }
        }
        for h in 0..g.num_hosts() {
            if self.host_alive(h) {
                p.attach_host(g.switch_of(h))
                    .expect("pruned host fits original ports");
            }
        }
        p
    }

    /// Computes the degraded path metrics of the view — one BFS per
    /// host-bearing surviving switch, like [`crate::metrics`] but
    /// tolerating (and accounting) unreachable pairs instead of bailing.
    pub fn degraded_metrics(&self) -> DegradedMetrics {
        let g = self.graph;
        let n_total = g.num_hosts() as u64;
        let total_pairs = n_total * n_total.saturating_sub(1) / 2;
        let counts = self.surviving_host_counts();
        let alive: u64 = counts.iter().map(|&k| k as u64).sum();
        let alive_pairs = alive * alive.saturating_sub(1) / 2;

        let mut ordered_pairs = 0u64;
        let mut ordered_sum = 0u64;
        let mut max_inter = 0u32;
        let mut any_inter = false;
        for a in 0..g.num_switches() {
            let ka = counts[a as usize] as u64;
            if ka == 0 {
                continue;
            }
            let dist = self.switch_distances(a);
            for (b, (&d, &kb)) in dist.iter().zip(&counts).enumerate() {
                if kb == 0 || b as u32 == a || d == u32::MAX {
                    continue;
                }
                ordered_pairs += ka * kb as u64;
                ordered_sum += ka * kb as u64 * (d as u64 + 2);
                max_inter = max_inter.max(d);
                any_inter = true;
            }
        }
        let mut reachable_pairs = ordered_pairs / 2;
        let mut total_length = ordered_sum / 2;
        let mut diameter = if any_inter { max_inter + 2 } else { 0 };
        for &k in &counts {
            let k = k as u64;
            if k >= 2 {
                reachable_pairs += k * (k - 1) / 2;
                total_length += k * (k - 1) / 2 * 2;
                diameter = diameter.max(2);
            }
        }
        DegradedMetrics {
            total_hosts: n_total as u32,
            alive_hosts: alive as u32,
            total_pairs,
            reachable_pairs,
            reachable_fraction: if total_pairs == 0 {
                1.0
            } else {
                reachable_pairs as f64 / total_pairs as f64
            },
            haspl: (reachable_pairs > 0).then(|| total_length as f64 / reachable_pairs as f64),
            diameter,
            connected: reachable_pairs == alive_pairs,
        }
    }

    /// The surviving hosts of the largest surviving connected component
    /// (by alive-host count, ties to the lower-id component root) —
    /// where a degraded run would place its MPI ranks.
    pub fn largest_component_hosts(&self) -> Vec<Host> {
        let g = self.graph;
        let m = g.num_switches() as usize;
        let counts = self.surviving_host_counts();
        let mut comp = vec![u32::MAX; m];
        let mut best_root = u32::MAX;
        let mut best_hosts = 0u64;
        for s in 0..m as u32 {
            if comp[s as usize] != u32::MAX || !self.switch_alive(s) {
                continue;
            }
            let mut stack = vec![s];
            comp[s as usize] = s;
            let mut hosts = 0u64;
            while let Some(u) = stack.pop() {
                hosts += counts[u as usize] as u64;
                for v in self.surviving_neighbors(u) {
                    if comp[v as usize] == u32::MAX {
                        comp[v as usize] = s;
                        stack.push(v);
                    }
                }
            }
            if hosts > best_hosts {
                best_hosts = hosts;
                best_root = s;
            }
        }
        if best_root == u32::MAX {
            return Vec::new();
        }
        (0..g.num_hosts())
            .filter(|&h| self.host_alive(h) && comp[g.switch_of(h) as usize] == best_root)
            .collect()
    }

    /// Number of edge-disjoint shortest paths between surviving switches
    /// `a` and `b`: max flow over the shortest-path DAG with unit link
    /// capacities. 0 when unreachable (or either endpoint dead);
    /// `u32::MAX` is never returned — `a == b` yields 0 by convention.
    pub fn edge_disjoint_shortest_paths(&self, a: Switch, b: Switch) -> u32 {
        if a == b || !self.switch_alive(a) || !self.switch_alive(b) {
            return 0;
        }
        let da = self.switch_distances(a);
        if da[b as usize] == u32::MAX {
            return 0;
        }
        let db = self.switch_distances(b);
        let total = da[b as usize];
        // DAG arcs: surviving (u, v) on some shortest path, directed
        // toward b. Unit capacities; flow found by repeated DFS
        // augmentation on the residual (at most radix augmentations).
        let m = self.graph.num_switches() as usize;
        let mut arcs: Vec<Vec<u32>> = vec![Vec::new(); m]; // forward adjacency
        for u in 0..m as u32 {
            if da[u as usize] == u32::MAX || db[u as usize] == u32::MAX {
                continue;
            }
            for v in self.surviving_neighbors(u) {
                if db[v as usize] != u32::MAX && da[u as usize] + 1 + db[v as usize] == total {
                    arcs[u as usize].push(v);
                }
            }
        }
        let mut used: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        let mut flow = 0u32;
        loop {
            // DFS for an augmenting path over residual arcs: forward arcs
            // not yet used, plus reversals of used arcs.
            let mut parent: Vec<Option<u32>> = vec![None; m];
            let mut stack = vec![a];
            let mut seen = vec![false; m];
            seen[a as usize] = true;
            while let Some(u) = stack.pop() {
                if u == b {
                    break;
                }
                for &v in &arcs[u as usize] {
                    if !seen[v as usize] && !used.contains(&(u, v)) {
                        seen[v as usize] = true;
                        parent[v as usize] = Some(u);
                        stack.push(v);
                    }
                }
                // residual back-arcs: v -> u exists if (v, u)… we need
                // arcs *into* u that carry flow; scan used arcs ending at u
                for w in 0..m as u32 {
                    if !seen[w as usize] && used.contains(&(w, u)) {
                        seen[w as usize] = true;
                        parent[w as usize] = Some(u);
                        stack.push(w);
                    }
                }
            }
            if !seen[b as usize] {
                break;
            }
            // walk back, toggling arcs
            let mut v = b;
            while v != a {
                let u = parent[v as usize].expect("path recorded");
                if !used.remove(&(v, u)) {
                    used.insert((u, v));
                }
                v = u;
            }
            flow += 1;
        }
        flow
    }

    /// Samples `pairs` random surviving host pairs on distinct switches
    /// and summarises their path diversity. `None` when fewer than one
    /// such reachable pair exists (or no two live hosts on distinct
    /// switches are found within the sampling budget).
    pub fn diversity_sample(&self, pairs: usize, seed: u64) -> Option<DiversitySummary> {
        let g = self.graph;
        let n = g.num_hosts();
        if n < 2 || pairs == 0 {
            return None;
        }
        let alive: Vec<Host> = (0..n).filter(|&h| self.host_alive(h)).collect();
        if alive.len() < 2 {
            return None;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut min = u32::MAX;
        let mut sum = 0u64;
        let mut counted = 0usize;
        for _ in 0..pairs.saturating_mul(4) {
            if counted == pairs {
                break;
            }
            let x = alive[rng.gen_range(0..alive.len())];
            let y = alive[rng.gen_range(0..alive.len())];
            let (sx, sy) = (g.switch_of(x), g.switch_of(y));
            if sx == sy {
                continue;
            }
            let d = self.edge_disjoint_shortest_paths(sx, sy);
            min = min.min(d);
            sum += d as u64;
            counted += 1;
        }
        (counted > 0).then(|| DiversitySummary {
            min,
            mean: sum as f64 / counted as f64,
            pairs: counted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::random_general;
    use crate::metrics::path_metrics;

    /// 4 switches in a ring, 2 hosts each, radix 6.
    fn ring4() -> HostSwitchGraph {
        let mut g = HostSwitchGraph::new(4, 6).unwrap();
        for s in 0..4 {
            g.add_link(s, (s + 1) % 4).unwrap();
        }
        for s in 0..4 {
            g.attach_host(s).unwrap();
            g.attach_host(s).unwrap();
        }
        g
    }

    #[test]
    fn empty_faults_reproduce_path_metrics() {
        let g = ring4();
        let f = FaultSet::new();
        let view = FaultView::new(&g, &f);
        let dm = view.degraded_metrics();
        let pm = path_metrics(&g).unwrap();
        assert_eq!(dm.alive_hosts, 8);
        assert_eq!(dm.reachable_pairs, dm.total_pairs);
        assert_eq!(dm.reachable_fraction, 1.0);
        assert!(dm.connected);
        assert!((dm.haspl.unwrap() - pm.haspl).abs() < 1e-12);
        assert_eq!(dm.diameter, pm.diameter);
    }

    #[test]
    fn switch_failure_kills_hosts_and_links() {
        let g = ring4();
        let mut f = FaultSet::new();
        f.fail_switch(1);
        let view = FaultView::new(&g, &f);
        assert!(!view.switch_alive(1));
        assert!(!view.link_alive(0, 1));
        assert!(view.link_alive(2, 3));
        // hosts 2,3 live on switch 1
        assert!(!view.host_alive(2));
        assert!(!view.host_alive(3));
        assert!(view.host_alive(0));
        let dm = view.degraded_metrics();
        assert_eq!(dm.alive_hosts, 6);
        // ring minus one switch = a path; all 6 survivors still connected
        assert!(dm.connected);
        assert!(dm.reachable_fraction < 1.0);
    }

    #[test]
    fn link_cut_disconnects_ring_only_with_two_cuts() {
        let g = ring4();
        let mut f = FaultSet::new();
        f.fail_link(0, 1);
        let view = FaultView::new(&g, &f);
        assert!(view.degraded_metrics().connected);
        f.fail_link(2, 3);
        let view = FaultView::new(&g, &f);
        let dm = view.degraded_metrics();
        assert!(!dm.connected);
        assert_eq!(dm.alive_hosts, 8);
        // components {0,3} and {1,2}: 4+4 hosts each side; cross pairs lost
        assert_eq!(dm.reachable_pairs, 2 * (4 * 3 / 2));
        assert!(dm.reachable_fraction < 0.5);
    }

    #[test]
    fn host_uplink_failure_is_isolated() {
        let g = ring4();
        let mut f = FaultSet::new();
        f.fail_host_link(5);
        let view = FaultView::new(&g, &f);
        assert!(!view.host_alive(5));
        assert!(view.switch_alive(g.switch_of(5)));
        let dm = view.degraded_metrics();
        assert_eq!(dm.alive_hosts, 7);
        assert!(dm.connected);
    }

    #[test]
    fn pruned_graph_matches_view_counts() {
        let g = random_general(24, 8, 8, 7).unwrap();
        let f = FaultSet::sample(&g, 0.2, 0.1, 3);
        let view = FaultView::new(&g, &f);
        let p = view.pruned_graph();
        assert_eq!(p.num_hosts(), view.degraded_metrics().alive_hosts);
        assert_eq!(p.host_counts(), view.surviving_host_counts());
        let live_links = g.links().filter(|&(a, b)| view.link_alive(a, b)).count();
        assert_eq!(p.num_links(), live_links);
    }

    #[test]
    fn sampling_is_deterministic_and_rate_sensitive() {
        let g = random_general(64, 16, 8, 1).unwrap();
        let a = FaultSet::sample(&g, 0.3, 0.3, 9);
        let b = FaultSet::sample(&g, 0.3, 0.3, 9);
        assert_eq!(a, b);
        let none = FaultSet::sample(&g, 0.0, 0.0, 9);
        assert!(none.is_empty());
        let all = FaultSet::sample(&g, 1.0, 1.0, 9);
        assert_eq!(all.num_failed_switches(), 16);
    }

    #[test]
    fn diversity_counts_disjoint_paths_on_ring() {
        let g = ring4();
        let f = FaultSet::new();
        let view = FaultView::new(&g, &f);
        // antipodal switches on a C4: two edge-disjoint shortest paths
        assert_eq!(view.edge_disjoint_shortest_paths(0, 2), 2);
        // adjacent: the single direct link is the only shortest path
        assert_eq!(view.edge_disjoint_shortest_paths(0, 1), 1);
        assert_eq!(view.edge_disjoint_shortest_paths(0, 0), 0);
    }

    #[test]
    fn diversity_drops_under_faults() {
        let g = ring4();
        let mut f = FaultSet::new();
        f.fail_link(1, 2);
        let view = FaultView::new(&g, &f);
        // 0→2 now only via 3
        assert_eq!(view.edge_disjoint_shortest_paths(0, 2), 1);
        f.fail_link(3, 0);
        let view = FaultView::new(&g, &f);
        assert_eq!(view.edge_disjoint_shortest_paths(0, 2), 0);
    }

    #[test]
    fn diversity_sample_summary() {
        let g = random_general(32, 8, 8, 2).unwrap();
        let f = FaultSet::new();
        let view = FaultView::new(&g, &f);
        let s = view.diversity_sample(16, 5).unwrap();
        assert!(s.pairs > 0);
        assert!(s.min >= 1, "connected graph must have diversity >= 1");
        assert!(s.mean >= s.min as f64);
        // deterministic
        assert_eq!(view.diversity_sample(16, 5), Some(s));
    }

    #[test]
    fn largest_component_tracks_partition() {
        let g = ring4();
        let f = FaultSet::new();
        let view = FaultView::new(&g, &f);
        assert_eq!(view.largest_component_hosts().len(), 8);
        // cut the ring into {0,1} and {2,3}; kill a host on the 2-3 side
        let mut f = FaultSet::new();
        f.fail_link(1, 2).fail_link(3, 0).fail_host_link(4);
        let view = FaultView::new(&g, &f);
        let block = view.largest_component_hosts();
        assert_eq!(block, vec![0, 1, 2, 3]);
    }

    #[test]
    fn all_switches_dead_yields_zero_everything() {
        let g = ring4();
        let f = FaultSet::sample(&g, 1.0, 0.0, 1);
        let view = FaultView::new(&g, &f);
        let dm = view.degraded_metrics();
        assert_eq!(dm.alive_hosts, 0);
        assert_eq!(dm.reachable_pairs, 0);
        assert_eq!(dm.haspl, None);
        assert_eq!(dm.diameter, 0);
        assert!(dm.connected, "vacuously connected");
    }
}
