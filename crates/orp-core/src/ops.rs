//! Local-search operations of Section 5: the *swap* operation (Fig. 2),
//! the *swing* operation (Fig. 3), and helpers for sampling random moves.
//!
//! Both operations preserve every switch's total degree (used ports), so a
//! graph that satisfies the radix constraint keeps satisfying it; they can
//! however disconnect the graph, which the annealer detects via the metric
//! evaluation and reverts.

use crate::error::GraphError;
use crate::graph::{Host, HostSwitchGraph, Switch};
use rand::Rng;
use std::collections::HashMap;

/// The swap operation: replaces `{a,b}, {c,d}` by `{a,d}, {c,b}` (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Swap {
    /// First endpoint of the first edge (keeps its other port).
    pub a: Switch,
    /// Second endpoint of the first edge (reconnects to `c`).
    pub b: Switch,
    /// First endpoint of the second edge (keeps its other port).
    pub c: Switch,
    /// Second endpoint of the second edge (reconnects to `a`).
    pub d: Switch,
}

impl Swap {
    /// The swap that undoes this one.
    #[inline]
    pub fn inverse(self) -> Self {
        Swap {
            a: self.a,
            b: self.d,
            c: self.c,
            d: self.b,
        }
    }

    /// Whether applying the swap to `g` keeps the graph simple: all four
    /// switches pairwise usable, replacement edges absent.
    pub fn is_valid(&self, g: &HostSwitchGraph) -> bool {
        let Swap { a, b, c, d } = *self;
        // the two edges must exist and be distinct
        if !(g.has_link(a, b) && g.has_link(c, d)) {
            return false;
        }
        if (a == c && b == d) || (a == d && b == c) {
            return false;
        }
        // new edges must not create loops or duplicates
        if a == d || c == b {
            return false;
        }
        !(g.has_link(a, d) || g.has_link(c, b))
    }

    /// Applies the swap. Degrees are unchanged, so only simplicity is
    /// checked (via [`Self::is_valid`]).
    pub fn apply(&self, g: &mut HostSwitchGraph) -> Result<(), GraphError> {
        if !self.is_valid(g) {
            return Err(GraphError::InvalidParameters(format!(
                "invalid swap {self:?}"
            )));
        }
        g.remove_link(self.a, self.b)?;
        g.remove_link(self.c, self.d)?;
        g.add_link(self.a, self.d)?;
        g.add_link(self.c, self.b)?;
        Ok(())
    }
}

/// The swing operation `swing(s_a, s_b, s_c)`: replaces `{a,b}, {c,h}` by
/// `{a,c}, {b,h}` for some host `h` on `c` (Fig. 3). Moves one host from
/// `c` to `b` and rewires one switch link; every switch keeps its total
/// degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Swing {
    /// Switch that loses the link to `b` and gains a link to `c`.
    pub a: Switch,
    /// Switch that loses the link to `a` and gains a host.
    pub b: Switch,
    /// Switch that loses a host and gains the link to `a`.
    pub c: Switch,
}

impl Swing {
    /// Whether the swing is applicable to `g`.
    pub fn is_valid(&self, g: &HostSwitchGraph) -> bool {
        let Swing { a, b, c } = *self;
        if a == c || b == c {
            return false;
        }
        if !g.has_link(a, b) {
            return false;
        }
        if g.host_count(c) == 0 {
            return false;
        }
        !g.has_link(a, c)
    }

    /// Applies the swing, returning the host that moved (needed to undo).
    pub fn apply(&self, g: &mut HostSwitchGraph) -> Result<Host, GraphError> {
        if !self.is_valid(g) {
            return Err(GraphError::InvalidParameters(format!(
                "invalid swing {self:?}"
            )));
        }
        let h = *g.hosts_of(self.c).last().expect("validated non-empty");
        g.remove_link(self.a, self.b)?;
        g.move_host(h, self.b)?;
        g.add_link(self.a, self.c)?;
        Ok(h)
    }

    /// Undoes a swing that moved host `h`.
    pub fn undo(&self, g: &mut HostSwitchGraph, h: Host) -> Result<(), GraphError> {
        g.remove_link(self.a, self.c)?;
        g.move_host(h, self.c)?;
        g.add_link(self.a, self.b)?;
        Ok(())
    }
}

/// A sampled-in-O(1), update-in-O(1) multiset of the switch-to-switch
/// links, kept in sync with the graph by the annealer. Stores each
/// undirected edge once as `(min, max)`.
#[derive(Debug, Clone, Default)]
pub struct EdgeSet {
    edges: Vec<(Switch, Switch)>,
    index: HashMap<(Switch, Switch), usize>,
}

impl EdgeSet {
    /// Collects all links of `g`.
    pub fn from_graph(g: &HostSwitchGraph) -> Self {
        let mut s = Self::default();
        for (a, b) in g.links() {
            s.insert(a, b);
        }
        s
    }

    /// Rebuilds the set with an *explicit* storage order.
    ///
    /// [`EdgeSet::sample`] indexes into the internal vector, and
    /// [`EdgeSet::remove`] uses swap-remove, so after a long run the
    /// order is a function of the whole move history. Checkpoint/resume
    /// must reproduce that exact order — a set rebuilt via
    /// [`EdgeSet::from_graph`] would hold the same edges in a different
    /// order and desynchronize the RNG-driven sampling. Duplicates are
    /// rejected (`None`).
    pub fn from_ordered(edges: &[(Switch, Switch)]) -> Option<Self> {
        let mut s = Self::default();
        for &(a, b) in edges {
            let k = Self::key(a, b);
            if s.index.insert(k, s.edges.len()).is_some() {
                return None;
            }
            s.edges.push(k);
        }
        Some(s)
    }

    /// Number of links.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether there are no links.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    fn key(a: Switch, b: Switch) -> (Switch, Switch) {
        if a < b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Adds the link `{a,b}`.
    pub fn insert(&mut self, a: Switch, b: Switch) {
        let k = Self::key(a, b);
        debug_assert!(!self.index.contains_key(&k));
        self.index.insert(k, self.edges.len());
        self.edges.push(k);
    }

    /// Removes the link `{a,b}`.
    pub fn remove(&mut self, a: Switch, b: Switch) {
        let k = Self::key(a, b);
        let pos = self.index.remove(&k).expect("edge present");
        self.edges.swap_remove(pos);
        if pos < self.edges.len() {
            self.index.insert(self.edges[pos], pos);
        }
    }

    /// Whether `{a,b}` is tracked.
    pub fn contains(&self, a: Switch, b: Switch) -> bool {
        self.index.contains_key(&Self::key(a, b))
    }

    /// A uniformly random link, as stored (`a < b`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (Switch, Switch) {
        self.edges[rng.gen_range(0..self.edges.len())]
    }

    /// A uniformly random link in random orientation.
    pub fn sample_oriented<R: Rng + ?Sized>(&self, rng: &mut R) -> (Switch, Switch) {
        let (a, b) = self.sample(rng);
        if rng.gen::<bool>() {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// All tracked links (test/diagnostic use).
    pub fn edges(&self) -> &[(Switch, Switch)] {
        &self.edges
    }
}

/// Samples a random *valid* swap from the tracked edges, trying up to
/// `attempts` times.
pub fn sample_swap<R: Rng + ?Sized>(
    g: &HostSwitchGraph,
    edges: &EdgeSet,
    rng: &mut R,
    attempts: usize,
) -> Option<Swap> {
    if edges.len() < 2 {
        return None;
    }
    for _ in 0..attempts {
        let (a, b) = edges.sample_oriented(rng);
        let (c, d) = edges.sample_oriented(rng);
        let s = Swap { a, b, c, d };
        if s.is_valid(g) {
            return Some(s);
        }
    }
    None
}

/// Samples a random *valid* swing: a random oriented link `{a,b}` plus a
/// random host-bearing switch `c`.
pub fn sample_swing<R: Rng + ?Sized>(
    g: &HostSwitchGraph,
    edges: &EdgeSet,
    rng: &mut R,
    attempts: usize,
) -> Option<Swing> {
    if edges.is_empty() || g.num_hosts() == 0 {
        return None;
    }
    for _ in 0..attempts {
        let (a, b) = edges.sample_oriented(rng);
        // pick c through a random host so switches holding more hosts are
        // proportionally more likely — cheap and biases toward useful moves
        let h = rng.gen_range(0..g.num_hosts());
        let c = g.switch_of(h);
        let s = Swing { a, b, c };
        if s.is_valid(g) {
            return Some(s);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ring(m: u32, hosts_per: u32, r: u32) -> HostSwitchGraph {
        let mut g = HostSwitchGraph::new(m, r).unwrap();
        for s in 0..m {
            g.add_link(s, (s + 1) % m).unwrap();
        }
        for s in 0..m {
            for _ in 0..hosts_per {
                g.attach_host(s).unwrap();
            }
        }
        g
    }

    #[test]
    fn swap_roundtrip() {
        let mut g = ring(6, 1, 5);
        // chords keep the graph connected across the swap
        g.add_link(0, 3).unwrap();
        g.add_link(1, 4).unwrap();
        let s = Swap {
            a: 0,
            b: 1,
            c: 3,
            d: 4,
        };
        assert!(s.is_valid(&g));
        s.apply(&mut g).unwrap();
        assert!(g.has_link(0, 4) && g.has_link(3, 1));
        assert!(!g.has_link(0, 1) && !g.has_link(3, 4));
        g.validate().unwrap();
        s.inverse().apply(&mut g).unwrap();
        assert!(g.has_link(0, 1) && g.has_link(3, 4));
        g.validate().unwrap();
    }

    #[test]
    fn swap_rejects_duplicate_creation() {
        let mut g = ring(4, 1, 4);
        // swapping {0,1},{1,2} to {0,2},{1,1} → self loop at b==c? Here
        // c=1,b=1 invalid.
        let s = Swap {
            a: 0,
            b: 1,
            c: 1,
            d: 2,
        };
        assert!(!s.is_valid(&g));
        assert!(s.apply(&mut g).is_err());
        // {0,1},{2,3} → {0,3},{2,1}: but 0-3 already exists in C4.
        let s = Swap {
            a: 0,
            b: 1,
            c: 2,
            d: 3,
        };
        assert!(!s.is_valid(&g));
    }

    #[test]
    fn swap_preserves_degrees() {
        let mut g = ring(8, 2, 6);
        let before: Vec<u32> = (0..8).map(|s| g.switch_degree(s)).collect();
        let s = Swap {
            a: 0,
            b: 1,
            c: 4,
            d: 5,
        };
        s.apply(&mut g).unwrap();
        let after: Vec<u32> = (0..8).map(|s| g.switch_degree(s)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn swing_moves_one_host_and_preserves_degrees() {
        let mut g = ring(5, 2, 6);
        let before: Vec<u32> = (0..5).map(|s| g.switch_degree(s)).collect();
        let s = Swing { a: 0, b: 1, c: 3 };
        assert!(s.is_valid(&g));
        let h = s.apply(&mut g).unwrap();
        assert_eq!(g.switch_of(h), 1);
        assert_eq!(g.host_count(3), 1);
        assert_eq!(g.host_count(1), 3);
        assert!(g.has_link(0, 3) && !g.has_link(0, 1));
        let after: Vec<u32> = (0..5).map(|s| g.switch_degree(s)).collect();
        assert_eq!(before, after);
        g.validate().unwrap();
        s.undo(&mut g, h).unwrap();
        assert_eq!(g.host_count(3), 2);
        assert!(g.has_link(0, 1) && !g.has_link(0, 3));
        g.validate().unwrap();
    }

    #[test]
    fn swing_validity_constraints() {
        let g = ring(5, 1, 6);
        // a == c
        assert!(!Swing { a: 0, b: 1, c: 0 }.is_valid(&g));
        // b == c
        assert!(!Swing { a: 0, b: 1, c: 1 }.is_valid(&g));
        // a already adjacent to c (0-4 in C5)
        assert!(!Swing { a: 0, b: 1, c: 4 }.is_valid(&g));
        // missing edge
        assert!(!Swing { a: 0, b: 2, c: 3 }.is_valid(&g));
        // valid
        assert!(Swing { a: 0, b: 1, c: 3 }.is_valid(&g));
    }

    #[test]
    fn swing_requires_host_on_c() {
        let mut g = ring(5, 0, 6);
        g.attach_host(0).unwrap();
        assert!(!Swing { a: 0, b: 1, c: 3 }.is_valid(&g));
    }

    #[test]
    fn edge_set_tracks_graph() {
        let g = ring(6, 0, 4);
        let mut es = EdgeSet::from_graph(&g);
        assert_eq!(es.len(), 6);
        assert!(es.contains(0, 1) && es.contains(1, 0));
        es.remove(0, 1);
        assert!(!es.contains(0, 1));
        assert_eq!(es.len(), 5);
        es.insert(0, 2);
        assert!(es.contains(2, 0));
        assert_eq!(es.len(), 6);
    }

    #[test]
    fn sampled_moves_are_valid_and_reversible() {
        let mut g = ring(10, 2, 8);
        // add some chords so swaps have room
        g.add_link(0, 5).unwrap();
        g.add_link(2, 7).unwrap();
        let mut es = EdgeSet::from_graph(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            if let Some(s) = sample_swap(&g, &es, &mut rng, 20) {
                s.apply(&mut g).unwrap();
                es.remove(s.a, s.b);
                es.remove(s.c, s.d);
                es.insert(s.a, s.d);
                es.insert(s.c, s.b);
                g.validate().ok(); // may disconnect; structural checks still pass
            }
            if let Some(s) = sample_swing(&g, &es, &mut rng, 20) {
                let h = s.apply(&mut g).unwrap();
                es.remove(s.a, s.b);
                es.insert(s.a, s.c);
                // undo to keep the ring degree profile
                s.undo(&mut g, h).unwrap();
                es.remove(s.a, s.c);
                es.insert(s.a, s.b);
            }
        }
        assert_eq!(es.len(), g.num_links());
    }
}
