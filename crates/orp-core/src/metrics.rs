//! Host-to-host metrics: h-ASPL and diameter (Section 3.2).
//!
//! Every host hangs off exactly one switch, so for hosts `x`, `y` attached
//! to switches `a ≠ b`, `ℓ(x,y) = d(a,b) + 2` where `d` is the hop distance
//! in the switch graph, and `ℓ(x,y) = 2` when `a = b`. The h-ASPL is
//! therefore computable from a switch-level APSP weighted by the number of
//! hosts per switch — `O(m·(m + L))` with `L` switch links, independent of
//! `n`.

use crate::graph::{HostSwitchGraph, Switch};

/// Compressed sparse row view of the switch graph, the workhorse for the
/// BFS sweeps. Rebuild after structural mutations.
#[derive(Debug, Clone)]
pub struct SwitchCsr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl SwitchCsr {
    /// Builds the CSR adjacency from a host-switch graph.
    pub fn from_graph(g: &HostSwitchGraph) -> Self {
        let m = g.num_switches() as usize;
        let mut offsets = Vec::with_capacity(m + 1);
        let mut targets = Vec::with_capacity(2 * g.num_links());
        offsets.push(0);
        for s in 0..m as u32 {
            targets.extend_from_slice(g.neighbors(s));
            offsets.push(targets.len() as u32);
        }
        Self { offsets, targets }
    }

    /// Number of switches.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether there are no switches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Neighbours of switch `s`.
    #[inline]
    pub fn neighbors(&self, s: u32) -> &[u32] {
        &self.targets[self.offsets[s as usize] as usize..self.offsets[s as usize + 1] as usize]
    }

    /// Single-source BFS writing hop counts into `dist` (`u32::MAX` =
    /// unreachable). `queue` is caller-provided scratch; both are resized
    /// as needed.
    pub fn bfs(&self, src: u32, dist: &mut Vec<u32>, queue: &mut Vec<u32>) {
        let m = self.len();
        dist.clear();
        dist.resize(m, u32::MAX);
        queue.clear();
        dist[src as usize] = 0;
        queue.push(src);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            let du = dist[u as usize];
            for &v in self.neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = du + 1;
                    queue.push(v);
                }
            }
        }
    }
}

/// Result of a full h-ASPL / diameter evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathMetrics {
    /// Host-to-host average shortest path length `A(G)`.
    pub haspl: f64,
    /// Host-to-host diameter `D(G)`.
    pub diameter: u32,
    /// Sum of `ℓ(h_i, h_j)` over unordered host pairs.
    pub total_length: u64,
}

/// Per-source contribution of a BFS sweep (internal).
struct SourceContribution {
    /// Σ over other host-bearing switches of `k_a·k_b·(d+2)`.
    weighted: u64,
    /// max `d(a,b)` over host-bearing `b ≠ a`, or `None` if unreachable.
    ecc: Option<u32>,
}

fn source_contribution(
    csr: &SwitchCsr,
    counts: &[u32],
    a: Switch,
    dist: &mut Vec<u32>,
    queue: &mut Vec<u32>,
) -> Option<SourceContribution> {
    csr.bfs(a, dist, queue);
    let ka = counts[a as usize] as u64;
    let mut weighted = 0u64;
    let mut ecc = 0u32;
    for (b, (&d, &kb)) in dist.iter().zip(counts).enumerate() {
        if kb == 0 || b as u32 == a {
            continue;
        }
        if d == u32::MAX {
            return None;
        }
        weighted += ka * kb as u64 * (d as u64 + 2);
        ecc = ecc.max(d);
    }
    Some(SourceContribution {
        weighted,
        ecc: Some(ecc),
    })
}

/// Shared metric accounting for every evaluator (the source-at-a-time
/// oracle here and the batched/incremental engine in
/// [`crate::search::SearchState`]): halves the ordered inter-switch sum,
/// adds the intra-switch `k(k−1)/2` pairs at length 2, and divides by the
/// host-pair count.
pub(crate) fn finalize_metrics(
    n: u64,
    counts: &[u32],
    inter_ordered_sum: u64,
    max_inter_dist: u32,
    any_pair_seen: bool,
) -> PathMetrics {
    // Unordered inter-switch pairs were each counted twice.
    let mut total = inter_ordered_sum / 2;
    let mut diameter = if any_pair_seen { max_inter_dist + 2 } else { 0 };
    // Intra-switch pairs: both endpoints on the same switch, ℓ = 2.
    for &k in counts {
        let k = k as u64;
        if k >= 2 {
            total += k * (k - 1) / 2 * 2;
            diameter = diameter.max(2);
        }
    }
    let pairs = n * (n - 1) / 2;
    PathMetrics {
        haspl: total as f64 / pairs as f64,
        diameter,
        total_length: total,
    }
}

/// Computes h-ASPL and diameter; `None` if some host pair is unreachable
/// or `n < 2`.
pub fn path_metrics(g: &HostSwitchGraph) -> Option<PathMetrics> {
    let csr = SwitchCsr::from_graph(g);
    let counts = g.host_counts();
    path_metrics_with(&csr, &counts, g.num_hosts())
}

/// As [`path_metrics`] but reusing a prebuilt CSR and host counts.
///
/// Superseded as the annealer's hot path by
/// [`crate::search::SearchState::evaluate`], which keeps the CSR and
/// counts incrementally consistent and scores with a batched BFS; this
/// source-at-a-time version remains the reference implementation the
/// engine is equivalence-tested against.
pub fn path_metrics_with(csr: &SwitchCsr, counts: &[u32], n: u32) -> Option<PathMetrics> {
    if n < 2 {
        return None;
    }
    let mut dist = Vec::new();
    let mut queue = Vec::new();
    let mut ordered_sum = 0u64;
    let mut max_d = 0u32;
    let mut any = false;
    for a in 0..csr.len() as u32 {
        if counts[a as usize] == 0 {
            continue;
        }
        let c = source_contribution(csr, counts, a, &mut dist, &mut queue)?;
        ordered_sum += c.weighted;
        if let Some(e) = c.ecc {
            if c.weighted > 0 {
                any = true;
            }
            max_d = max_d.max(e);
        }
    }
    Some(finalize_metrics(n as u64, counts, ordered_sum, max_d, any))
}

/// Parallel variant of [`path_metrics`]; worthwhile from a few hundred
/// switches upward (BFS sources sliced across OS threads).
pub fn path_metrics_par(g: &HostSwitchGraph) -> Option<PathMetrics> {
    let csr = SwitchCsr::from_graph(g);
    let counts = g.host_counts();
    let n = g.num_hosts();
    if n < 2 {
        return None;
    }
    let sources: Vec<u32> = (0..csr.len() as u32)
        .filter(|&a| counts[a as usize] > 0)
        .collect();
    let workers = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(sources.len().max(1));
    if workers <= 1 {
        return path_metrics_with(&csr, &counts, n);
    }
    let chunk = sources.len().div_ceil(workers);
    // (ordered_sum, max ecc, any inter-switch pair seen) per worker;
    // None propagates a disconnected host pair.
    let partial: Vec<Option<(u64, u32, bool)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = sources
            .chunks(chunk)
            .map(|slice| {
                let (csr, counts) = (&csr, &counts);
                scope.spawn(move || {
                    let (mut dist, mut queue) = (Vec::new(), Vec::new());
                    let (mut sum, mut max_d, mut any) = (0u64, 0u32, false);
                    for &a in slice {
                        let c = source_contribution(csr, counts, a, &mut dist, &mut queue)?;
                        sum += c.weighted;
                        if let Some(e) = c.ecc {
                            if c.weighted > 0 {
                                any = true;
                            }
                            max_d = max_d.max(e);
                        }
                    }
                    Some((sum, max_d, any))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("metrics worker panicked"))
            .collect()
    });
    let (mut ordered_sum, mut max_d, mut any) = (0u64, 0u32, false);
    for p in partial {
        let (s, d, a) = p?;
        ordered_sum += s;
        max_d = max_d.max(d);
        any |= a;
    }
    Some(finalize_metrics(n as u64, &counts, ordered_sum, max_d, any))
}

/// h-ASPL of a regular host-switch graph from the ASPL of its switch
/// graph — Equation (1) of the paper:
/// `A(G) = A(G')·(mn − n)/(mn − m) + 2`.
pub fn haspl_from_switch_aspl(switch_aspl: f64, n: u32, m: u32) -> f64 {
    let (n, m) = (n as f64, m as f64);
    switch_aspl * (m * n - n) / (m * n - m) + 2.0
}

/// Average shortest path length of the *switch* graph alone (ignoring
/// hosts); `None` if disconnected or `m < 2`.
pub fn switch_aspl(g: &HostSwitchGraph) -> Option<f64> {
    let csr = SwitchCsr::from_graph(g);
    let m = csr.len();
    if m < 2 {
        return None;
    }
    let mut dist = Vec::new();
    let mut queue = Vec::new();
    let mut sum = 0u64;
    for a in 0..m as u32 {
        csr.bfs(a, &mut dist, &mut queue);
        for (b, &d) in dist.iter().enumerate() {
            if b as u32 == a {
                continue;
            }
            if d == u32::MAX {
                return None;
            }
            sum += d as u64;
        }
    }
    Some(sum as f64 / (m * (m - 1)) as f64)
}

/// Distances from one host to every other host (`ℓ(h_s, ·)`), mostly for
/// tests and single-source inspection. `u32::MAX` marks unreachable hosts.
pub fn host_distances(g: &HostSwitchGraph, from: u32) -> Vec<u32> {
    let src_sw = g.switch_of(from);
    let d = g.switch_distances(src_sw);
    (0..g.num_hosts())
        .map(|h| {
            if h == from {
                0
            } else {
                let sw = g.switch_of(h);
                if sw == src_sw {
                    2
                } else if d[sw as usize] == u32::MAX {
                    u32::MAX
                } else {
                    d[sw as usize] + 2
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::HostSwitchGraph;

    fn ring4() -> HostSwitchGraph {
        // Fig. 1: 4 switches in a ring, 4 hosts each, radix 6.
        let mut g = HostSwitchGraph::new(4, 6).unwrap();
        for s in 0..4 {
            g.add_link(s, (s + 1) % 4).unwrap();
        }
        for s in 0..4 {
            for _ in 0..4 {
                g.attach_host(s).unwrap();
            }
        }
        g
    }

    #[test]
    fn fig1_haspl_by_hand() {
        // Switch ASPL of C4 = (1+2+1)/3 = 4/3. Eq (1):
        // A = (4/3)*(4*16-16)/(4*16-4) + 2 = (4/3)*(48/60) + 2 = 16/15 + 2.
        let g = ring4();
        let m = path_metrics(&g).unwrap();
        let expect = 16.0 / 15.0 + 2.0;
        assert!((m.haspl - expect).abs() < 1e-12, "{} vs {expect}", m.haspl);
        assert_eq!(m.diameter, 4); // opposite switches at distance 2 (+2)
    }

    #[test]
    fn eq1_matches_direct_computation() {
        let g = ring4();
        let sa = switch_aspl(&g).unwrap();
        let via_eq1 = haspl_from_switch_aspl(sa, g.num_hosts(), g.num_switches());
        let direct = path_metrics(&g).unwrap().haspl;
        assert!((via_eq1 - direct).abs() < 1e-12);
    }

    #[test]
    fn l_h0_h15_is_3_in_paper_example() {
        // The paper's Fig. 1 walk-through: ℓ(h0, h15) = 3 via (h0,s0,s3,h15).
        let g = ring4();
        // host 0 is on switch 0; host 15 on switch 3; d(s0,s3)=1 => ℓ=3.
        let d = host_distances(&g, 0);
        assert_eq!(d[15], 3);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 2); // same switch
    }

    #[test]
    fn single_switch_star() {
        let mut g = HostSwitchGraph::new(1, 8).unwrap();
        for _ in 0..5 {
            g.attach_host(0).unwrap();
        }
        let m = path_metrics(&g).unwrap();
        assert_eq!(m.haspl, 2.0);
        assert_eq!(m.diameter, 2);
        assert_eq!(m.total_length, 10 * 2);
    }

    #[test]
    fn disconnected_returns_none() {
        let mut g = HostSwitchGraph::new(2, 4).unwrap();
        g.attach_host(0).unwrap();
        g.attach_host(1).unwrap();
        assert!(path_metrics(&g).is_none());
        assert!(path_metrics_par(&g).is_none());
    }

    #[test]
    fn under_two_hosts_returns_none() {
        let mut g = HostSwitchGraph::new(1, 4).unwrap();
        assert!(path_metrics(&g).is_none());
        g.attach_host(0).unwrap();
        assert!(path_metrics(&g).is_none());
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = ring4();
        let a = path_metrics(&g).unwrap();
        let b = path_metrics_par(&g).unwrap();
        assert_eq!(a.total_length, b.total_length);
        assert_eq!(a.diameter, b.diameter);
    }

    #[test]
    fn empty_switches_do_not_affect_haspl() {
        // A path s0 - s1 - s2 where s1 has no hosts.
        let mut g = HostSwitchGraph::new(3, 4).unwrap();
        g.add_link(0, 1).unwrap();
        g.add_link(1, 2).unwrap();
        g.attach_host(0).unwrap();
        g.attach_host(2).unwrap();
        let m = path_metrics(&g).unwrap();
        assert_eq!(m.haspl, 4.0); // d(s0,s2)=2, +2
        assert_eq!(m.diameter, 4);
    }

    #[test]
    fn two_hosts_same_switch_diameter_two() {
        let mut g = HostSwitchGraph::new(2, 4).unwrap();
        g.add_link(0, 1).unwrap();
        g.attach_host(0).unwrap();
        g.attach_host(0).unwrap();
        let m = path_metrics(&g).unwrap();
        assert_eq!(m.diameter, 2);
        assert_eq!(m.haspl, 2.0);
    }

    #[test]
    fn csr_matches_graph_adjacency() {
        let g = ring4();
        let csr = SwitchCsr::from_graph(&g);
        assert_eq!(csr.len(), 4);
        for s in 0..4u32 {
            let mut a: Vec<u32> = csr.neighbors(s).to_vec();
            let mut b: Vec<u32> = g.neighbors(s).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn host_distances_unreachable_marked() {
        let mut g = HostSwitchGraph::new(2, 4).unwrap();
        g.attach_host(0).unwrap();
        g.attach_host(1).unwrap();
        let d = host_distances(&g, 0);
        assert_eq!(d[1], u32::MAX);
    }
}
