//! The host-switch graph model (Section 3.1 of the paper).
//!
//! A host-switch graph `G = (H, S, E)` has `n` *host* vertices of degree
//! exactly 1, `m` *switch* vertices of degree at most `r` (the *radix*), and
//! edges that are either switch–switch or host–switch. `n` is called the
//! *order* of the graph.

use crate::error::GraphError;
use serde::{Deserialize, Serialize};

/// Identifier of a switch vertex (`0..m`).
pub type Switch = u32;
/// Identifier of a host vertex (`0..n`).
pub type Host = u32;

/// A host-switch graph: `n` degree-1 hosts, `m` radix-`r` switches.
///
/// Invariants maintained by every public mutator:
/// * every host is attached to exactly one switch;
/// * `deg(s) = #switch-neighbors + #hosts ≤ r` for every switch `s`;
/// * no self loops, no parallel switch–switch edges.
///
/// Connectivity is *not* an invariant of the type (local-search moves
/// transiently break it); use [`HostSwitchGraph::is_connected`] or
/// [`HostSwitchGraph::validate`] to check it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostSwitchGraph {
    radix: u32,
    /// host -> the switch it is attached to
    host_sw: Vec<Switch>,
    /// switch -> neighbouring switches (unsorted, no duplicates)
    sw_adj: Vec<Vec<Switch>>,
    /// switch -> hosts attached to it (unsorted)
    sw_hosts: Vec<Vec<Host>>,
}

impl HostSwitchGraph {
    /// Creates a graph with `num_switches` isolated switches, no hosts.
    ///
    /// The radix must be at least 3 (smaller radixes cannot form a
    /// connected network with more hosts than one switch can hold).
    pub fn new(num_switches: u32, radix: u32) -> Result<Self, GraphError> {
        if radix < 3 {
            return Err(GraphError::InvalidParameters(format!(
                "radix must be >= 3, got {radix}"
            )));
        }
        if num_switches == 0 {
            return Err(GraphError::InvalidParameters(
                "need at least one switch".into(),
            ));
        }
        Ok(Self {
            radix,
            host_sw: Vec::new(),
            sw_adj: vec![Vec::new(); num_switches as usize],
            sw_hosts: vec![Vec::new(); num_switches as usize],
        })
    }

    /// Number of hosts `n` (the *order*).
    #[inline]
    pub fn num_hosts(&self) -> u32 {
        self.host_sw.len() as u32
    }

    /// Number of switches `m`.
    #[inline]
    pub fn num_switches(&self) -> u32 {
        self.sw_adj.len() as u32
    }

    /// Ports per switch `r` (the *radix*).
    #[inline]
    pub fn radix(&self) -> u32 {
        self.radix
    }

    /// Total degree (used ports) of switch `s`.
    #[inline]
    pub fn switch_degree(&self, s: Switch) -> u32 {
        (self.sw_adj[s as usize].len() + self.sw_hosts[s as usize].len()) as u32
    }

    /// Unused ports of switch `s`.
    #[inline]
    pub fn free_ports(&self, s: Switch) -> u32 {
        self.radix - self.switch_degree(s)
    }

    /// Number of switch-to-switch links.
    pub fn num_links(&self) -> usize {
        self.sw_adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Switch neighbours of `s`.
    #[inline]
    pub fn neighbors(&self, s: Switch) -> &[Switch] {
        &self.sw_adj[s as usize]
    }

    /// Hosts attached to switch `s`.
    #[inline]
    pub fn hosts_of(&self, s: Switch) -> &[Host] {
        &self.sw_hosts[s as usize]
    }

    /// Number of hosts attached to switch `s` (the `k_s` of the paper).
    #[inline]
    pub fn host_count(&self, s: Switch) -> u32 {
        self.sw_hosts[s as usize].len() as u32
    }

    /// The switch host `h` is attached to.
    #[inline]
    pub fn switch_of(&self, h: Host) -> Switch {
        self.host_sw[h as usize]
    }

    /// `k_s` for every switch, indexed by switch id.
    pub fn host_counts(&self) -> Vec<u32> {
        self.sw_hosts.iter().map(|v| v.len() as u32).collect()
    }

    /// Histogram of the *host distribution* (Fig. 6/8 of the paper):
    /// `hist[k]` = number of switches with exactly `k` hosts.
    pub fn host_distribution(&self) -> Vec<u32> {
        let max = self.sw_hosts.iter().map(Vec::len).max().unwrap_or(0);
        let mut hist = vec![0u32; max + 1];
        for hs in &self.sw_hosts {
            hist[hs.len()] += 1;
        }
        hist
    }

    /// Whether switches `a` and `b` are directly linked.
    pub fn has_link(&self, a: Switch, b: Switch) -> bool {
        let (a, b) = if self.sw_adj[a as usize].len() <= self.sw_adj[b as usize].len() {
            (a, b)
        } else {
            (b, a)
        };
        self.sw_adj[a as usize].contains(&b)
    }

    fn check_switch(&self, s: Switch) -> Result<(), GraphError> {
        if (s as usize) < self.sw_adj.len() {
            Ok(())
        } else {
            Err(GraphError::SwitchOutOfRange {
                switch: s,
                num_switches: self.num_switches(),
            })
        }
    }

    /// Adds the switch-to-switch link `{a, b}`.
    pub fn add_link(&mut self, a: Switch, b: Switch) -> Result<(), GraphError> {
        self.check_switch(a)?;
        self.check_switch(b)?;
        if a == b {
            return Err(GraphError::SelfLoop { switch: a });
        }
        if self.has_link(a, b) {
            return Err(GraphError::DuplicateEdge { a, b });
        }
        if self.free_ports(a) == 0 {
            return Err(GraphError::RadixExceeded {
                switch: a,
                radix: self.radix,
            });
        }
        if self.free_ports(b) == 0 {
            return Err(GraphError::RadixExceeded {
                switch: b,
                radix: self.radix,
            });
        }
        self.sw_adj[a as usize].push(b);
        self.sw_adj[b as usize].push(a);
        Ok(())
    }

    /// Removes the switch-to-switch link `{a, b}`.
    pub fn remove_link(&mut self, a: Switch, b: Switch) -> Result<(), GraphError> {
        self.check_switch(a)?;
        self.check_switch(b)?;
        let pa = self.sw_adj[a as usize].iter().position(|&x| x == b);
        let pb = self.sw_adj[b as usize].iter().position(|&x| x == a);
        match (pa, pb) {
            (Some(pa), Some(pb)) => {
                self.sw_adj[a as usize].swap_remove(pa);
                self.sw_adj[b as usize].swap_remove(pb);
                Ok(())
            }
            _ => Err(GraphError::MissingEdge { a, b }),
        }
    }

    /// Attaches a brand-new host to switch `s` and returns its id.
    pub fn attach_host(&mut self, s: Switch) -> Result<Host, GraphError> {
        self.check_switch(s)?;
        if self.free_ports(s) == 0 {
            return Err(GraphError::RadixExceeded {
                switch: s,
                radix: self.radix,
            });
        }
        let h = self.host_sw.len() as Host;
        self.host_sw.push(s);
        self.sw_hosts[s as usize].push(h);
        Ok(h)
    }

    /// Moves host `h` from its current switch to switch `to`.
    ///
    /// `to` may equal the current switch (a no-op).
    pub fn move_host(&mut self, h: Host, to: Switch) -> Result<(), GraphError> {
        if (h as usize) >= self.host_sw.len() {
            return Err(GraphError::HostOutOfRange {
                host: h,
                num_hosts: self.num_hosts(),
            });
        }
        self.check_switch(to)?;
        let from = self.host_sw[h as usize];
        if from == to {
            return Ok(());
        }
        if self.free_ports(to) == 0 {
            return Err(GraphError::RadixExceeded {
                switch: to,
                radix: self.radix,
            });
        }
        let pos = self.sw_hosts[from as usize]
            .iter()
            .position(|&x| x == h)
            .ok_or(GraphError::HostNotOnSwitch {
                host: h,
                switch: from,
            })?;
        self.sw_hosts[from as usize].swap_remove(pos);
        self.sw_hosts[to as usize].push(h);
        self.host_sw[h as usize] = to;
        Ok(())
    }

    /// Iterates over all switch-to-switch links as ordered pairs `(a, b)`
    /// with `a < b`.
    pub fn links(&self) -> impl Iterator<Item = (Switch, Switch)> + '_ {
        self.sw_adj.iter().enumerate().flat_map(|(a, nbrs)| {
            let a = a as Switch;
            nbrs.iter()
                .copied()
                .filter_map(move |b| (a < b).then_some((a, b)))
        })
    }

    /// BFS over the switch graph from `src`; returns per-switch hop counts
    /// (`u32::MAX` when unreachable). Scratch-free convenience wrapper around
    /// [`crate::metrics`]' internals; fine for one-off queries.
    pub fn switch_distances(&self, src: Switch) -> Vec<u32> {
        let m = self.sw_adj.len();
        let mut dist = vec![u32::MAX; m];
        let mut queue = std::collections::VecDeque::with_capacity(m);
        dist[src as usize] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for &v in &self.sw_adj[u as usize] {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Whether the switch graph is a single connected component.
    ///
    /// Hosts have degree exactly 1, so switch connectivity implies that all
    /// hosts can reach each other.
    pub fn is_connected(&self) -> bool {
        if self.sw_adj.is_empty() {
            return false;
        }
        let dist = self.switch_distances(0);
        dist.iter().all(|&d| d != u32::MAX)
    }

    /// Whether every pair of *hosts* can reach each other. Weaker than
    /// [`Self::is_connected`]: switches without hosts may live in separate
    /// components.
    pub fn hosts_connected(&self) -> bool {
        let Some(&s0) = self.host_sw.first() else {
            return true;
        };
        let dist = self.switch_distances(s0);
        self.host_sw.iter().all(|&s| dist[s as usize] != u32::MAX)
    }

    /// Full invariant check: port budgets, adjacency symmetry, no
    /// self-loops/duplicates, host cross-references, and host connectivity.
    pub fn validate(&self) -> Result<(), GraphError> {
        for s in 0..self.num_switches() {
            if self.switch_degree(s) > self.radix {
                return Err(GraphError::RadixExceeded {
                    switch: s,
                    radix: self.radix,
                });
            }
            let nbrs = &self.sw_adj[s as usize];
            for (i, &v) in nbrs.iter().enumerate() {
                if v == s {
                    return Err(GraphError::SelfLoop { switch: s });
                }
                if nbrs[..i].contains(&v) {
                    return Err(GraphError::DuplicateEdge { a: s, b: v });
                }
                if !self.sw_adj[v as usize].contains(&s) {
                    return Err(GraphError::MissingEdge { a: v, b: s });
                }
            }
            for &h in &self.sw_hosts[s as usize] {
                if self.host_sw.get(h as usize) != Some(&s) {
                    return Err(GraphError::HostNotOnSwitch { host: h, switch: s });
                }
            }
        }
        for (h, &s) in self.host_sw.iter().enumerate() {
            if !self.sw_hosts[s as usize].contains(&(h as Host)) {
                return Err(GraphError::HostNotOnSwitch {
                    host: h as Host,
                    switch: s,
                });
            }
        }
        if !self.hosts_connected() {
            return Err(GraphError::Disconnected);
        }
        Ok(())
    }

    /// Removes all host attachments, keeping the switch fabric.
    pub fn clear_hosts(&mut self) {
        self.host_sw.clear();
        for v in &mut self.sw_hosts {
            v.clear();
        }
    }

    /// Sorts adjacency and host lists so that two graphs with identical
    /// structure compare equal with `==` regardless of insertion order.
    pub fn canonicalize(&mut self) {
        for v in &mut self.sw_adj {
            v.sort_unstable();
        }
        for v in &mut self.sw_hosts {
            v.sort_unstable();
        }
    }

    /// Serializes the **exact internal representation** — adjacency and
    /// host lists in their current in-memory order — for checkpointing.
    ///
    /// This is deliberately different from [`crate::io::to_string`],
    /// which sorts links for a diff-friendly text format: the local
    /// search samples moves by indexing into these lists, so a resumed
    /// run is only bit-identical to the uninterrupted one if the stored
    /// order survives the round trip.
    pub fn encode_exact(&self, enc: &mut crate::ckpt::Encoder) {
        enc.put_u32(self.radix);
        enc.put_u32_slice(&self.host_sw);
        enc.put_u64(self.sw_adj.len() as u64);
        for (adj, hosts) in self.sw_adj.iter().zip(&self.sw_hosts) {
            enc.put_u32_slice(adj);
            enc.put_u32_slice(hosts);
        }
    }

    /// Reverses [`HostSwitchGraph::encode_exact`], re-validating every
    /// structural invariant (port budgets, symmetry, cross-references)
    /// so a corrupted-but-checksum-valid payload cannot smuggle in an
    /// inconsistent graph.
    pub fn decode_exact(
        dec: &mut crate::ckpt::Decoder<'_>,
    ) -> Result<Self, crate::ckpt::CkptError> {
        use crate::ckpt::CkptError;
        let radix = dec.get_u32()?;
        let host_sw = dec.get_u32_vec()?;
        let m = dec.get_u64()? as usize;
        let mut sw_adj = Vec::new();
        let mut sw_hosts = Vec::new();
        for _ in 0..m {
            sw_adj.push(dec.get_u32_vec()?);
            sw_hosts.push(dec.get_u32_vec()?);
        }
        let g = Self {
            radix,
            host_sw,
            sw_adj,
            sw_hosts,
        };
        if g.radix < 3 || g.sw_adj.is_empty() {
            return Err(CkptError::BadSection(
                "graph: bad radix or no switches".into(),
            ));
        }
        if g.host_sw.iter().any(|&s| s as usize >= m) {
            return Err(CkptError::BadSection(
                "graph: host switch out of range".into(),
            ));
        }
        if g.sw_adj.iter().flatten().any(|&s| s as usize >= m) {
            return Err(CkptError::BadSection("graph: neighbor out of range".into()));
        }
        g.validate()
            .map_err(|e| CkptError::BadSection(format!("graph: {e}")))?;
        Ok(g)
    }

    /// Whether the graph is *k-regular* in the paper's sense: every switch
    /// has the same number of switch-neighbours and the same number of
    /// hosts. Returns that `(k, hosts_per_switch)` if so.
    pub fn regularity(&self) -> Option<(u32, u32)> {
        let k = self.sw_adj.first()?.len();
        let p = self.sw_hosts.first()?.len();
        let ok = self
            .sw_adj
            .iter()
            .zip(&self.sw_hosts)
            .all(|(a, h)| a.len() == k && h.len() == p);
        ok.then_some((k as u32, p as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 16-host, 4-switch, radix-6 example of Fig. 1.
    pub(crate) fn fig1_example() -> HostSwitchGraph {
        let mut g = HostSwitchGraph::new(4, 6).unwrap();
        // Switches form a cycle 0-1-2-3 plus a diagonal 0-2, 1-3 would
        // exceed... Fig. 1 shows 4 switches each with 4 hosts and 2 links:
        // a ring. 4 hosts + 2 links = 6 ports.
        for s in 0..4 {
            g.add_link(s, (s + 1) % 4).unwrap();
        }
        for s in 0..4 {
            for _ in 0..4 {
                g.attach_host(s).unwrap();
            }
        }
        g
    }

    #[test]
    fn fig1_counts() {
        let g = fig1_example();
        assert_eq!(g.num_hosts(), 16);
        assert_eq!(g.num_switches(), 4);
        assert_eq!(g.radix(), 6);
        assert_eq!(g.num_links(), 4);
        g.validate().unwrap();
        assert_eq!(g.regularity(), Some((2, 4)));
    }

    #[test]
    fn radix_is_enforced() {
        let mut g = HostSwitchGraph::new(2, 3).unwrap();
        g.add_link(0, 1).unwrap();
        g.attach_host(0).unwrap();
        g.attach_host(0).unwrap();
        assert_eq!(g.free_ports(0), 0);
        assert_eq!(
            g.attach_host(0),
            Err(GraphError::RadixExceeded {
                switch: 0,
                radix: 3
            })
        );
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let mut g = HostSwitchGraph::new(3, 4).unwrap();
        assert_eq!(g.add_link(1, 1), Err(GraphError::SelfLoop { switch: 1 }));
        g.add_link(0, 1).unwrap();
        assert_eq!(
            g.add_link(1, 0),
            Err(GraphError::DuplicateEdge { a: 1, b: 0 })
        );
    }

    #[test]
    fn remove_missing_edge_fails() {
        let mut g = HostSwitchGraph::new(3, 4).unwrap();
        assert_eq!(
            g.remove_link(0, 1),
            Err(GraphError::MissingEdge { a: 0, b: 1 })
        );
    }

    #[test]
    fn move_host_roundtrip() {
        let mut g = HostSwitchGraph::new(2, 4).unwrap();
        g.add_link(0, 1).unwrap();
        let h = g.attach_host(0).unwrap();
        g.move_host(h, 1).unwrap();
        assert_eq!(g.switch_of(h), 1);
        assert_eq!(g.host_count(0), 0);
        assert_eq!(g.host_count(1), 1);
        g.move_host(h, 0).unwrap();
        g.validate().unwrap();
        assert_eq!(g.host_count(0), 1);
    }

    #[test]
    fn move_host_to_full_switch_fails() {
        let mut g = HostSwitchGraph::new(2, 3).unwrap();
        g.add_link(0, 1).unwrap();
        let h = g.attach_host(0).unwrap();
        g.attach_host(1).unwrap();
        g.attach_host(1).unwrap();
        assert!(matches!(
            g.move_host(h, 1),
            Err(GraphError::RadixExceeded { .. })
        ));
    }

    #[test]
    fn connectivity_detection() {
        let mut g = HostSwitchGraph::new(4, 4).unwrap();
        g.add_link(0, 1).unwrap();
        g.add_link(2, 3).unwrap();
        assert!(!g.is_connected());
        g.attach_host(0).unwrap();
        g.attach_host(3).unwrap();
        assert!(!g.hosts_connected());
        g.add_link(1, 2).unwrap();
        assert!(g.is_connected());
        assert!(g.hosts_connected());
        g.validate().unwrap();
    }

    #[test]
    fn hosts_connected_ignores_empty_components() {
        let mut g = HostSwitchGraph::new(3, 4).unwrap();
        g.add_link(0, 1).unwrap();
        g.attach_host(0).unwrap();
        g.attach_host(1).unwrap();
        // switch 2 is isolated but holds no host
        assert!(!g.is_connected());
        assert!(g.hosts_connected());
    }

    #[test]
    fn links_iterator_yields_each_edge_once() {
        let g = fig1_example();
        let mut links: Vec<_> = g.links().collect();
        links.sort_unstable();
        assert_eq!(links, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn host_distribution_histogram() {
        let mut g = HostSwitchGraph::new(3, 8).unwrap();
        g.add_link(0, 1).unwrap();
        g.add_link(1, 2).unwrap();
        for _ in 0..3 {
            g.attach_host(0).unwrap();
        }
        g.attach_host(2).unwrap();
        assert_eq!(g.host_distribution(), vec![1, 1, 0, 1]);
    }

    #[test]
    fn switch_distances_bfs() {
        let g = fig1_example();
        let d = g.switch_distances(0);
        assert_eq!(d, vec![0, 1, 2, 1]);
    }

    #[test]
    fn serde_roundtrip() {
        let g = fig1_example();
        let json = serde_json::to_string(&g).unwrap();
        let g2: HostSwitchGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn rejects_tiny_radix() {
        assert!(HostSwitchGraph::new(4, 2).is_err());
        assert!(HostSwitchGraph::new(0, 6).is_err());
    }
}
