//! Structural analysis of host-switch graphs: which switches actually
//! carry traffic (the paper's *otiose* switches of Fig. 8), path-length
//! distributions, and degree statistics.

use crate::graph::{HostSwitchGraph, Switch};
use crate::metrics::SwitchCsr;

/// Histogram of host-to-host distances: `hist[d]` = number of unordered
/// host pairs at distance `d`. Empty when some pair is unreachable.
pub fn distance_histogram(g: &HostSwitchGraph) -> Option<Vec<u64>> {
    let csr = SwitchCsr::from_graph(g);
    let counts = g.host_counts();
    let mut hist: Vec<u64> = Vec::new();
    let mut bump = |d: usize, c: u64| {
        if hist.len() <= d {
            hist.resize(d + 1, 0);
        }
        hist[d] += c;
    };
    let mut dist = Vec::new();
    let mut queue = Vec::new();
    for a in 0..g.num_switches() {
        let ka = counts[a as usize] as u64;
        if ka == 0 {
            continue;
        }
        // intra-switch pairs at distance 2
        bump(2, ka * (ka - 1) / 2);
        csr.bfs(a, &mut dist, &mut queue);
        for b in (a + 1)..g.num_switches() {
            let kb = counts[b as usize] as u64;
            if kb == 0 {
                continue;
            }
            let d = dist[b as usize];
            if d == u32::MAX {
                return None;
            }
            bump(d as usize + 2, ka * kb);
        }
    }
    Some(hist)
}

/// Switches that lie on **no** shortest path between any host pair — the
/// "otiose" switches whose presence Fig. 8 diagnoses. A switch `v` is
/// *useful* if it hosts a computer, or if some host-bearing pair `(a, b)`
/// has `d(a, v) + d(v, b) = d(a, b)`.
pub fn otiose_switches(g: &HostSwitchGraph) -> Vec<Switch> {
    let m = g.num_switches() as usize;
    let counts = g.host_counts();
    let csr = SwitchCsr::from_graph(g);
    // distance rows from every host-bearing switch
    let sources: Vec<u32> = (0..m as u32).filter(|&s| counts[s as usize] > 0).collect();
    let mut rows: Vec<Vec<u32>> = Vec::with_capacity(sources.len());
    let mut queue = Vec::new();
    for &s in &sources {
        let mut dist = Vec::new();
        csr.bfs(s, &mut dist, &mut queue);
        rows.push(dist);
    }
    let mut useful = vec![false; m];
    for &s in &sources {
        useful[s as usize] = true;
    }
    for v in 0..m {
        if useful[v] {
            continue;
        }
        'pairs: for i in 0..sources.len() {
            let ra = &rows[i];
            if ra[v] == u32::MAX {
                continue;
            }
            for j in (i + 1)..sources.len() {
                let rb = &rows[j];
                let dab = ra[sources[j] as usize];
                if rb[v] != u32::MAX && dab != u32::MAX && ra[v] + rb[v] == dab {
                    useful[v] = true;
                    break 'pairs;
                }
            }
        }
    }
    (0..m as u32).filter(|&v| !useful[v as usize]).collect()
}

/// Summary statistics of the switch degree / host distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum switch-to-switch degree.
    pub min_links: u32,
    /// Maximum switch-to-switch degree.
    pub max_links: u32,
    /// Mean switch-to-switch degree.
    pub mean_links: f64,
    /// Minimum hosts per switch.
    pub min_hosts: u32,
    /// Maximum hosts per switch.
    pub max_hosts: u32,
    /// Mean hosts per switch (`n/m`).
    pub mean_hosts: f64,
    /// Number of completely unused ports.
    pub free_ports: u32,
}

/// Computes [`DegreeStats`] of a graph.
pub fn degree_stats(g: &HostSwitchGraph) -> DegreeStats {
    let m = g.num_switches();
    let links: Vec<u32> = (0..m).map(|s| g.neighbors(s).len() as u32).collect();
    let hosts: Vec<u32> = (0..m).map(|s| g.host_count(s)).collect();
    DegreeStats {
        min_links: links.iter().copied().min().unwrap_or(0),
        max_links: links.iter().copied().max().unwrap_or(0),
        mean_links: links.iter().map(|&x| x as f64).sum::<f64>() / m as f64,
        min_hosts: hosts.iter().copied().min().unwrap_or(0),
        max_hosts: hosts.iter().copied().max().unwrap_or(0),
        mean_hosts: hosts.iter().map(|&x| x as f64).sum::<f64>() / m as f64,
        free_ports: (0..m).map(|s| g.free_ports(s)).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::random_general;
    use crate::metrics::path_metrics;

    fn path3() -> HostSwitchGraph {
        let mut g = HostSwitchGraph::new(3, 4).unwrap();
        g.add_link(0, 1).unwrap();
        g.add_link(1, 2).unwrap();
        g.attach_host(0).unwrap();
        g.attach_host(2).unwrap();
        g
    }

    #[test]
    fn histogram_sums_to_pairs_and_matches_haspl() {
        let g = random_general(48, 12, 8, 9).unwrap();
        let hist = distance_histogram(&g).unwrap();
        let pairs: u64 = hist.iter().sum();
        assert_eq!(pairs, 48 * 47 / 2);
        let total: u64 = hist.iter().enumerate().map(|(d, &c)| d as u64 * c).sum();
        let pm = path_metrics(&g).unwrap();
        assert_eq!(total, pm.total_length);
        // diameter = last non-empty bucket
        let dmax = hist.iter().rposition(|&c| c > 0).unwrap();
        assert_eq!(dmax as u32, pm.diameter);
    }

    #[test]
    fn histogram_on_disconnected_is_none() {
        let mut g = HostSwitchGraph::new(2, 4).unwrap();
        g.attach_host(0).unwrap();
        g.attach_host(1).unwrap();
        assert!(distance_histogram(&g).is_none());
    }

    #[test]
    fn middle_switch_on_path_is_useful() {
        let g = path3();
        assert!(otiose_switches(&g).is_empty());
    }

    #[test]
    fn dead_end_switch_is_otiose() {
        // path h - s0 - s1 - h plus a pendant s2 off s1
        let mut g = HostSwitchGraph::new(3, 4).unwrap();
        g.add_link(0, 1).unwrap();
        g.add_link(1, 2).unwrap();
        g.attach_host(0).unwrap();
        g.attach_host(1).unwrap();
        assert_eq!(otiose_switches(&g), vec![2]);
    }

    #[test]
    fn host_bearing_switches_are_never_otiose() {
        let g = random_general(60, 15, 8, 4).unwrap();
        let otiose = otiose_switches(&g);
        for s in otiose {
            assert_eq!(g.host_count(s), 0);
        }
    }

    #[test]
    fn degree_stats_consistency() {
        let g = random_general(48, 12, 8, 9).unwrap();
        let st = degree_stats(&g);
        assert!(st.min_links <= st.max_links);
        assert!((st.mean_hosts - 4.0).abs() < 1e-12);
        assert!(st.free_ports <= 1);
        // radix budget respected
        assert!(st.max_links + st.max_hosts <= 2 * 8);
    }
}
