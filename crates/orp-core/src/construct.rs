//! Constructions of host-switch graphs: the trivial optima of Section 3.2,
//! the clique graphs of the Appendix, and randomized initial solutions for
//! the annealer.

use crate::error::GraphError;
use crate::graph::{HostSwitchGraph, Switch};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The `n ≤ r` optimum: a single switch holding every host (h-ASPL = 2).
pub fn star(n: u32, r: u32) -> Result<HostSwitchGraph, GraphError> {
    if n > r {
        return Err(GraphError::InvalidParameters(format!(
            "star needs n <= r, got n={n} r={r}"
        )));
    }
    let mut g = HostSwitchGraph::new(1, r)?;
    for _ in 0..n {
        g.attach_host(0)?;
    }
    Ok(g)
}

/// A *clique host-switch graph* (Appendix): the minimum number of switches
/// forming a complete graph, hosts spread as evenly as possible. Optimal
/// whenever `r < n ≤ m(r − m + 1)` for some `m` (Theorem 3).
pub fn clique(n: u32, r: u32) -> Result<HostSwitchGraph, GraphError> {
    let m = crate::bounds::min_clique_switches(n as u64, r as u64).ok_or_else(|| {
        GraphError::InvalidParameters(format!(
            "no clique of radix-{r} switches can hold {n} hosts"
        ))
    })? as u32;
    clique_with_switches(n, m, r)
}

/// A clique host-switch graph with exactly `m` switches.
pub fn clique_with_switches(n: u32, m: u32, r: u32) -> Result<HostSwitchGraph, GraphError> {
    if m >= 1 && n as u64 > crate::bounds::clique_capacity(m as u64, r as u64) {
        return Err(GraphError::InvalidParameters(format!(
            "clique with m={m} r={r} holds at most {} hosts, asked {n}",
            crate::bounds::clique_capacity(m as u64, r as u64)
        )));
    }
    let mut g = HostSwitchGraph::new(m, r)?;
    for a in 0..m {
        for b in (a + 1)..m {
            g.add_link(a, b)?;
        }
    }
    for h in 0..n {
        g.attach_host(h % m)?;
    }
    Ok(g)
}

/// A random connected `k`-regular switch fabric with `n` hosts spread
/// `n/m` per switch (the paper's *regular host-switch graph*): requires
/// `m | n` and `k = r − n/m ≥ 2`.
///
/// Strategy: a Hamiltonian ring guarantees connectivity and 2 of the `k`
/// switch ports; the rest are filled by a configuration-model style random
/// matching repaired with edge swaps.
pub fn random_regular(n: u32, m: u32, r: u32, seed: u64) -> Result<HostSwitchGraph, GraphError> {
    if m == 0 || !n.is_multiple_of(m) {
        return Err(GraphError::InvalidParameters(format!(
            "m={m} must divide n={n}"
        )));
    }
    let per = n / m;
    if per > r {
        return Err(GraphError::InvalidParameters(format!(
            "n/m = {per} hosts exceed radix {r}"
        )));
    }
    let k = r - per;
    if m > 1 && k < 2 {
        return Err(GraphError::InvalidParameters(format!(
            "switch degree k = r - n/m = {k} cannot form a connected regular graph"
        )));
    }
    if m == 1 {
        return star(n, r);
    }
    if !(m as u64 * k as u64).is_multiple_of(2) {
        return Err(GraphError::InvalidParameters(format!(
            "m·k = {m}·{k} must be even for a k-regular graph"
        )));
    }
    if k as u64 >= m as u64 {
        // complete graph is the only (m-1)-regular graph; larger k impossible
        if k == m - 1 {
            return clique_with_switches(n, m, r);
        }
        return Err(GraphError::InvalidParameters(format!(
            "k = {k} regular graph on m = {m} vertices does not exist"
        )));
    }
    // The greedy filler can rarely strand ports; retry with derived seeds.
    for attempt in 0..32u64 {
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed.wrapping_add(attempt.wrapping_mul(0x9e3779b97f4a7c15)));
        let mut g = HostSwitchGraph::new(m, r)?;
        for h in 0..n {
            g.attach_host(h % m)?;
        }
        random_fill_ring_first(&mut g, &mut rng)?;
        if g.regularity() == Some((k, per)) && g.is_connected() {
            return Ok(g);
        }
    }
    Err(GraphError::ConstructionFailed(format!(
        "could not realise a connected {k}-regular fabric on m={m} (n={n}, r={r})"
    )))
}

/// A random connected host-switch graph with `m` switches where hosts are
/// spread as evenly as the port budget allows and every remaining port is
/// used for switch links (at most one port in the whole graph stays free,
/// for parity). This is the annealer's initial solution for the swing
/// search.
///
/// The connecting backbone is a random Hamiltonian ring when every
/// switch can spare two ports; tight instances fall back to a path and
/// then a star so that anything the radix budget permits is realisable.
pub fn random_general(n: u32, m: u32, r: u32, seed: u64) -> Result<HostSwitchGraph, GraphError> {
    if m == 0 {
        return Err(GraphError::InvalidParameters("m must be positive".into()));
    }
    if n as u64 > m as u64 * r as u64 {
        return Err(GraphError::InvalidParameters(format!(
            "{m} radix-{r} switches hold at most {} hosts, asked {n}",
            m as u64 * r as u64
        )));
    }
    if m == 1 {
        return star(n, r);
    }
    let ring_cap = m as u64 * (r as u64 - 2);
    let path_cap = ring_cap + 2;
    let star_ok = m - 1 <= r;
    let star_cap = if star_ok {
        (r - (m - 1)) as u64 + (m - 1) as u64 * (r - 1) as u64
    } else {
        0
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = HostSwitchGraph::new(m, r)?;
    let mut order: Vec<Switch> = (0..m).collect();
    order.shuffle(&mut rng);
    if m == 2 {
        g.add_link(0, 1)?;
    } else if (n as u64) <= ring_cap {
        for i in 0..m as usize {
            g.add_link(order[i], order[(i + 1) % m as usize])?;
        }
    } else if (n as u64) <= path_cap {
        for w in order.windows(2) {
            g.add_link(w[0], w[1])?;
        }
    } else if star_ok && (n as u64) <= star_cap {
        for &leaf in &order[1..] {
            g.add_link(order[0], leaf)?;
        }
    } else {
        return Err(GraphError::InvalidParameters(format!(
            "no connected backbone on m={m} radix-{r} switches leaves room for {n} hosts"
        )));
    }
    // hosts: round-robin over the shuffled order, skipping full switches
    let mut left = n;
    while left > 0 {
        let mut placed = false;
        for &s in &order {
            if left == 0 {
                break;
            }
            if g.free_ports(s) > 0 {
                g.attach_host(s)?;
                left -= 1;
                placed = true;
            }
        }
        debug_assert!(placed, "capacity verified above");
        if !placed {
            return Err(GraphError::ConstructionFailed(
                "host placement stalled".into(),
            ));
        }
    }
    fill_free_ports(&mut g, &mut rng);
    Ok(g)
}

/// Connects all switches in a random Hamiltonian ring, then fills the
/// remaining free ports with random simple edges. At most one odd port may
/// remain unused. Assumes every switch currently has ≥ 2 free ports.
fn random_fill_ring_first<R: Rng>(g: &mut HostSwitchGraph, rng: &mut R) -> Result<(), GraphError> {
    let m = g.num_switches();
    if m == 2 {
        g.add_link(0, 1)?;
        return Ok(());
    }
    let mut ring: Vec<Switch> = (0..m).collect();
    ring.shuffle(rng);
    for i in 0..m as usize {
        g.add_link(ring[i], ring[(i + 1) % m as usize])?;
    }
    fill_free_ports(g, rng);
    Ok(())
}

/// Greedily pairs free ports with random simple edges until no valid pair
/// remains. Uses a bounded number of repair swaps when the remaining free
/// ports are concentrated on adjacent switches.
pub fn fill_free_ports<R: Rng>(g: &mut HostSwitchGraph, rng: &mut R) {
    let m = g.num_switches();
    // Each loop iteration either adds an edge or performs one repair
    // rewire; bound the total to rule out pathological oscillation.
    let budget = 4 * (m as u64 * g.radix() as u64 / 2 + 64);
    for _ in 0..budget {
        let mut free: Vec<Switch> = (0..m).filter(|&s| g.free_ports(s) > 0).collect();
        let total_free: u32 = free.iter().map(|&s| g.free_ports(s)).sum();
        if total_free <= 1 {
            return; // at most the parity port remains
        }
        free.shuffle(rng);
        let mut progressed = false;
        // try all unordered pairs of port-bearing switches, front-to-back
        'outer: for i in 0..free.len() {
            for j in (i + 1)..free.len() {
                let (a, b) = (free[i], free[j]);
                if g.free_ports(a) == 0 || g.free_ports(b) == 0 {
                    continue;
                }
                if !g.has_link(a, b) && g.add_link(a, b).is_ok() {
                    progressed = true;
                    break 'outer;
                }
            }
        }
        if !progressed {
            // Remaining free-port switches are pairwise adjacent (or a
            // single switch has >1 free port). Repair: pick a free-port
            // switch a and a random edge {c,d} not touching a, rewire
            // {c,d} → {a,c} + retry; equivalent of one swap step.
            let a = free[0];
            let candidates: Vec<(Switch, Switch)> = g
                .links()
                .filter(|&(c, d)| c != a && d != a && (!g.has_link(a, c) || !g.has_link(a, d)))
                .collect();
            let Some(&(c, d)) = candidates.as_slice().choose(rng) else {
                return;
            };
            let other = if !g.has_link(a, c) { c } else { d };
            g.remove_link(c, d).expect("edge came from links()");
            g.add_link(a, other)
                .expect("checked not adjacent with free port");
            // c or d regained a free port; loop continues
        }
    }
}

/// A random connected `k`-regular plain graph on `m` vertices embedded as
/// a host-less host-switch fabric (radix `k`, `k ≥ 3`); useful for tests
/// and as a baseline generator.
pub fn random_regular_fabric(m: u32, k: u32, seed: u64) -> Result<HostSwitchGraph, GraphError> {
    if m < 2 || k < 3 || k >= m || !(m as u64 * k as u64).is_multiple_of(2) {
        return Err(GraphError::InvalidParameters(format!(
            "no connected {k}-regular (k >= 3) graph on {m} vertices"
        )));
    }
    for attempt in 0..32u64 {
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed.wrapping_add(attempt.wrapping_mul(0x9e3779b97f4a7c15)));
        let mut g = HostSwitchGraph::new(m, k)?;
        random_fill_ring_first(&mut g, &mut rng)?;
        if g.regularity() == Some((k, 0)) && g.is_connected() {
            return Ok(g);
        }
    }
    Err(GraphError::ConstructionFailed(format!(
        "could not realise a connected {k}-regular fabric on {m} vertices"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::path_metrics;

    #[test]
    fn star_is_haspl_two() {
        let g = star(24, 24).unwrap();
        g.validate().unwrap();
        assert_eq!(path_metrics(&g).unwrap().haspl, 2.0);
        assert!(star(25, 24).is_err());
    }

    #[test]
    fn clique_picks_min_switches() {
        // n=128, r=24 → m=8 per the paper (8·17 = 136 ≥ 128).
        let g = clique(128, 24).unwrap();
        g.validate().unwrap();
        assert_eq!(g.num_switches(), 8);
        let m = path_metrics(&g).unwrap();
        assert!(m.haspl < 3.0, "clique h-ASPL {}", m.haspl);
        assert_eq!(m.diameter, 3);
    }

    #[test]
    fn clique_respects_capacity() {
        assert!(clique_with_switches(200, 8, 24).is_err());
        assert!(clique(157, 24).is_err());
    }

    #[test]
    fn random_regular_is_regular_and_connected() {
        for seed in 0..5 {
            let g = random_regular(128, 16, 12, seed).unwrap();
            g.validate().unwrap();
            // per = 8, k = 4
            assert_eq!(g.regularity(), Some((4, 8)));
            assert!(g.is_connected());
        }
    }

    #[test]
    fn random_regular_rejects_bad_params() {
        assert!(random_regular(100, 7, 12, 0).is_err()); // 7 ∤ 100
        assert!(random_regular(128, 16, 9, 0).is_err()); // k = 1
                                                         // odd m·k: m=5, per=2, r=5 → k=3, 5·3 odd
        assert!(random_regular(10, 5, 5, 0).is_err());
    }

    #[test]
    fn random_regular_clique_edge_case() {
        // k = m-1 → complete switch graph
        let g = random_regular(8, 4, 5, 1).unwrap(); // per=2, k=3=m-1
        g.validate().unwrap();
        assert_eq!(g.num_links(), 6);
    }

    #[test]
    fn random_general_balances_hosts() {
        let g = random_general(1024, 194, 15, 7).unwrap();
        g.validate().unwrap();
        assert!(g.is_connected());
        let counts = g.host_counts();
        let (mn, mx) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*mx - *mn <= 1, "hosts unbalanced: {mn}..{mx}");
        assert_eq!(counts.iter().sum::<u32>(), 1024);
        // all but at most one port used
        let free: u32 = (0..194).map(|s| g.free_ports(s)).sum();
        assert!(free <= 1, "{free} ports left free");
    }

    #[test]
    fn random_general_rejects_overfull() {
        assert!(random_general(1000, 10, 24, 0).is_err());
        // 43 switches × radix 24 could hold the hosts, but not with
        // 2 ring ports per switch
        assert!(random_general(1024, 44, 24, 0).is_err());
    }

    #[test]
    fn random_general_two_switches() {
        let g = random_general(8, 2, 6, 0).unwrap();
        g.validate().unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn seeds_are_deterministic() {
        let a = random_general(256, 64, 12, 99).unwrap();
        let b = random_general(256, 64, 12, 99).unwrap();
        assert_eq!(a, b);
        let c = random_general(256, 64, 12, 100).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn fabric_generator() {
        let g = random_regular_fabric(50, 4, 3).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.num_links(), 100);
        assert!((0..50).all(|s| g.neighbors(s).len() == 4));
    }
}
