//! The unified end-to-end ORP solver (§5.3), builder style.
//!
//! [`Solver::builder`] replaces the former free functions `solve_orp`,
//! `solve_orp_multi` and `solve_orp_multi_report` with one surface,
//! consistent with [`crate::anneal::Anneal`] and
//! [`crate::temper::Temper`]: pick `m = m_opt` from the continuous
//! Moore bound, then run either independently seeded restarts of the
//! annealer or a parallel-tempering ensemble (when
//! [`Solver::replicas`] `> 1`), with per-restart checkpoints, resume,
//! stall watchdogs and panic isolation.
//!
//! ```
//! use orp_core::solver::Solver;
//! use orp_core::anneal::SaConfig;
//!
//! let report = Solver::builder(64, 10)
//!     .config(SaConfig::builder().iters(300).seed(1).build())
//!     .run()
//!     .unwrap();
//! assert_eq!(report.result.graph.num_switches(), report.m_opt);
//! ```

use crate::anneal::{
    restart_ckpt_path, Anneal, MoveKind, SaConfig, SaResult, DEFAULT_CHECKPOINT_EVERY,
};
use crate::bounds::optimal_switch_count;
use crate::construct::random_general;
use crate::error::{GraphError, SaError, WorkerPanic};
use crate::search::SearchConfig;
use crate::temper::{geometric_ladder, ExchangeStats, Temper};
use crate::watchdog::WatchSource;
use orp_obs::{Recorder, StreamSink};
use std::path::PathBuf;
use std::time::Duration;

/// Outcome of a [`Solver`] run that survived at least one restart.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// Best result over the restarts (and replicas) that completed.
    pub result: SaResult,
    /// The predicted optimal switch count the search annealed with.
    pub m_opt: u32,
    /// Restarts that ran to completion.
    pub completed: usize,
    /// Restarts that panicked, with per-worker diagnostics; a crashed
    /// sibling never poisons the surviving results.
    pub panics: Vec<WorkerPanic>,
    /// Restarts that returned a structured error (e.g. stalled), with
    /// their indices.
    pub errors: Vec<(usize, SaError)>,
    /// Replica-exchange counters summed over the completed restarts;
    /// `None` for plain (single-replica) solves.
    pub exchanges: Option<ExchangeStats>,
}

/// Builder for the end-to-end solve; see the module docs.
#[derive(Debug, Clone)]
pub struct Solver {
    n: u32,
    r: u32,
    kind: MoveKind,
    cfg: SaConfig,
    restarts: usize,
    replicas: usize,
    ladder: Vec<f64>,
    exchange_every: usize,
    rec: Recorder,
    ckpt: Option<PathBuf>,
    ckpt_every: usize,
    resume: bool,
    watchdog: Option<Duration>,
    stream: Option<StreamSink>,
}

impl Solver {
    /// Starts a builder solving the ORP instance `(n, r)` with the
    /// defaults: one restart, one replica (plain annealing), the
    /// 2-neighbor swing neighbourhood and [`SaConfig::default`].
    pub fn builder(n: u32, r: u32) -> Self {
        Self {
            n,
            r,
            kind: MoveKind::TwoNeighborSwing,
            cfg: SaConfig::default(),
            restarts: 1,
            replicas: 1,
            ladder: Vec::new(),
            exchange_every: 1000,
            rec: Recorder::disabled(),
            ckpt: None,
            ckpt_every: DEFAULT_CHECKPOINT_EVERY,
            resume: false,
            watchdog: None,
            stream: None,
        }
    }

    /// Which neighbourhood to explore (default 2-neighbor swing, the
    /// paper's §5.2 operation for general graphs).
    pub fn kind(mut self, kind: MoveKind) -> Self {
        self.kind = kind;
        self
    }

    /// Schedule and bookkeeping knobs.
    pub fn config(mut self, cfg: SaConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Distance-cache policy (codec selection and memory budget) for
    /// the evaluation engine; a shorthand for setting
    /// [`SaConfig::search`] after [`Solver::config`].
    pub fn search(mut self, search: SearchConfig) -> Self {
        self.cfg.search = search;
        self
    }

    /// Independently seeded restarts on parallel OS threads (minimum
    /// 1). Restart `i` offsets the base seed by `i × replicas`, so
    /// the single-restart single-replica case reproduces a plain
    /// [`Anneal`] run with the base seed exactly.
    pub fn restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Parallel-tempering replicas per restart (minimum 1). With more
    /// than one replica each restart runs a [`Temper`] ensemble over
    /// the temperature ladder instead of a single annealer.
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas.max(1);
        self
    }

    /// Explicit temperature ladder for the tempering path; when unset,
    /// a [`geometric_ladder`] with [`Solver::replicas`] rungs from
    /// `cfg.t0` down to `cfg.t_end` is used.
    pub fn ladder(mut self, ladder: Vec<f64>) -> Self {
        self.ladder = ladder;
        self
    }

    /// Iterations between replica-exchange attempts (tempering path
    /// only; minimum 1).
    pub fn exchange_every(mut self, every: usize) -> Self {
        self.exchange_every = every.max(1);
        self
    }

    /// Attaches a telemetry recorder.
    pub fn recorder(mut self, rec: Recorder) -> Self {
        self.rec = rec;
        self
    }

    /// Per-restart checkpoint prefix: restart `i` checkpoints to
    /// `<prefix>.r<i>` (see [`restart_ckpt_path`]), so one crashed
    /// worker never loses its siblings' progress. Tempering restarts
    /// write ensemble checkpoints (kind TEMPER) to the same paths.
    pub fn checkpoint(mut self, prefix: impl Into<PathBuf>) -> Self {
        self.ckpt = Some(prefix.into());
        self
    }

    /// Checkpoint stride in iterations (default
    /// [`DEFAULT_CHECKPOINT_EVERY`]). The tempering path rounds this
    /// up to whole exchange rounds.
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.ckpt_every = every;
        self
    }

    /// Resume each restart whose checkpoint file already exists;
    /// restarts without one start fresh.
    pub fn resume(mut self, yes: bool) -> Self {
        self.resume = yes;
        self
    }

    /// Arms a per-restart stall watchdog with this window.
    pub fn watchdog(mut self, window: Duration) -> Self {
        self.watchdog = Some(window);
        self
    }

    /// Attaches a live metrics stream. Restart 0 carries it — one
    /// restart keeps the JSONL gauge names collision-free while still
    /// showing a representative live view of the solve (all restarts
    /// run the same schedule; shared counters still aggregate across
    /// the whole solve through the recorder). No-op unless a recorder
    /// is also attached.
    pub fn stream(mut self, sink: StreamSink) -> Self {
        self.stream = Some(sink);
        self
    }

    /// Runs the solve. Fails only when *no* restart completes: with
    /// the first structured error if one exists, else
    /// [`SaError::AllWorkersPanicked`].
    pub fn run(self) -> Result<SolveReport, SaError> {
        let (m_opt, _) = optimal_switch_count(self.n as u64, self.r as u64);
        let m_opt = m_opt as u32;
        let restarts = self.restarts;
        // Split the machine across the restarts instead of pinning
        // every inner eval to one core: with `restarts < cores` the
        // leftover cores feed each restart's persistent eval pool. An
        // explicit `eval_workers` in the config wins over the split.
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        let per_restart = self
            .cfg
            .eval_workers
            .map(|w| w.max(1))
            .unwrap_or_else(|| (cores / restarts).max(1));
        let this = &self;
        let outcomes = scoped_restarts(
            restarts,
            |i| -> Result<(SaResult, ExchangeStats), SaError> {
                let mut c = this.cfg.clone();
                // Stride the restart seeds by the replica count so no two
                // annealers anywhere in the solve share an RNG stream
                // (tempering offsets replica `k` by `+k` within a restart).
                c.seed = this.cfg.seed.wrapping_add((i * this.replicas) as u64);
                c.eval_workers = Some(per_restart);
                let start = random_general(this.n, m_opt, this.r, c.seed)?;
                let ckpt_path = this.ckpt.as_ref().map(|p| restart_ckpt_path(p, i));
                let stream = (i == 0).then(|| this.stream.clone()).flatten();
                if this.replicas > 1 {
                    let mut b = Temper::builder(start)
                        .kind(this.kind)
                        .config(c)
                        .exchange_every(this.exchange_every)
                        .recorder(this.rec.clone());
                    if let Some(sink) = stream {
                        b = b.stream(sink);
                    }
                    if !this.ladder.is_empty() {
                        b = b.ladder(this.ladder.clone());
                    } else {
                        b = b.ladder(geometric_ladder(
                            this.cfg.t0,
                            this.cfg.t_end.max(1e-12),
                            this.replicas,
                        ));
                    }
                    if let Some(path) = &ckpt_path {
                        if this.resume && path.exists() {
                            b = b.resume_from(path);
                        }
                        b = b.checkpoint(path);
                        if this.ckpt_every > 0 {
                            b = b.checkpoint_every_rounds(
                                this.ckpt_every.div_ceil(this.exchange_every).max(1),
                            );
                        } else {
                            b = b.checkpoint_every_rounds(0);
                        }
                    }
                    if let Some(window) = this.watchdog {
                        b = b.watchdog(window).watchdog_label(i as u32);
                    }
                    let res = b.run()?;
                    let best = res.best;
                    Ok((
                        res.results.into_iter().nth(best).expect("best index"),
                        res.exchanges,
                    ))
                } else {
                    let mut b = Anneal::builder(start)
                        .kind(this.kind)
                        .config(c)
                        .recorder(this.rec.clone());
                    if let Some(sink) = stream {
                        b = b.stream(sink);
                    }
                    if let Some(path) = &ckpt_path {
                        if this.resume && path.exists() {
                            b = b.resume_from(path);
                        }
                        b = b.checkpoint(path);
                        if this.ckpt_every > 0 {
                            b = b.checkpoint_every(this.ckpt_every);
                        }
                    }
                    if let Some(window) = this.watchdog {
                        b = b
                            .watchdog(window)
                            .watchdog_label(WatchSource::Restart, i as u32);
                    }
                    Ok((b.run()?, ExchangeStats::default()))
                }
            },
        );
        let mut best: Option<SaResult> = None;
        let mut completed = 0usize;
        let mut panics = Vec::new();
        let mut errors = Vec::new();
        let mut exchanges = ExchangeStats::default();
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(Ok((res, ex))) => {
                    completed += 1;
                    exchanges.attempted += ex.attempted;
                    exchanges.accepted += ex.accepted;
                    if best
                        .as_ref()
                        .map(|b| res.metrics.haspl < b.metrics.haspl)
                        .unwrap_or(true)
                    {
                        best = Some(res);
                    }
                }
                Ok(Err(e)) => errors.push((i, e)),
                Err(message) => panics.push(WorkerPanic {
                    restart: i,
                    seed: self.cfg.seed.wrapping_add((i * self.replicas) as u64),
                    message,
                }),
            }
        }
        match best {
            Some(result) => Ok(SolveReport {
                result,
                m_opt,
                completed,
                panics,
                errors,
                exchanges: (self.replicas > 1).then_some(exchanges),
            }),
            None => match errors.into_iter().next() {
                Some((_, e)) => Err(e),
                None if !panics.is_empty() => Err(SaError::AllWorkersPanicked(panics)),
                None => Err(SaError::Graph(GraphError::ConstructionFailed(
                    "no restarts ran".into(),
                ))),
            },
        }
    }
}

/// Runs `restarts` closures on parallel scoped threads, capturing
/// panics instead of propagating them. Returns one entry per restart:
/// the closure's result, or `Err(message)` if it panicked.
pub(crate) fn scoped_restarts<T, F>(restarts: usize, f: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..restarts).map(|i| scope.spawn(move || f(i))).collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().map_err(|p| {
                    p.downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| p.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into())
                })
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::haspl_lower_bound;

    fn small_cfg(iters: usize) -> SaConfig {
        SaConfig {
            iters,
            t0: 0.02,
            t_end: 1e-4,
            seed: 7,
            ..SaConfig::default()
        }
    }

    #[test]
    fn solver_uses_m_opt_and_respects_bounds() {
        let report = Solver::builder(64, 10)
            .config(small_cfg(300))
            .run()
            .unwrap();
        assert_eq!(report.result.graph.num_switches(), report.m_opt);
        assert_eq!(report.result.graph.num_hosts(), 64);
        report.result.graph.validate().unwrap();
        assert_eq!(report.completed, 1);
        assert!(report.exchanges.is_none());
        let lb = haspl_lower_bound(64, 10);
        assert!(report.result.metrics.haspl >= lb - 1e-9);
        // should come reasonably close to the bound on such a small case
        assert!(
            report.result.metrics.haspl <= lb + 1.5,
            "{} vs {lb}",
            report.result.metrics.haspl
        );
    }

    #[test]
    fn single_restart_matches_plain_anneal() {
        // The builder with defaults reproduces the historical
        // `solve_orp` pipeline bit-for-bit.
        let cfg = small_cfg(300);
        let report = Solver::builder(64, 10).config(cfg.clone()).run().unwrap();
        let (m_opt, _) = optimal_switch_count(64, 10);
        let start = random_general(64, m_opt as u32, 10, cfg.seed).unwrap();
        let plain = crate::anneal::anneal(start, MoveKind::TwoNeighborSwing, &cfg).unwrap();
        assert_eq!(report.result.graph, plain.graph);
        assert_eq!(report.result.metrics, plain.metrics);
    }

    #[test]
    fn multi_restart_takes_the_best() {
        let cfg = small_cfg(300);
        let single = Solver::builder(64, 10).config(cfg.clone()).run().unwrap();
        let multi = Solver::builder(64, 10)
            .config(cfg)
            .restarts(4)
            .run()
            .unwrap();
        assert_eq!(multi.completed, 4);
        assert!(multi.result.metrics.haspl <= single.result.metrics.haspl + 1e-12);
    }

    #[test]
    fn tempering_solve_reports_exchanges() {
        let report = Solver::builder(64, 10)
            .config(small_cfg(400))
            .replicas(3)
            .exchange_every(50)
            .run()
            .unwrap();
        assert_eq!(report.completed, 1);
        let ex = report.exchanges.expect("tempering stats");
        assert!(ex.attempted > 0);
        report.result.graph.validate().unwrap();
        assert!(report.result.metrics.haspl >= haspl_lower_bound(64, 10) - 1e-9);
    }

    #[test]
    fn solver_is_reproducible() {
        let run = || {
            Solver::builder(64, 10)
                .config(small_cfg(300))
                .replicas(2)
                .exchange_every(60)
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.result.graph, b.result.graph);
        assert_eq!(a.result.metrics, b.result.metrics);
        assert_eq!(a.exchanges, b.exchanges);
    }

    #[test]
    fn checkpointed_solver_resumes_to_the_same_answer() {
        let dir = std::env::temp_dir().join(format!("orp_solver_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("solve.ckpt");
        let cfg = small_cfg(300);
        let run = |resume| {
            Solver::builder(64, 10)
                .config(cfg.clone())
                .restarts(2)
                .checkpoint(&prefix)
                .checkpoint_every(100)
                .resume(resume)
                .run()
                .unwrap()
        };
        let report = run(false);
        assert!(restart_ckpt_path(&prefix, 0).exists());
        assert!(restart_ckpt_path(&prefix, 1).exists());
        // Resuming from the completed checkpoints lands on the same
        // answer immediately.
        let resumed = run(true);
        assert_eq!(resumed.result.graph, report.result.graph);
        assert_eq!(resumed.result.metrics, report.result.metrics);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scoped_restarts_captures_panics() {
        let out = scoped_restarts(3, |i| {
            if i == 1 {
                panic!("boom {i}");
            }
            i * 10
        });
        assert_eq!(out[0], Ok(0));
        assert_eq!(out[1], Err("boom 1".to_string()));
        assert_eq!(out[2], Ok(20));
    }
}
