//! A Chase–Lev work-stealing deque for scheduling evaluation work
//! (re-BFS batches and per-source cache repairs) across the persistent
//! [`crate::search::SearchState`] worker pool.
//!
//! One deque per worker: the owner pushes and pops at the *bottom*
//! (LIFO, cache-friendly), thieves take from the *top* (FIFO, oldest
//! first). The implementation follows the C11 formulation of Lê,
//! Pop, Cocco & Fatahalian, "Correct and Efficient Work-Stealing for
//! Weak Memory Models" (PPoPP'13): a `SeqCst` fence orders the owner's
//! speculative bottom decrement against concurrent steals, and the
//! single-element race between `pop` and `steal` is settled by a CAS on
//! `top`.
//!
//! Two deliberate simplifications against the general algorithm:
//!
//! * **Fixed capacity.** The scheduler knows the worst-case task count
//!   per evaluation up front (`⌈sources/64⌉ sweep batches + affected
//!   repair sources ≤ m + ⌈m/64⌉`), so the ring buffer is sized once
//!   and [`Deque::push`] simply reports overflow instead of growing —
//!   no buffer swap, no reclamation problem.
//! * **`T: Copy`.** Tasks are small ids; a lost race leaves no value to
//!   drop, so reads of the ring slots need no ownership transfer.
//!
//! The scheduler seeds every worker's deque with a contiguous shard of
//! the task list *before* the job is published (the pool's job mutex
//! orders those writes ahead of any worker wake-up), then each worker
//! drains its own deque and steals from its siblings once empty. Every
//! task is executed exactly once — the property suite drives
//! concurrent owner/thief interleavings and checks no task is lost or
//! duplicated.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, Ordering};

/// Outcome of a [`Deque::steal`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; retrying may succeed.
    Retry,
    /// Took the oldest task.
    Success(T),
}

/// A fixed-capacity Chase–Lev work-stealing deque. The owner thread
/// calls [`Deque::push`] / [`Deque::pop`]; any other thread may call
/// [`Deque::steal`] concurrently.
#[derive(Debug)]
pub struct Deque<T> {
    /// Owner end. Only the owner writes it (the pop/steal CAS protocol
    /// never needs a thief to).
    bottom: AtomicIsize,
    /// Thief end; advanced by successful steals and by the owner when it
    /// wins the last-element race.
    top: AtomicIsize,
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: isize,
}

// SAFETY: slots are plain `Copy` payloads; the Chase–Lev index protocol
// guarantees a slot is never written (by push) while a concurrent read
// (by pop/steal) of the same logical element can still win its CAS.
unsafe impl<T: Copy + Send> Send for Deque<T> {}
unsafe impl<T: Copy + Send> Sync for Deque<T> {}

impl<T: Copy> Deque<T> {
    /// A deque holding at most `capacity` tasks (rounded up to a power
    /// of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let buf = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buf,
            mask: cap as isize - 1,
        }
    }

    /// Ring capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Number of tasks currently queued, as observed by the caller.
    /// Exact for the owner between operations; a racy estimate for
    /// everyone else.
    #[inline]
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }

    /// Whether the deque is observed empty (racy for non-owners).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn slot(&self, i: isize) -> *mut MaybeUninit<T> {
        self.buf[(i & self.mask) as usize].get()
    }

    /// Owner: appends a task at the bottom. Returns `false` (and leaves
    /// the deque unchanged) when the ring is full.
    ///
    /// May also be called by a publisher while every worker is parked —
    /// external synchronisation (the pool's job handshake) must then
    /// order the pushes before any concurrent `pop`/`steal`.
    pub fn push(&self, v: T) -> bool {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= self.buf.len() as isize {
            return false;
        }
        // SAFETY: `b - t < capacity`, so slot `b` is not concurrently
        // readable: a thief reads index `t' >= t` only after its CAS on
        // `top`, and `b` is at least a full ring ahead of any index a
        // pending steal could have latched.
        unsafe {
            (*self.slot(b)).write(v);
        }
        // Publish the slot write before the new bottom becomes visible.
        self.bottom.store(b + 1, Ordering::Release);
        true
    }

    /// Owner: takes the most recently pushed task, or `None` when empty.
    pub fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // Order the speculative bottom decrement against thief reads of
        // `top`: after this fence, either the thief sees the new bottom
        // or the owner sees the thief's CAS.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Already empty: undo the decrement.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        // SAFETY: `t <= b` means element `b` existed when the fence ran;
        // a racing thief can only be after `t = b` (settled below).
        let v = unsafe { (*self.slot(b)).assume_init_read() };
        if t == b {
            // Last element: race a concurrent steal for it.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(v);
        }
        Some(v)
    }

    /// Thief: attempts to take the oldest task.
    pub fn steal(&self) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        // Order this thief's top read against the owner's speculative
        // bottom decrement (pairs with the fence in `pop`).
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // SAFETY: `t < b`: slot `t` holds an initialised element, and
        // `push` cannot overwrite it before `top` passes it — which only
        // happens through the CAS below.
        let v = unsafe { (*self.slot(t)).assume_init_read() };
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        Steal::Success(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d = Deque::with_capacity(8);
        assert!(d.push(1u32) && d.push(2) && d.push(3));
        assert_eq!(d.len(), 3);
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.steal(), Steal::Success(1));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn push_reports_overflow() {
        let d = Deque::with_capacity(2);
        assert_eq!(d.capacity(), 2);
        assert!(d.push(1u32));
        assert!(d.push(2));
        assert!(!d.push(3));
        assert_eq!(d.pop(), Some(2));
        assert!(d.push(3));
    }

    #[test]
    fn wraps_around_the_ring() {
        let d = Deque::with_capacity(4);
        for round in 0..10u32 {
            assert!(d.push(round));
            assert_eq!(d.pop(), Some(round));
        }
        assert!(d.is_empty());
    }

    /// Owner pops while thieves steal: every task observed exactly once.
    #[test]
    fn concurrent_steals_lose_nothing() {
        const TASKS: usize = 10_000;
        const THIEVES: usize = 3;
        let d = Deque::with_capacity(TASKS);
        let seen: Vec<AtomicUsize> = (0..TASKS).map(|_| AtomicUsize::new(0)).collect();
        let stolen = AtomicUsize::new(0);
        for i in 0..TASKS as u32 {
            assert!(d.push(i));
        }
        std::thread::scope(|scope| {
            for _ in 0..THIEVES {
                scope.spawn(|| loop {
                    match d.steal() {
                        Steal::Success(v) => {
                            seen[v as usize].fetch_add(1, Ordering::Relaxed);
                            stolen.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => break,
                    }
                });
            }
            while let Some(v) = d.pop() {
                seen[v as usize].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, c) in seen.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i} seen {c:?} times");
        }
        assert!(stolen.load(Ordering::Relaxed) <= TASKS);
    }
}
