//! Parallel tempering (replica exchange) on top of the annealer.
//!
//! `K` replicas of the search run side by side, each at a fixed rung of
//! a temperature ladder. Every `exchange_every` iterations all replicas
//! reach a synchronized round boundary and adjacent rungs propose to
//! swap temperatures with the standard replica-exchange acceptance rule
//! `min(1, exp((β_j − β_{j+1}) · (E_j − E_{j+1})))`, where `E` is the
//! replica's current h-ASPL. Hot rungs cross barriers, cold rungs
//! exploit; an accepted exchange moves only the *temperature* between
//! the two replicas (no graph copying).
//!
//! Determinism: replicas advance in index order and each owns its own
//! seeded RNG; exchange decisions come from a dedicated exchange RNG
//! that draws exactly one uniform per proposed pair, *unconditionally*,
//! in rung order — so the stream never depends on the energies and a
//! run is reproducible for any eval worker count or cache codec.
//! Checkpoints (kind [`ckpt::KIND_TEMPER`]) embed one annealer payload
//! per replica plus the rung permutation and the exchange RNG state;
//! a run cut at any point resumes bit-identically, even mid-round
//! (replicas already at the boundary simply no-op until the laggard
//! catches up).

use crate::anneal::{Annealer, MoveKind, RunCtl, SaConfig, SaResult};
use crate::ckpt::{self, CkptError, Decoder, Encoder};
use crate::error::SaError;
use crate::graph::HostSwitchGraph;
use crate::watchdog::{WatchSource, Watchdog, WatchdogConfig};
use orp_obs::{Recorder, StreamSink};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::{ChaCha8Rng, CHACHA_STATE_WORDS};
use std::path::{Path, PathBuf};

/// Domain-separation constant for the exchange RNG seed, so the
/// exchange stream never collides with a replica stream derived from
/// the same base seed.
const EXCHANGE_SEED_SALT: u64 = 0xA5A5_5A5A_7E39_0001;

/// Counters for the replica-exchange moves of a tempering run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Adjacent-rung swaps proposed.
    pub attempted: u64,
    /// Swaps accepted (temperatures actually moved).
    pub accepted: u64,
}

/// Outcome of a tempering run.
#[derive(Debug, Clone)]
pub struct TemperResult {
    /// Per-replica results, in replica index order.
    pub results: Vec<SaResult>,
    /// Index of the replica with the lowest best h-ASPL (first on ties).
    pub best: usize,
    /// Exchange-move counters.
    pub exchanges: ExchangeStats,
}

impl TemperResult {
    /// The best replica's result.
    pub fn best_result(&self) -> &SaResult {
        &self.results[self.best]
    }
}

/// The per-replica config: rung `k` anneals at the constant temperature
/// `ladder[k]` (geometric cooling degenerates to constant when
/// `t0 == t_end`) with seed `base.seed + k`.
fn replica_cfg(base: &SaConfig, ladder: &[f64], k: usize) -> SaConfig {
    SaConfig {
        t0: ladder[k],
        t_end: ladder[k],
        seed: base.seed.wrapping_add(k as u64),
        ..base.clone()
    }
}

/// A geometric temperature ladder with `rungs` rungs from `hot` down to
/// `cold` (inclusive); the natural choice when acceptance rates should
/// overlap between neighbours.
pub fn geometric_ladder(hot: f64, cold: f64, rungs: usize) -> Vec<f64> {
    let rungs = rungs.max(1);
    if rungs == 1 {
        return vec![hot];
    }
    (0..rungs)
        .map(|k| hot * (cold / hot).powf(k as f64 / (rungs - 1) as f64))
        .collect()
}

/// The running state of a tempering solve: the replicas, the rung
/// permutation, the exchange RNG and the round cursor. Checkpoint
/// encode/decode round-trips all of it bit-exactly.
pub(crate) struct TemperRun {
    replicas: Vec<Annealer>,
    /// `rung[i]` = the ladder rung replica `i` currently holds.
    rung: Vec<u32>,
    xrng: ChaCha8Rng,
    next_round: usize,
    attempted: u64,
    accepted: u64,
    /// Per-adjacent-rung-pair exchange telemetry, indexed by the lower
    /// rung `j` of the pair `(j, j+1)`. Pure observability: deliberately
    /// *not* checkpointed (a resumed run restarts these at zero while
    /// the totals above round-trip exactly), so the stream stays
    /// self-consistent within one process lifetime.
    pair_attempted: Vec<u64>,
    pair_accepted: Vec<u64>,
}

impl TemperRun {
    pub(crate) fn new(
        start: &HostSwitchGraph,
        kind: MoveKind,
        cfg: &SaConfig,
        ladder: &[f64],
        rec: &Recorder,
    ) -> Result<Self, SaError> {
        let _ = kind;
        let mut replicas = Vec::with_capacity(ladder.len());
        for k in 0..ladder.len() {
            let c = replica_cfg(cfg, ladder, k);
            replicas.push(Annealer::new(start.clone(), &c, rec.clone())?);
        }
        let pairs = replicas.len().saturating_sub(1);
        Ok(Self {
            rung: (0..replicas.len() as u32).collect(),
            replicas,
            xrng: ChaCha8Rng::seed_from_u64(cfg.seed ^ EXCHANGE_SEED_SALT),
            next_round: 0,
            attempted: 0,
            accepted: 0,
            pair_attempted: vec![0; pairs],
            pair_accepted: vec![0; pairs],
        })
    }

    fn encode_ckpt(&self, kind: MoveKind, cfg: &SaConfig, ladder: &[f64], enc: &mut Encoder) {
        // Config echo (validated bitwise on resume). `t0`/`t_end` of the
        // base config are not echoed — the ladder replaces them — and
        // `eval_workers`/`parallel_eval`/`search` stay exempt as usual.
        enc.put_u64(cfg.iters as u64);
        enc.put_u64(cfg.seed);
        enc.put_u64(cfg.sample_attempts as u64);
        enc.put_u64(cfg.history_stride as u64);
        enc.put_bool(cfg.early_reject);
        enc.put_u64(ladder.len() as u64);
        for &t in ladder {
            enc.put_f64(t);
        }
        // Cursors and exchange state.
        enc.put_u64(self.next_round as u64);
        enc.put_u32_slice(&self.rung);
        enc.put_u32_slice(&self.xrng.state_words());
        enc.put_u64(self.attempted);
        enc.put_u64(self.accepted);
        // One embedded annealer payload per replica. Each carries its
        // own iteration cursor, so a mid-round cut (replicas at mixed
        // cursors) round-trips exactly.
        for (k, rep) in self.replicas.iter().enumerate() {
            let mut sub = Encoder::new();
            rep.encode_ckpt(kind, &replica_cfg(cfg, ladder, k), &mut sub);
            enc.put_bytes(&sub.into_bytes());
        }
    }

    fn save_ckpt(
        &self,
        kind: MoveKind,
        cfg: &SaConfig,
        ladder: &[f64],
        path: &Path,
    ) -> Result<(), CkptError> {
        let mut enc = Encoder::new();
        self.encode_ckpt(kind, cfg, ladder, &mut enc);
        ckpt::write_checkpoint(path, ckpt::KIND_TEMPER, &enc.into_bytes())
    }

    pub(crate) fn from_ckpt(
        payload: &[u8],
        kind: MoveKind,
        cfg: &SaConfig,
        ladder: &[f64],
        rec: &Recorder,
    ) -> Result<Self, SaError> {
        let bad = |what: &str| SaError::Ckpt(CkptError::BadSection(what.into()));
        let mut dec = Decoder::new(payload);
        let d = |r: Result<u64, CkptError>| r.map_err(SaError::Ckpt);
        let iters = d(dec.get_u64())?;
        let seed = d(dec.get_u64())?;
        let sample_attempts = d(dec.get_u64())?;
        let history_stride = d(dec.get_u64())?;
        let early_reject = dec.get_bool().map_err(SaError::Ckpt)?;
        let n_rungs = d(dec.get_u64())? as usize;
        let mut stored_ladder = Vec::with_capacity(n_rungs.min(payload.len() / 8));
        for _ in 0..n_rungs {
            stored_ladder.push(dec.get_f64().map_err(SaError::Ckpt)?);
        }
        let echo_ok = iters == cfg.iters as u64
            && seed == cfg.seed
            && sample_attempts == cfg.sample_attempts as u64
            && history_stride == cfg.history_stride as u64
            && early_reject == cfg.early_reject
            && stored_ladder.len() == ladder.len()
            && stored_ladder
                .iter()
                .zip(ladder)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !echo_ok {
            return Err(bad(
                "config does not match the checkpoint (iters/seed/sample_attempts/\
                 history_stride/early_reject/ladder must be identical)",
            ));
        }
        let next_round = d(dec.get_u64())? as usize;
        let rung = dec.get_u32_vec().map_err(SaError::Ckpt)?;
        if rung.len() != ladder.len() {
            return Err(bad("rung permutation has the wrong length"));
        }
        let mut sorted = rung.clone();
        sorted.sort_unstable();
        if !sorted.iter().enumerate().all(|(i, &r)| r == i as u32) {
            return Err(bad("rung assignment is not a permutation"));
        }
        let xrng_words = dec.get_u32_vec().map_err(SaError::Ckpt)?;
        let xrng_words: [u32; CHACHA_STATE_WORDS] = xrng_words
            .try_into()
            .map_err(|_| bad("exchange rng state has the wrong length"))?;
        let attempted = d(dec.get_u64())?;
        let accepted = d(dec.get_u64())?;
        let mut replicas = Vec::with_capacity(ladder.len());
        for k in 0..ladder.len() {
            let sub = dec.get_bytes().map_err(SaError::Ckpt)?;
            let c = replica_cfg(cfg, ladder, k);
            replicas.push(Annealer::from_ckpt(sub, kind, &c, rec.clone())?);
        }
        let pairs = replicas.len().saturating_sub(1);
        Ok(Self {
            replicas,
            rung,
            xrng: ChaCha8Rng::from_state_words(&xrng_words),
            next_round,
            attempted,
            accepted,
            pair_attempted: vec![0; pairs],
            pair_accepted: vec![0; pairs],
        })
    }

    /// One synchronized exchange sweep at a round boundary: adjacent
    /// rung pairs of the round's parity propose to swap temperatures.
    /// One uniform is drawn per pair unconditionally, in rung order, so
    /// the exchange stream is a pure function of the round index.
    fn exchange(&mut self, parity: usize) {
        let k = self.replicas.len();
        // Invert the rung permutation: holder[j] = replica at rung j.
        let mut holder = vec![0usize; k];
        for (i, &r) in self.rung.iter().enumerate() {
            holder[r as usize] = i;
        }
        let mut j = parity % 2;
        while j + 1 < k {
            let (a, b) = (holder[j], holder[j + 1]);
            let draw: f64 = self.xrng.gen();
            self.attempted += 1;
            self.pair_attempted[j] += 1;
            let (ta, tb) = (
                self.replicas[a].temperature(),
                self.replicas[b].temperature(),
            );
            let (ea, eb) = (
                self.replicas[a].cur_metrics().haspl,
                self.replicas[b].cur_metrics().haspl,
            );
            // min(1, exp((βa − βb)(Ea − Eb))); βs are finite because the
            // ladder is validated strictly positive.
            let log_accept = (1.0 / ta - 1.0 / tb) * (ea - eb);
            if log_accept >= 0.0 || draw < log_accept.exp() {
                self.replicas[a].set_temperature(tb);
                self.replicas[b].set_temperature(ta);
                self.rung.swap(a, b);
                self.accepted += 1;
                self.pair_accepted[j] += 1;
            }
            j += 2;
        }
    }

    /// Publishes the live tempering gauges the streaming dashboard
    /// renders: overall and per-adjacent-pair exchange attempt/accept
    /// counts plus every replica's current rung temperature. Gauges are
    /// absolute (last-write-wins), so a flush at any round boundary
    /// shows the up-to-date ensemble without double counting.
    fn publish_gauges(&self, rec: &Recorder) {
        if !rec.is_enabled() {
            return;
        }
        use std::fmt::Write as _;
        rec.gauge("temper.round", self.next_round as f64);
        rec.gauge("temper.exchanges_attempted", self.attempted as f64);
        rec.gauge("temper.exchanges_accepted", self.accepted as f64);
        let mut name = String::with_capacity(32);
        for (j, (&att, &acc)) in self
            .pair_attempted
            .iter()
            .zip(&self.pair_accepted)
            .enumerate()
        {
            name.clear();
            let _ = write!(name, "temper.pair{j}.attempted");
            rec.gauge_dyn(&name, att as f64);
            name.clear();
            let _ = write!(name, "temper.pair{j}.accepted");
            rec.gauge_dyn(&name, acc as f64);
        }
        for (i, rep) in self.replicas.iter().enumerate() {
            name.clear();
            let _ = write!(name, "temper.r{i}.temp");
            rec.gauge_dyn(&name, rep.temperature());
        }
    }

    /// Drives all replicas to completion in synchronized rounds of
    /// `exchange_every` iterations, exchanging at each interior
    /// boundary. On a stall or deterministic cut the whole ensemble is
    /// checkpointed to `ckpt_path` (kind TEMPER) before the error
    /// surfaces.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run(
        mut self,
        kind: MoveKind,
        cfg: &SaConfig,
        ladder: &[f64],
        exchange_every: usize,
        ctl: &RunCtl,
        rec: &Recorder,
    ) -> Result<TemperResult, SaError> {
        let span = rec.span("temper.run");
        let exchange_every = exchange_every.max(1);
        // Replicas never checkpoint themselves — the ensemble does.
        // Each gets the shared stream under its own `r{k}.` label so
        // one JSONL file carries the whole ensemble.
        let mut sub_ctl = RunCtl {
            ckpt_path: None,
            every: 0,
            watch: ctl.watch.clone(),
            window_secs: ctl.window_secs,
            stop_after: ctl.stop_after,
            stream: None,
            stream_label: None,
        };
        loop {
            let boundary = ((self.next_round + 1) * exchange_every).min(cfg.iters);
            let mut stalled = None;
            for (k, rep) in self.replicas.iter_mut().enumerate() {
                let c = replica_cfg(cfg, ladder, k);
                sub_ctl.stream = ctl.stream.clone();
                sub_ctl.stream_label = Some(k as u32);
                if let Err(e) = rep.run_range(kind, &c, &sub_ctl, boundary) {
                    stalled = Some(e);
                    break;
                }
            }
            if let Some(e) = stalled {
                // Force-checkpoint the whole ensemble (mid-round cuts
                // are fine: every replica payload has its own cursor).
                let checkpoint = match &ctl.ckpt_path {
                    Some(p) => {
                        self.save_ckpt(kind, cfg, ladder, p)?;
                        Some(p.clone())
                    }
                    None => None,
                };
                return Err(match e {
                    SaError::Stalled {
                        window_secs, iter, ..
                    } => SaError::Stalled {
                        window_secs,
                        iter,
                        checkpoint,
                    },
                    other => other,
                });
            }
            if boundary >= cfg.iters {
                break;
            }
            self.exchange(self.next_round);
            self.next_round += 1;
            // Exchange stats change only here, so a round boundary is
            // the one spot live gauges can go stale — refresh them.
            self.publish_gauges(rec);
            if let Some(path) = &ctl.ckpt_path {
                if ctl.every > 0 && self.next_round.is_multiple_of(ctl.every) {
                    self.save_ckpt(kind, cfg, ladder, path)
                        .map_err(SaError::Ckpt)?;
                }
            }
        }
        // Final save before the replicas are consumed.
        if let Some(path) = &ctl.ckpt_path {
            if ctl.every > 0 {
                self.save_ckpt(kind, cfg, ladder, path)
                    .map_err(SaError::Ckpt)?;
            }
        }
        self.publish_gauges(rec);
        let mut results = Vec::with_capacity(self.replicas.len());
        for (k, rep) in self.replicas.into_iter().enumerate() {
            let c = replica_cfg(cfg, ladder, k);
            let finish_ctl = RunCtl {
                stream: ctl.stream.clone(),
                stream_label: Some(k as u32),
                ..RunCtl::default()
            };
            results.push(rep.finish(kind, &c, &finish_ctl)?);
        }
        let best = results
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.metrics.haspl.total_cmp(&b.metrics.haspl))
            .map(|(i, _)| i)
            .unwrap_or(0);
        if rec.is_enabled() {
            rec.incr("temper.exchanges_attempted", self.attempted);
            rec.incr("temper.exchanges_accepted", self.accepted);
        }
        drop(span);
        Ok(TemperResult {
            results,
            best,
            exchanges: ExchangeStats {
                attempted: self.attempted,
                accepted: self.accepted,
            },
        })
    }
}

/// Builder-style entry point for a parallel-tempering run, consistent
/// with [`crate::anneal::Anneal`].
///
/// ```
/// use orp_core::temper::{geometric_ladder, Temper};
/// use orp_core::anneal::{MoveKind, SaConfig};
/// use orp_core::construct::random_general;
///
/// let start = random_general(64, 16, 8, 1).unwrap();
/// let res = Temper::builder(start)
///     .kind(MoveKind::TwoNeighborSwing)
///     .config(SaConfig::builder().iters(200).seed(1).build())
///     .ladder(geometric_ladder(0.02, 1e-4, 3))
///     .exchange_every(50)
///     .run()
///     .unwrap();
/// assert_eq!(res.results.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Temper {
    start: HostSwitchGraph,
    kind: MoveKind,
    cfg: SaConfig,
    ladder: Vec<f64>,
    exchange_every: usize,
    rec: Recorder,
    ckpt: Option<PathBuf>,
    every_rounds: usize,
    resume: Option<PathBuf>,
    watchdog: Option<std::time::Duration>,
    watch_worker: u32,
    stream: Option<StreamSink>,
}

impl Temper {
    /// Starts a builder tempering `start` with the defaults: the
    /// 2-neighbor swing neighbourhood, a 4-rung geometric ladder from
    /// `cfg.t0` down to `cfg.t_end`, an exchange every 1000 iterations.
    pub fn builder(start: HostSwitchGraph) -> Self {
        Self {
            start,
            kind: MoveKind::TwoNeighborSwing,
            cfg: SaConfig::default(),
            ladder: Vec::new(),
            exchange_every: 1000,
            rec: Recorder::disabled(),
            ckpt: None,
            every_rounds: 1,
            resume: None,
            watchdog: None,
            watch_worker: 0,
            stream: None,
        }
    }

    /// Which neighbourhood each replica explores.
    pub fn kind(mut self, kind: MoveKind) -> Self {
        self.kind = kind;
        self
    }

    /// Shared schedule knobs. `t0`/`t_end` only seed the default ladder
    /// (see [`Temper::ladder`]); replica `k` runs at the constant
    /// temperature of its current rung.
    pub fn config(mut self, cfg: SaConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Explicit temperature ladder; one replica per rung. Every rung
    /// must be finite and strictly positive. When unset, a 4-rung
    /// [`geometric_ladder`] from `cfg.t0` to `cfg.t_end` is used.
    pub fn ladder(mut self, ladder: Vec<f64>) -> Self {
        self.ladder = ladder;
        self
    }

    /// Iterations between exchange attempts (minimum 1).
    pub fn exchange_every(mut self, every: usize) -> Self {
        self.exchange_every = every;
        self
    }

    /// Attaches a telemetry recorder.
    pub fn recorder(mut self, rec: Recorder) -> Self {
        self.rec = rec;
        self
    }

    /// Enables crash-safe ensemble checkpointing to `path` (kind
    /// [`ckpt::KIND_TEMPER`]), saved at round boundaries.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.ckpt = Some(path.into());
        self
    }

    /// Checkpoint stride in *rounds* (default 1; 0 disables periodic
    /// saves while keeping stall force-checkpoints).
    pub fn checkpoint_every_rounds(mut self, rounds: usize) -> Self {
        self.every_rounds = rounds;
        self
    }

    /// Resumes from an ensemble checkpoint previously written by this
    /// builder (the starting graph is ignored). The config and ladder
    /// must match bitwise; `eval_workers`/`parallel_eval`/`search` may
    /// differ (pure wall-clock/memory knobs).
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume = Some(path.into());
        self
    }

    /// Arms a stall watchdog over the whole ensemble: if no replica
    /// iteration completes within `window`, the run force-checkpoints
    /// (when a path is set) and returns [`SaError::Stalled`].
    pub fn watchdog(mut self, window: std::time::Duration) -> Self {
        self.watchdog = Some(window);
        self
    }

    /// Labels watchdog diagnostics with a worker index (multi-restart
    /// solves tag each restart).
    pub fn watchdog_label(mut self, worker: u32) -> Self {
        self.watch_worker = worker;
        self
    }

    /// Attaches a live metrics stream shared by the whole ensemble:
    /// replica `k` publishes its gauges under the `r{k}.` prefix and
    /// exchange statistics refresh at every round boundary. No-op
    /// unless a recorder is also attached.
    pub fn stream(mut self, sink: StreamSink) -> Self {
        self.stream = Some(sink);
        self
    }

    fn effective_ladder(&self) -> Result<Vec<f64>, SaError> {
        let ladder = if self.ladder.is_empty() {
            geometric_ladder(self.cfg.t0, self.cfg.t_end.max(1e-12), 4)
        } else {
            self.ladder.clone()
        };
        if !ladder.iter().all(|t| t.is_finite() && *t > 0.0) {
            return Err(SaError::Ckpt(CkptError::BadSection(
                "temperature ladder must be finite and strictly positive".into(),
            )));
        }
        Ok(ladder)
    }

    /// Runs the ensemble (resuming first if configured).
    pub fn run(self) -> Result<TemperResult, SaError> {
        let ladder = self.effective_ladder()?;
        let run = match &self.resume {
            Some(p) => {
                let payload = ckpt::read_checkpoint(p, ckpt::KIND_TEMPER)?;
                TemperRun::from_ckpt(&payload, self.kind, &self.cfg, &ladder, &self.rec)?
            }
            None => TemperRun::new(&self.start, self.kind, &self.cfg, &ladder, &self.rec)?,
        };
        let wd = self.watchdog.map(|window| {
            Watchdog::spawn(
                WatchdogConfig::new(window)
                    .source(WatchSource::Anneal)
                    .worker(self.watch_worker),
                self.rec.clone(),
            )
        });
        let ctl = RunCtl {
            ckpt_path: self.ckpt.clone(),
            every: self.every_rounds,
            watch: wd.as_ref().map(Watchdog::handle),
            window_secs: self.watchdog.map_or(0.0, |w| w.as_secs_f64()),
            stop_after: None,
            stream: self.stream.clone(),
            stream_label: None,
        };
        run.run(
            self.kind,
            &self.cfg,
            &ladder,
            self.exchange_every,
            &ctl,
            &self.rec,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::random_general;
    use crate::metrics::path_metrics;

    fn small_cfg(iters: usize) -> SaConfig {
        SaConfig {
            iters,
            t0: 0.02,
            t_end: 1e-4,
            seed: 7,
            ..SaConfig::default()
        }
    }

    #[test]
    fn geometric_ladder_spans_hot_to_cold() {
        let l = geometric_ladder(0.1, 1e-4, 4);
        assert_eq!(l.len(), 4);
        assert!((l[0] - 0.1).abs() < 1e-15);
        assert!((l[3] - 1e-4).abs() < 1e-12);
        for w in l.windows(2) {
            assert!(w[1] < w[0]);
        }
        assert_eq!(geometric_ladder(0.1, 1e-4, 1), vec![0.1]);
    }

    #[test]
    fn tempering_improves_and_is_reproducible() {
        let start = random_general(64, 16, 8, 7).unwrap();
        let before = path_metrics(&start).unwrap();
        let run = |_| {
            Temper::builder(start.clone())
                .config(small_cfg(400))
                .ladder(geometric_ladder(0.02, 1e-4, 3))
                .exchange_every(50)
                .run()
                .unwrap()
        };
        let a = run(());
        let b = run(());
        assert_eq!(a.results.len(), 3);
        assert!(a.best_result().metrics.haspl <= before.haspl);
        a.best_result().graph.validate().unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.exchanges, b.exchanges);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.graph, y.graph);
            assert_eq!(x.metrics, y.metrics);
            assert_eq!(x.accepted, y.accepted);
        }
    }

    #[test]
    fn exchanges_actually_happen() {
        let start = random_general(64, 16, 8, 3).unwrap();
        let res = Temper::builder(start)
            .config(small_cfg(600))
            // A tight ladder keeps neighbouring acceptance rates close,
            // so swaps are frequent.
            .ladder(vec![0.02, 0.018, 0.016])
            .exchange_every(25)
            .run()
            .unwrap();
        assert!(res.exchanges.attempted >= 20);
        assert!(res.exchanges.accepted > 0);
        assert!(res.exchanges.accepted <= res.exchanges.attempted);
    }

    #[test]
    fn single_rung_matches_constant_temperature_anneal() {
        // K = 1 degenerates to a plain constant-temperature annealing
        // run with the same derived seed — bit-identical.
        let start = random_general(48, 12, 8, 5).unwrap();
        let cfg = small_cfg(300);
        let t = 0.01;
        let temper = Temper::builder(start.clone())
            .config(cfg.clone())
            .ladder(vec![t])
            .exchange_every(50)
            .run()
            .unwrap();
        let plain = crate::anneal::anneal(
            start,
            MoveKind::TwoNeighborSwing,
            &SaConfig {
                t0: t,
                t_end: t,
                ..cfg
            },
        )
        .unwrap();
        assert_eq!(temper.results.len(), 1);
        assert_eq!(temper.exchanges.attempted, 0);
        assert_eq!(temper.results[0].graph, plain.graph);
        assert_eq!(temper.results[0].metrics, plain.metrics);
        assert_eq!(temper.results[0].accepted, plain.accepted);
    }

    #[test]
    fn worker_count_does_not_change_tempering() {
        let start = random_general(64, 16, 8, 9).unwrap();
        let run = |workers| {
            Temper::builder(start.clone())
                .config(SaConfig {
                    eval_workers: Some(workers),
                    ..small_cfg(300)
                })
                .ladder(geometric_ladder(0.02, 1e-3, 3))
                .exchange_every(40)
                .run()
                .unwrap()
        };
        let a = run(1);
        let b = run(3);
        assert_eq!(a.best, b.best);
        assert_eq!(a.exchanges, b.exchanges);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.graph, y.graph);
            assert_eq!(x.metrics, y.metrics);
        }
    }

    #[test]
    fn rejects_bad_ladders() {
        let start = random_general(48, 12, 8, 1).unwrap();
        for ladder in [vec![0.0, 0.1], vec![-0.1], vec![f64::NAN]] {
            let err = Temper::builder(start.clone())
                .config(small_cfg(50))
                .ladder(ladder)
                .run()
                .unwrap_err();
            assert!(matches!(err, SaError::Ckpt(CkptError::BadSection(_))));
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("orp_temper_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The tempering resume invariant: a run cut at *any* iteration —
    /// including mid-round, with replicas at mixed cursors — and resumed
    /// from its forced ensemble checkpoint finishes bit-identical to the
    /// uninterrupted run.
    #[test]
    fn interrupted_tempering_resumes_bit_identically() {
        let dir = temp_dir("resume");
        let path = dir.join("run.ckpt");
        let cfg = small_cfg(300);
        let ladder = geometric_ladder(0.02, 1e-3, 3);
        let start = random_general(48, 12, 8, cfg.seed).unwrap();
        let reference = Temper::builder(start.clone())
            .config(cfg.clone())
            .ladder(ladder.clone())
            .exchange_every(50)
            .run()
            .unwrap();
        // Cut mid-round (73) and at a round boundary (100).
        for cut in [73usize, 100, 151] {
            let run = TemperRun::new(
                &start,
                MoveKind::TwoNeighborSwing,
                &cfg,
                &ladder,
                &Recorder::disabled(),
            )
            .unwrap();
            let ctl = RunCtl {
                ckpt_path: Some(path.clone()),
                every: 1,
                stop_after: Some(cut),
                ..Default::default()
            };
            let err = run
                .run(
                    MoveKind::TwoNeighborSwing,
                    &cfg,
                    &ladder,
                    50,
                    &ctl,
                    &Recorder::disabled(),
                )
                .unwrap_err();
            assert!(matches!(err, SaError::Stalled { iter, .. } if iter == cut as u64));
            let resumed = Temper::builder(start.clone())
                .config(cfg.clone())
                .ladder(ladder.clone())
                .exchange_every(50)
                .resume_from(&path)
                .run()
                .unwrap();
            assert_eq!(resumed.best, reference.best, "cut at {cut}");
            assert_eq!(resumed.exchanges, reference.exchanges, "cut at {cut}");
            for (x, y) in resumed.results.iter().zip(&reference.results) {
                assert_eq!(x.graph, y.graph, "cut at {cut}");
                assert_eq!(
                    x.metrics.haspl.to_bits(),
                    y.metrics.haspl.to_bits(),
                    "cut at {cut}"
                );
                assert_eq!(x.accepted, y.accepted, "cut at {cut}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_mismatched_ladder_and_config() {
        let dir = temp_dir("reject");
        let path = dir.join("run.ckpt");
        let cfg = small_cfg(200);
        let ladder = geometric_ladder(0.02, 1e-3, 3);
        let start = random_general(48, 12, 8, cfg.seed).unwrap();
        let run = TemperRun::new(
            &start,
            MoveKind::TwoNeighborSwing,
            &cfg,
            &ladder,
            &Recorder::disabled(),
        )
        .unwrap();
        let ctl = RunCtl {
            ckpt_path: Some(path.clone()),
            every: 1,
            stop_after: Some(100),
            ..Default::default()
        };
        run.run(
            MoveKind::TwoNeighborSwing,
            &cfg,
            &ladder,
            50,
            &ctl,
            &Recorder::disabled(),
        )
        .unwrap_err();
        // Different ladder.
        let err = Temper::builder(start.clone())
            .config(cfg.clone())
            .ladder(geometric_ladder(0.02, 1e-3, 4))
            .resume_from(&path)
            .run()
            .unwrap_err();
        assert!(matches!(err, SaError::Ckpt(CkptError::BadSection(_))));
        // Different seed.
        let err = Temper::builder(start)
            .config(SaConfig {
                seed: cfg.seed + 1,
                ..cfg
            })
            .ladder(ladder)
            .resume_from(&path)
            .run()
            .unwrap_err();
        assert!(matches!(err, SaError::Ckpt(CkptError::BadSection(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
