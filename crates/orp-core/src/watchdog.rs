//! Stall watchdog: a monitor thread that turns a silent hang into a
//! structured, resumable failure.
//!
//! Long annealing runs and simulations can stop making progress — a
//! livelocked sampler, a wedged worker, a pathological instance — and
//! without supervision they hang forever, losing all work. A
//! [`Watchdog`] watches a shared progress counter that the supervised
//! loop bumps on every unit of work (accepted/proposed move, processed
//! event). If the counter does not move within the configured
//! wall-clock window, the monitor:
//!
//! 1. emits a structured `watchdog.stalled` diagnostic through
//!    `orp-obs` (source, worker index, window, last progress count),
//! 2. raises a `stalled` flag that the supervised loop observes at its
//!    next iteration boundary, force-checkpoints, and converts into a
//!    resumable `SaError::Stalled` / simulator equivalent.
//!
//! The watchdog never kills anything itself — the supervised loop stays
//! in control of its own state so the force-checkpoint is taken at a
//! clean boundary. For loops that may be *truly* wedged (not reaching
//! a boundary at all), [`WatchdogConfig::hard_exit`] additionally
//! aborts the process after a second full window with a diagnostic on
//! stderr; the CLI opts into this, library callers do not.

use orp_obs::{Event, Recorder};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// What kind of loop a watchdog supervises; used as the `source` field
/// of the emitted `watchdog.stalled` event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchSource {
    /// A single annealer's proposal loop.
    Anneal,
    /// An event-driven simulator's main loop.
    Sim,
    /// One restart worker of a multi-restart solve.
    Restart,
}

impl WatchSource {
    fn code(self) -> u32 {
        match self {
            Self::Anneal => 0,
            Self::Sim => 1,
            Self::Restart => 2,
        }
    }
}

/// Configuration for a [`Watchdog`].
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// No-progress window after which the run is declared stalled.
    pub window: Duration,
    /// What the watchdog supervises (for the diagnostic event).
    pub source: WatchSource,
    /// Worker / restart index (0 for single-worker runs).
    pub worker: u32,
    /// If true, abort the whole process after a *second* full window
    /// elapses with the stall flag raised but unacknowledged — the
    /// supervised loop never reached an iteration boundary and is
    /// truly wedged. Off by default; the CLI enables it.
    pub hard_exit: bool,
}

impl WatchdogConfig {
    /// Watchdog over an annealer with the given window.
    pub fn new(window: Duration) -> Self {
        Self {
            window,
            source: WatchSource::Anneal,
            worker: 0,
            hard_exit: false,
        }
    }

    /// Sets the supervised source kind.
    pub fn source(mut self, source: WatchSource) -> Self {
        self.source = source;
        self
    }

    /// Sets the worker / restart index.
    pub fn worker(mut self, worker: u32) -> Self {
        self.worker = worker;
        self
    }

    /// Enables process abort for truly-wedged loops (see struct docs).
    pub fn hard_exit(mut self, yes: bool) -> Self {
        self.hard_exit = yes;
        self
    }
}

#[derive(Debug)]
struct Shared {
    /// Monotonic units-of-work counter, bumped by the supervised loop.
    progress: AtomicU64,
    /// Set by the monitor when the window elapses without progress.
    stalled: AtomicBool,
    /// Set when the supervised loop observed `stalled` (suppresses
    /// `hard_exit` — the loop is shutting down cleanly).
    acknowledged: AtomicBool,
    /// Set by [`Watchdog::drop`] to retire the monitor thread.
    shutdown: AtomicBool,
}

/// Cheaply cloneable handle the supervised loop uses to report
/// progress and poll for a stall verdict.
#[derive(Debug, Clone)]
pub struct ProgressHandle {
    shared: Arc<Shared>,
}

impl ProgressHandle {
    /// Reports one unit of work (an iteration, a processed event).
    /// Relaxed atomics: ordering does not matter, only eventual
    /// visibility within the window.
    #[inline]
    pub fn tick(&self) {
        self.shared.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// Reports `n` units of work at once (batch loops).
    #[inline]
    pub fn tick_by(&self, n: u64) {
        self.shared.progress.fetch_add(n, Ordering::Relaxed);
    }

    /// True once the monitor has declared the run stalled. The
    /// supervised loop checks this at iteration boundaries; on `true`
    /// it should force-checkpoint and return a resumable error.
    #[inline]
    pub fn is_stalled(&self) -> bool {
        self.shared.stalled.load(Ordering::Relaxed)
    }

    /// Acknowledges a stall verdict: the loop saw the flag and is
    /// shutting down cleanly, so a `hard_exit` watchdog must not abort
    /// the process out from under the checkpoint write.
    pub fn acknowledge_stall(&self) {
        self.shared.acknowledged.store(true, Ordering::Relaxed);
    }

    /// Total progress units reported so far.
    pub fn progress(&self) -> u64 {
        self.shared.progress.load(Ordering::Relaxed)
    }
}

/// A spawned stall monitor. Dropping it retires the monitor thread
/// (joining it), so the supervised scope cannot leak threads.
#[derive(Debug)]
pub struct Watchdog {
    shared: Arc<Shared>,
    monitor: Option<thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns the monitor thread. `rec` receives the structured
    /// `watchdog.stalled` event if a stall is detected (pass a
    /// disabled recorder to skip telemetry).
    pub fn spawn(cfg: WatchdogConfig, rec: Recorder) -> Self {
        let shared = Arc::new(Shared {
            progress: AtomicU64::new(0),
            stalled: AtomicBool::new(false),
            acknowledged: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });
        let s = Arc::clone(&shared);
        let monitor = thread::Builder::new()
            .name("orp-watchdog".into())
            .spawn(move || monitor_loop(&s, &cfg, &rec))
            .expect("spawn watchdog monitor thread");
        Self {
            shared,
            monitor: Some(monitor),
        }
    }

    /// Handle for the supervised loop.
    pub fn handle(&self) -> ProgressHandle {
        ProgressHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// True once the monitor has declared the run stalled.
    pub fn is_stalled(&self) -> bool {
        self.shared.stalled.load(Ordering::Relaxed)
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
    }
}

fn monitor_loop(shared: &Shared, cfg: &WatchdogConfig, rec: &Recorder) {
    // Poll at a quarter of the window so detection latency is at most
    // 1.25 windows, without burning CPU on a hot spin. The upper clamp
    // bounds how long Drop can block on a shutdown join.
    let poll = (cfg.window / 4).clamp(Duration::from_millis(5), Duration::from_millis(200));
    let mut last_seen = shared.progress.load(Ordering::Relaxed);
    let mut last_change = Instant::now();
    loop {
        thread::sleep(poll);
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let now_progress = shared.progress.load(Ordering::Relaxed);
        // Heartbeat gauge for the live stream: when the monitor last
        // looked (recorder-relative µs) and the progress count it saw.
        // Last-write-wins, so `orp watch` flags a silent stream by
        // comparing the heartbeat stamp against the batch clock.
        if rec.is_enabled() {
            rec.gauge("watchdog.heartbeat_us", rec.elapsed_us() as f64);
            rec.gauge("watchdog.progress", now_progress as f64);
        }
        if now_progress != last_seen {
            last_seen = now_progress;
            last_change = Instant::now();
            continue;
        }
        if last_change.elapsed() < cfg.window {
            continue;
        }
        // Stall: raise the flag (once) and emit the diagnostic.
        if !shared.stalled.swap(true, Ordering::Relaxed) {
            rec.emit(Event::Stalled {
                source: cfg.source.code(),
                worker: cfg.worker,
                window_secs: cfg.window.as_secs_f64(),
                progress: now_progress,
            });
            rec.incr("watchdog.stalls", 1);
        }
        if !cfg.hard_exit {
            return; // verdict delivered; loop will see it at its boundary
        }
        // hard_exit mode: give the loop one more full window to reach a
        // boundary and acknowledge; otherwise the process is wedged.
        let verdict_at = Instant::now();
        while verdict_at.elapsed() < cfg.window {
            thread::sleep(poll);
            if shared.shutdown.load(Ordering::Relaxed)
                || shared.acknowledged.load(Ordering::Relaxed)
            {
                return;
            }
            if shared.progress.load(Ordering::Relaxed) != last_seen {
                // It woke up after all; unusual, but not wedged.
                return;
            }
        }
        eprintln!(
            "orp watchdog: {:?} worker {} made no progress for {:.1} s and did not \
             acknowledge the stall verdict; aborting",
            cfg.source,
            cfg.worker,
            (2 * cfg.window).as_secs_f64(),
        );
        std::process::exit(86);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_loop_is_declared_stalled() {
        let wd = Watchdog::spawn(
            WatchdogConfig::new(Duration::from_millis(40)),
            Recorder::disabled(),
        );
        let h = wd.handle();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !h.is_stalled() {
            assert!(Instant::now() < deadline, "watchdog never fired");
            thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn ticking_loop_is_not_stalled() {
        let wd = Watchdog::spawn(
            WatchdogConfig::new(Duration::from_millis(60)),
            Recorder::disabled(),
        );
        let h = wd.handle();
        for _ in 0..30 {
            h.tick();
            thread::sleep(Duration::from_millis(10));
        }
        assert!(!h.is_stalled());
        assert_eq!(h.progress(), 30);
    }

    #[test]
    fn stall_event_reaches_the_recorder() {
        let rec = Recorder::enabled();
        let wd = Watchdog::spawn(
            WatchdogConfig::new(Duration::from_millis(30))
                .source(WatchSource::Sim)
                .worker(3),
            rec.clone(),
        );
        let h = wd.handle();
        h.tick_by(17);
        let deadline = Instant::now() + Duration::from_secs(5);
        while !h.is_stalled() {
            assert!(Instant::now() < deadline, "watchdog never fired");
            thread::sleep(Duration::from_millis(5));
        }
        drop(wd);
        let snap = rec.snapshot().expect("enabled recorder snapshots");
        let ev = snap
            .events
            .iter()
            .find(|e| e.event.name() == "watchdog.stalled")
            .expect("stalled event recorded");
        let args = ev.event.args();
        assert!(args.contains(&("source", 1.0)));
        assert!(args.contains(&("worker", 3.0)));
        assert!(args.contains(&("progress", 17.0)));
    }

    #[test]
    fn drop_retires_the_monitor_quickly() {
        let wd = Watchdog::spawn(
            WatchdogConfig::new(Duration::from_secs(3600)),
            Recorder::disabled(),
        );
        let t = Instant::now();
        drop(wd); // must not wait out the hour-long window
        assert!(t.elapsed() < Duration::from_secs(5));
    }
}
