//! Textual serialization of host-switch graphs.
//!
//! The format is line-oriented and diff-friendly, in the spirit of the
//! Graph Golf edge-list files:
//!
//! ```text
//! orp-hsg 1
//! n 16
//! m 4
//! r 6
//! h 0 0        # host 0 attached to switch 0
//! ...
//! e 0 1        # switch link {0,1}
//! ```
//!
//! Comments (`#` to end of line) and blank lines are ignored on input.

use crate::error::ParseError;
use crate::graph::HostSwitchGraph;
use std::fmt::Write as _;

/// Serializes a graph to the textual format.
pub fn to_string(g: &HostSwitchGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "orp-hsg 1");
    let _ = writeln!(out, "n {}", g.num_hosts());
    let _ = writeln!(out, "m {}", g.num_switches());
    let _ = writeln!(out, "r {}", g.radix());
    for h in 0..g.num_hosts() {
        let _ = writeln!(out, "h {h} {}", g.switch_of(h));
    }
    let mut links: Vec<_> = g.links().collect();
    links.sort_unstable();
    for (a, b) in links {
        let _ = writeln!(out, "e {a} {b}");
    }
    out
}

/// Parses the textual format produced by [`to_string`].
pub fn from_str(text: &str) -> Result<HostSwitchGraph, ParseError> {
    let mut n: Option<u32> = None;
    let mut m: Option<u32> = None;
    let mut r: Option<u32> = None;
    let mut hosts: Vec<(u32, u32)> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut saw_magic = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let bad = || ParseError::BadLine {
            line_no,
            content: raw.to_string(),
        };
        let mut it = line.split_whitespace();
        let tag = it.next().ok_or_else(bad)?;
        if !saw_magic {
            if tag != "orp-hsg" || it.next() != Some("1") {
                return Err(ParseError::BadHeader(raw.to_string()));
            }
            saw_magic = true;
            continue;
        }
        let mut num =
            || -> Result<u32, ParseError> { it.next().ok_or_else(bad)?.parse().map_err(|_| bad()) };
        match tag {
            "n" => n = Some(num()?),
            "m" => m = Some(num()?),
            "r" => r = Some(num()?),
            "h" => {
                let h = num()?;
                let s = num()?;
                hosts.push((h, s));
            }
            "e" => {
                let a = num()?;
                let b = num()?;
                edges.push((a, b));
            }
            _ => return Err(bad()),
        }
    }
    if !saw_magic {
        return Err(ParseError::BadHeader("<empty input>".into()));
    }
    let (Some(n), Some(m), Some(r)) = (n, m, r) else {
        return Err(ParseError::BadHeader("missing n/m/r declaration".into()));
    };
    let mut g = HostSwitchGraph::new(m, r)?;
    for (a, b) in edges {
        g.add_link(a, b)?;
    }
    // hosts must be attached in id order to reproduce identical ids
    hosts.sort_unstable();
    for (expect, &(h, s)) in hosts.iter().enumerate() {
        if h as usize != expect {
            return Err(ParseError::BadHeader(format!(
                "host ids must be contiguous from 0; saw {h} at position {expect}"
            )));
        }
        g.attach_host(s)?;
    }
    if g.num_hosts() != n {
        return Err(ParseError::BadHeader(format!(
            "declared n = {n} but {} host lines present",
            g.num_hosts()
        )));
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::random_general;

    #[test]
    fn roundtrip_preserves_graph() {
        let mut g = random_general(64, 16, 10, 5).unwrap();
        let text = to_string(&g);
        let mut g2 = from_str(&text).unwrap();
        // adjacency-list order is not part of the format; compare canonical
        g.canonicalize();
        g2.canonicalize();
        assert_eq!(g, g2);
        assert_eq!(text, to_string(&g2));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "orp-hsg 1\n\n# a comment\nn 2\nm 1\nr 4\nh 0 0 # host zero\nh 1 0\n";
        let g = from_str(text).unwrap();
        assert_eq!(g.num_hosts(), 2);
        assert_eq!(g.num_switches(), 1);
    }

    #[test]
    fn missing_header_is_rejected() {
        assert!(matches!(
            from_str("n 2\nm 1\nr 4\n"),
            Err(ParseError::BadHeader(_))
        ));
        assert!(matches!(from_str(""), Err(ParseError::BadHeader(_))));
        assert!(matches!(
            from_str("orp-hsg 2\n"),
            Err(ParseError::BadHeader(_))
        ));
    }

    #[test]
    fn malformed_lines_are_located() {
        let text = "orp-hsg 1\nn 2\nm 1\nr 4\nh zero 0\n";
        match from_str(text) {
            Err(ParseError::BadLine { line_no, .. }) => assert_eq!(line_no, 5),
            other => panic!("expected BadLine, got {other:?}"),
        }
    }

    #[test]
    fn invalid_graphs_are_rejected() {
        // duplicate edge
        let text = "orp-hsg 1\nn 0\nm 2\nr 4\ne 0 1\ne 1 0\n";
        assert!(matches!(from_str(text), Err(ParseError::Graph(_))));
        // radix overflow
        let text = "orp-hsg 1\nn 4\nm 1\nr 3\nh 0 0\nh 1 0\nh 2 0\nh 3 0\n";
        assert!(matches!(from_str(text), Err(ParseError::Graph(_))));
    }

    #[test]
    fn host_count_mismatch_detected() {
        let text = "orp-hsg 1\nn 3\nm 1\nr 4\nh 0 0\nh 1 0\n";
        assert!(from_str(text).is_err());
        let text = "orp-hsg 1\nn 2\nm 1\nr 4\nh 0 0\nh 2 0\n";
        assert!(from_str(text).is_err());
    }
}
