//! Error types shared across the crate.

use crate::ckpt::CkptError;
use std::fmt;
use std::path::PathBuf;

/// Errors arising from constructing or mutating a [`crate::HostSwitchGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A switch id was out of range.
    SwitchOutOfRange {
        /// Offending switch id.
        switch: u32,
        /// Number of switches `m` in the graph.
        num_switches: u32,
    },
    /// A host id was out of range.
    HostOutOfRange {
        /// Offending host id.
        host: u32,
        /// Number of hosts `n` in the graph.
        num_hosts: u32,
    },
    /// Adding the edge/host would exceed the switch radix.
    RadixExceeded {
        /// Switch whose ports ran out.
        switch: u32,
        /// The radix `r`.
        radix: u32,
    },
    /// Self loops on switches are not allowed.
    SelfLoop {
        /// The switch both endpoints referred to.
        switch: u32,
    },
    /// The switch pair is already connected (multi-edges not allowed).
    DuplicateEdge {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
    },
    /// The requested edge does not exist.
    MissingEdge {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
    },
    /// The host is not attached to the given switch.
    HostNotOnSwitch {
        /// The host in question.
        host: u32,
        /// The switch it was expected on.
        switch: u32,
    },
    /// The switch has no hosts to detach.
    NoHostToDetach {
        /// The empty switch.
        switch: u32,
    },
    /// Parameters do not satisfy a required constraint.
    InvalidParameters(String),
    /// The graph is not connected (some host pair is unreachable).
    Disconnected,
    /// Randomized construction failed to produce a valid graph.
    ConstructionFailed(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SwitchOutOfRange {
                switch,
                num_switches,
            } => {
                write!(f, "switch {switch} out of range (m = {num_switches})")
            }
            Self::HostOutOfRange { host, num_hosts } => {
                write!(f, "host {host} out of range (n = {num_hosts})")
            }
            Self::RadixExceeded { switch, radix } => {
                write!(f, "switch {switch} has no free port (radix {radix})")
            }
            Self::SelfLoop { switch } => write!(f, "self loop on switch {switch}"),
            Self::DuplicateEdge { a, b } => write!(f, "edge {{{a},{b}}} already exists"),
            Self::MissingEdge { a, b } => write!(f, "edge {{{a},{b}}} does not exist"),
            Self::HostNotOnSwitch { host, switch } => {
                write!(f, "host {host} is not attached to switch {switch}")
            }
            Self::NoHostToDetach { switch } => {
                write!(f, "switch {switch} has no attached host")
            }
            Self::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            Self::Disconnected => write!(f, "graph is not connected"),
            Self::ConstructionFailed(msg) => write!(f, "construction failed: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Diagnostic record for one crashed restart worker of
/// [`crate::anneal::solve_orp_multi`]: which restart it was, the seed
/// it ran with (for offline reproduction), and the panic payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Restart index (0-based).
    pub restart: usize,
    /// The derived seed that restart annealed with.
    pub seed: u64,
    /// The panic message, or a placeholder for non-string payloads.
    pub message: String,
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "restart {} (seed {}) panicked: {}",
            self.restart, self.seed, self.message
        )
    }
}

/// Errors from running the simulated-annealing search.
///
/// Wraps [`GraphError`] (the historical failure mode — e.g. a
/// disconnected start graph) and adds the robustness layer's structured
/// failures: broken move invariants, checkpoint I/O, watchdog stalls,
/// and restart-worker panics. `Clone + PartialEq` so results containing
/// it stay comparable in tests and the facade error.
#[derive(Debug, Clone, PartialEq)]
pub enum SaError {
    /// The underlying graph/search operation failed.
    Graph(GraphError),
    /// A sampled move failed to apply — an internal invariant of the
    /// sampler/search-state pair broke. Formerly a panic; now carries
    /// enough context to diagnose the break from the error alone.
    InvariantBroken {
        /// Which move application broke (e.g. `"swap"`, `"swing"`).
        what: &'static str,
        /// Iteration at which it broke.
        iter: u64,
        /// The graph-level error the application returned.
        source: GraphError,
    },
    /// Checkpoint save/load failed or the file was invalid.
    Ckpt(CkptError),
    /// The watchdog saw no progress within its window,
    /// force-checkpointed (if a checkpoint path was configured), and
    /// aborted the run resumably instead of hanging forever.
    Stalled {
        /// The watchdog window in wall-clock seconds.
        window_secs: f64,
        /// Iteration the run had reached when the stall was detected.
        iter: u64,
        /// Where the force-checkpoint was written, if anywhere.
        checkpoint: Option<PathBuf>,
    },
    /// Every restart worker of a multi-restart solve panicked, so there
    /// is no surviving result to return. Partial crashes (some workers
    /// survive) do **not** produce this — see
    /// [`crate::anneal::MultiReport`].
    AllWorkersPanicked(
        /// One record per crashed worker.
        Vec<WorkerPanic>,
    ),
}

impl fmt::Display for SaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Graph(e) => write!(f, "{e}"),
            Self::InvariantBroken { what, iter, source } => write!(
                f,
                "internal invariant broken at iteration {iter}: sampled {what} failed to \
                 apply: {source}"
            ),
            Self::Ckpt(e) => write!(f, "{e}"),
            Self::Stalled {
                window_secs,
                iter,
                checkpoint,
            } => {
                write!(
                    f,
                    "no progress for {window_secs} s (stalled at iteration {iter})"
                )?;
                match checkpoint {
                    Some(p) => write!(
                        f,
                        "; state checkpointed to {} — resume from it",
                        p.display()
                    ),
                    None => write!(f, "; no checkpoint path configured"),
                }
            }
            Self::AllWorkersPanicked(panics) => {
                write!(f, "all {} restart workers panicked", panics.len())?;
                if let Some(first) = panics.first() {
                    write!(f, " (first: {first})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Graph(e) | Self::InvariantBroken { source: e, .. } => Some(e),
            Self::Ckpt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for SaError {
    fn from(e: GraphError) -> Self {
        Self::Graph(e)
    }
}

impl From<CkptError> for SaError {
    fn from(e: CkptError) -> Self {
        Self::Ckpt(e)
    }
}

/// Errors from parsing the textual graph format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The header line was malformed or missing.
    BadHeader(String),
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line_no: usize,
        /// The raw line.
        content: String,
    },
    /// The parsed graph violates an invariant.
    Graph(GraphError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadHeader(h) => write!(f, "bad header: {h}"),
            Self::BadLine { line_no, content } => {
                write!(f, "cannot parse line {line_no}: {content:?}")
            }
            Self::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ParseError {
    fn from(e: GraphError) -> Self {
        Self::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_ids() {
        let e = GraphError::SwitchOutOfRange {
            switch: 7,
            num_switches: 4,
        };
        assert!(e.to_string().contains('7'));
        let e = GraphError::DuplicateEdge { a: 1, b: 2 };
        assert!(e.to_string().contains("{1,2}"));
    }

    #[test]
    fn parse_error_wraps_graph_error() {
        let pe: ParseError = GraphError::Disconnected.into();
        assert_eq!(pe, ParseError::Graph(GraphError::Disconnected));
        use std::error::Error;
        assert!(pe.source().is_some());
    }
}
