//! Error types shared across the crate.

use std::fmt;

/// Errors arising from constructing or mutating a [`crate::HostSwitchGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A switch id was out of range.
    SwitchOutOfRange {
        /// Offending switch id.
        switch: u32,
        /// Number of switches `m` in the graph.
        num_switches: u32,
    },
    /// A host id was out of range.
    HostOutOfRange {
        /// Offending host id.
        host: u32,
        /// Number of hosts `n` in the graph.
        num_hosts: u32,
    },
    /// Adding the edge/host would exceed the switch radix.
    RadixExceeded {
        /// Switch whose ports ran out.
        switch: u32,
        /// The radix `r`.
        radix: u32,
    },
    /// Self loops on switches are not allowed.
    SelfLoop {
        /// The switch both endpoints referred to.
        switch: u32,
    },
    /// The switch pair is already connected (multi-edges not allowed).
    DuplicateEdge {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
    },
    /// The requested edge does not exist.
    MissingEdge {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
    },
    /// The host is not attached to the given switch.
    HostNotOnSwitch {
        /// The host in question.
        host: u32,
        /// The switch it was expected on.
        switch: u32,
    },
    /// The switch has no hosts to detach.
    NoHostToDetach {
        /// The empty switch.
        switch: u32,
    },
    /// Parameters do not satisfy a required constraint.
    InvalidParameters(String),
    /// The graph is not connected (some host pair is unreachable).
    Disconnected,
    /// Randomized construction failed to produce a valid graph.
    ConstructionFailed(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SwitchOutOfRange {
                switch,
                num_switches,
            } => {
                write!(f, "switch {switch} out of range (m = {num_switches})")
            }
            Self::HostOutOfRange { host, num_hosts } => {
                write!(f, "host {host} out of range (n = {num_hosts})")
            }
            Self::RadixExceeded { switch, radix } => {
                write!(f, "switch {switch} has no free port (radix {radix})")
            }
            Self::SelfLoop { switch } => write!(f, "self loop on switch {switch}"),
            Self::DuplicateEdge { a, b } => write!(f, "edge {{{a},{b}}} already exists"),
            Self::MissingEdge { a, b } => write!(f, "edge {{{a},{b}}} does not exist"),
            Self::HostNotOnSwitch { host, switch } => {
                write!(f, "host {host} is not attached to switch {switch}")
            }
            Self::NoHostToDetach { switch } => {
                write!(f, "switch {switch} has no attached host")
            }
            Self::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            Self::Disconnected => write!(f, "graph is not connected"),
            Self::ConstructionFailed(msg) => write!(f, "construction failed: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Errors from parsing the textual graph format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The header line was malformed or missing.
    BadHeader(String),
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line_no: usize,
        /// The raw line.
        content: String,
    },
    /// The parsed graph violates an invariant.
    Graph(GraphError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadHeader(h) => write!(f, "bad header: {h}"),
            Self::BadLine { line_no, content } => {
                write!(f, "cannot parse line {line_no}: {content:?}")
            }
            Self::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ParseError {
    fn from(e: GraphError) -> Self {
        Self::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_ids() {
        let e = GraphError::SwitchOutOfRange {
            switch: 7,
            num_switches: 4,
        };
        assert!(e.to_string().contains('7'));
        let e = GraphError::DuplicateEdge { a: 1, b: 2 };
        assert!(e.to_string().contains("{1,2}"));
    }

    #[test]
    fn parse_error_wraps_graph_error() {
        let pe: ParseError = GraphError::Disconnected.into();
        assert_eq!(pe, ParseError::Graph(GraphError::Disconnected));
        use std::error::Error;
        assert!(pe.source().is_some());
    }
}
