//! Lower bounds (Section 4) and the Moore-bound machinery (Section 5).
//!
//! * [`diameter_lower_bound`] — Theorem 1.
//! * [`haspl_lower_bound`] — Theorem 2.
//! * [`moore_aspl`] / [`continuous_moore_aspl`] — the (continuous) Moore
//!   bound on the ASPL of an `N`-vertex `K`-regular graph.
//! * [`moore_haspl`] / [`continuous_moore_haspl`] — the bound transferred
//!   to regular host-switch graphs via Eq. (2).
//! * [`optimal_switch_count`] — the `m_opt` prediction: the `m` minimising
//!   the continuous Moore bound.

/// Theorem 1: `D(G) ≥ ⌈log_{r−1}(n−1)⌉ + 1` for any host-switch graph of
/// order `n` and radix `r`, clamped to 2 (a host-to-host path always
/// crosses at least one switch).
///
/// # Panics
/// Panics if `n < 2` or `r < 3`.
pub fn diameter_lower_bound(n: u64, r: u64) -> u32 {
    assert!(n >= 2, "need at least two hosts");
    assert!(r >= 3, "radix must be at least 3");
    // smallest D with (r-1)^(D-1) >= n-1
    let mut reach: u128 = 1;
    let mut d = 1u32;
    while reach < (n - 1) as u128 {
        reach = reach.saturating_mul((r - 1) as u128);
        d += 1;
    }
    d.max(2)
}

/// Theorem 2: lower bound on the h-ASPL of any host-switch graph of order
/// `n` and radix `r`:
///
/// * `D⁻` if `n = (r−1)^{D⁻−1} + 1`,
/// * `D⁻ − α/(n−1)` otherwise, with
///   `α = (r−1)^{D⁻−2} − ⌈(n−1−(r−1)^{D⁻−2})/(r−2)⌉`,
///
/// where `D⁻` is the Theorem-1 diameter bound.
///
/// # Panics
/// Panics if `n < 2` or `r < 3`.
pub fn haspl_lower_bound(n: u64, r: u64) -> f64 {
    assert!(n >= 2, "need at least two hosts");
    assert!(r >= 3, "radix must be at least 3");
    if n as u128 <= r as u128 {
        // One switch holds everything: every pair at distance exactly 2.
        return 2.0;
    }
    let d_minus = diameter_lower_bound(n, r) as u64;
    let pow = |e: u64| -> u128 { ((r - 1) as u128).pow(e as u32) };
    if (n - 1) as u128 == pow(d_minus - 1) {
        return d_minus as f64;
    }
    // D⁻ ≥ 3 here: n > r rules out D⁻ = 2 with n−1 ≠ (r−1).
    let cap = pow(d_minus - 2); // (r−1)^{D⁻−2}
    let need = (n - 1) as u128 - cap; // hosts beyond a full (D⁻−1)-ball
    let converted = need.div_ceil((r - 2) as u128);
    let alpha = cap.saturating_sub(converted) as f64;
    d_minus as f64 - alpha / (n - 1) as f64
}

/// Moore bound on the ASPL of an `N`-vertex `K`-regular undirected graph:
/// greedily fill BFS levels of capacity `K(K−1)^{i−1}` and average the
/// distances. Returns `None` when the levels cannot cover `N−1` vertices
/// (i.e. no connected `K`-regular graph of that size exists, e.g. `K ≤ 1`).
pub fn moore_aspl(n_vertices: u64, k: u64) -> Option<f64> {
    if n_vertices < 2 {
        return Some(0.0);
    }
    if k == 0 {
        return None;
    }
    let mut remaining = (n_vertices - 1) as u128;
    let mut cap: u128 = k as u128;
    let mut dist_sum: u128 = 0;
    let mut i: u128 = 1;
    while remaining > 0 {
        if cap == 0 {
            return None; // K = 1 path exhausted
        }
        let take = cap.min(remaining);
        dist_sum += i * take;
        remaining -= take;
        cap = cap.saturating_mul((k as u128).saturating_sub(1));
        i += 1;
    }
    Some(dist_sum as f64 / (n_vertices - 1) as f64)
}

/// Continuous Moore bound: as [`moore_aspl`] but the degree `k` may be any
/// real number > 1 (the paper's extension that makes the bound defined for
/// every `m`, not only divisors of `n`). Returns `None` when the geometric
/// level capacities cannot cover the graph (`k ≤ 1`, or `1 < k < 2` with
/// too many vertices).
pub fn continuous_moore_aspl(n_vertices: f64, k: f64) -> Option<f64> {
    if n_vertices < 2.0 {
        return Some(0.0);
    }
    if k <= 0.0 {
        return None;
    }
    let mut remaining = n_vertices - 1.0;
    let mut cap = k;
    let mut dist_sum = 0.0;
    let mut i = 1.0f64;
    // For k ≤ 2 capacities stop growing; bail out once they vanish.
    while remaining > 1e-12 {
        if cap < 1e-12 || i > 1e7 {
            return None;
        }
        let take = cap.min(remaining);
        dist_sum += i * take;
        remaining -= take;
        cap *= k - 1.0;
        i += 1.0;
    }
    Some(dist_sum / (n_vertices - 1.0))
}

/// Equation (2): Moore bound on the h-ASPL of a *regular* host-switch
/// graph with `n` hosts, `m` switches, radix `r` (requires `m | n`):
/// `A(G) ≥ M(m, r − n/m)·(mn−n)/(mn−m) + 2`.
///
/// Returns `None` if `m ∤ n`, ports are over-subscribed, or no such
/// regular graph can be connected.
pub fn moore_haspl(n: u64, m: u64, r: u64) -> Option<f64> {
    if m == 0 || n == 0 || !n.is_multiple_of(m) {
        return None;
    }
    let per = n / m;
    if per > r {
        return None;
    }
    let k = r - per;
    if m == 1 {
        return (per <= r).then_some(2.0);
    }
    let aspl = moore_aspl(m, k)?;
    Some(scale_to_haspl(aspl, n as f64, m as f64))
}

/// Continuous Moore bound on the h-ASPL for *any* `m` (Section 5.3):
/// the switch degree becomes the rational `r − n/m`.
///
/// Returns `f64::INFINITY` for infeasible `m` so that minimisation over
/// `m` is uniform.
pub fn continuous_moore_haspl(n: u64, m: u64, r: u64) -> f64 {
    if m == 0 || n == 0 {
        return f64::INFINITY;
    }
    let per = n as f64 / m as f64;
    if per > r as f64 {
        return f64::INFINITY;
    }
    if m == 1 {
        return 2.0;
    }
    let k = r as f64 - per;
    match continuous_moore_aspl(m as f64, k) {
        Some(aspl) => scale_to_haspl(aspl, n as f64, m as f64),
        None => f64::INFINITY,
    }
}

#[inline]
fn scale_to_haspl(switch_aspl: f64, n: f64, m: f64) -> f64 {
    switch_aspl * (m * n - n) / (m * n - m) + 2.0
}

/// The `m_opt` prediction of Section 5.3: the number of switches at which
/// the continuous Moore bound takes its minimum, together with that
/// minimum bound value (`A_opt`'s prediction).
///
/// Scans `m = 1..=n`; ties resolve to the smallest `m`.
///
/// # Panics
/// Panics if `n < 2` or `r < 3`.
pub fn optimal_switch_count(n: u64, r: u64) -> (u64, f64) {
    assert!(n >= 2, "need at least two hosts");
    assert!(r >= 3, "radix must be at least 3");
    let mut best_m = 1;
    let mut best = continuous_moore_haspl(n, 1, r);
    for m in 2..=n {
        let b = continuous_moore_haspl(n, m, r);
        if b < best {
            best = b;
            best_m = m;
        }
    }
    (best_m, best)
}

/// Largest `n` for which all switches can form an `m`-clique
/// (Section 3.2): `n ≤ m(r − m + 1)`.
pub fn clique_capacity(m: u64, r: u64) -> u64 {
    if m == 0 || m > r {
        0
    } else {
        m * (r + 1 - m)
    }
}

/// Smallest clique size `m` whose capacity reaches `n`, if any
/// (`None` when even the best clique cannot hold `n` hosts).
pub fn min_clique_switches(n: u64, r: u64) -> Option<u64> {
    (1..=r + 1).find(|&m| clique_capacity(m, r) >= n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diameter_bound_examples() {
        // n-1 <= r-1: everything two hops apart.
        assert_eq!(diameter_lower_bound(10, 24), 2);
        assert_eq!(diameter_lower_bound(24, 24), 2);
        // one more host than a switch can hold
        assert_eq!(diameter_lower_bound(25, 24), 3);
        // paper-scale example: n=1024, r=24 → ⌈log_23(1023)⌉+1 = 4... check:
        // 23^2 = 529 < 1023 <= 23^3 → ceil = 3 → D⁻ = 4.
        assert_eq!(diameter_lower_bound(1024, 24), 4);
        // r=12: 11^2=121 < 1023 <= 11^3=1331 → 4.
        assert_eq!(diameter_lower_bound(1024, 12), 4);
        assert_eq!(diameter_lower_bound(2, 3), 2);
    }

    #[test]
    fn haspl_bound_tight_cases() {
        // n = (r-1)^{D⁻-1} + 1 → bound is exactly D⁻.
        // r=4, D⁻=3: n = 3^2+1 = 10.
        assert_eq!(haspl_lower_bound(10, 4), 3.0);
        // star case: n <= r → exactly 2.
        assert_eq!(haspl_lower_bound(24, 24), 2.0);
        assert_eq!(haspl_lower_bound(5, 24), 2.0);
    }

    #[test]
    fn haspl_bound_general_case() {
        // n=12, r=4: D⁻ = ⌈log_3 11⌉+1 = 4 (3^2=9 < 11 ≤ 27).
        // α = 3^2 − ⌈(11−3)/2⌉ = 9 − 4 = 5... wait cap=(r−1)^{D⁻−2}=3^2=9,
        // need = 11−9 = 2, converted = ⌈2/2⌉=1, α = 8.
        // bound = 4 − 8/11.
        let b = haspl_lower_bound(12, 4);
        assert!((b - (4.0 - 8.0 / 11.0)).abs() < 1e-12, "{b}");
    }

    #[test]
    fn haspl_bound_below_diameter_bound() {
        for &(n, r) in &[(100u64, 8u64), (1024, 24), (1024, 12), (500, 10)] {
            let a = haspl_lower_bound(n, r);
            let d = diameter_lower_bound(n, r) as f64;
            assert!(a <= d);
            assert!(a > d - 1.0, "bound should be within 1 of D⁻");
            assert!(a >= 2.0);
        }
    }

    #[test]
    fn moore_aspl_small_cases() {
        // Complete graph K4: 3-regular on 4 vertices → ASPL 1.
        assert_eq!(moore_aspl(4, 3), Some(1.0));
        // Petersen-graph parameters: 10 vertices, 3-regular.
        // Levels: 3 at d=1, 6 at d=2 → (3+12)/9 = 5/3.
        assert_eq!(moore_aspl(10, 3), Some(5.0 / 3.0));
        // Ring of 6, K=2: levels 2,2,1 → (2+4+3)/5 = 1.8.
        assert_eq!(moore_aspl(6, 2), Some(1.8));
        // K=1 cannot connect more than 2 vertices.
        assert_eq!(moore_aspl(2, 1), Some(1.0));
        assert_eq!(moore_aspl(3, 1), None);
        assert_eq!(moore_aspl(5, 0), None);
    }

    #[test]
    fn continuous_matches_integer_moore_at_integers() {
        for &(n, k) in &[(10u64, 3u64), (64, 5), (194, 9), (1024, 23), (6, 2)] {
            let a = moore_aspl(n, k).unwrap();
            let b = continuous_moore_aspl(n as f64, k as f64).unwrap();
            assert!((a - b).abs() < 1e-9, "n={n} k={k}: {a} vs {b}");
        }
    }

    #[test]
    fn continuous_moore_is_monotone_in_k() {
        // Higher degree → lower ASPL bound.
        let mut prev = f64::INFINITY;
        for k10 in 21..60u32 {
            let k = k10 as f64 / 10.0;
            let a = continuous_moore_aspl(500.0, k).unwrap();
            assert!(a <= prev + 1e-12, "k={k}");
            prev = a;
        }
    }

    #[test]
    fn continuous_infeasible_degrees() {
        assert_eq!(continuous_moore_aspl(100.0, 1.0), None);
        assert_eq!(continuous_moore_aspl(1000.0, 1.05), None);
        assert_eq!(continuous_moore_aspl(100.0, -2.0), None);
    }

    #[test]
    fn eq2_matches_continuous_at_divisors() {
        let (n, r) = (1024u64, 24u64);
        for m in [128u64, 256, 512] {
            if n % m == 0 {
                let a = moore_haspl(n, m, r).unwrap();
                let b = continuous_moore_haspl(n, m, r);
                assert!((a - b).abs() < 1e-9, "m={m}");
            }
        }
    }

    #[test]
    fn moore_haspl_rejects_nondivisors() {
        assert_eq!(moore_haspl(1024, 194, 24), None);
        assert!(continuous_moore_haspl(1024, 194, 24).is_finite());
    }

    #[test]
    fn m_opt_paper_configurations() {
        // The paper's proposed topologies: (n=1024, r=15) → m=194,
        // (n=1024, r=16) → m=183. These pin our continuous-Moore argmin.
        let (m15, a15) = optimal_switch_count(1024, 15);
        let (m16, a16) = optimal_switch_count(1024, 16);
        assert!(a15.is_finite() && a16.is_finite());
        // Allow ±2 in case of formula-edge rounding, but print the value so
        // a drift is visible in test output.
        assert!((192..=196).contains(&m15), "m_opt(1024,15) = {m15}");
        assert!((181..=185).contains(&m16), "m_opt(1024,16) = {m16}");
        assert!(a16 < a15, "higher radix must not hurt");
    }

    #[test]
    fn m_opt_small_case_is_clique() {
        // n=128, r=24: the paper notes m≈8 forms a clique and h-ASPL < 3.
        let (m, a) = optimal_switch_count(128, 24);
        assert!((7..=10).contains(&m), "m_opt(128,24) = {m}");
        assert!(a < 3.0, "A_opt = {a}");
    }

    #[test]
    fn clique_capacity_formula() {
        assert_eq!(clique_capacity(8, 24), 8 * 17); // 136 ≥ 128 ✓
        assert_eq!(clique_capacity(1, 24), 24);
        assert_eq!(clique_capacity(25, 24), 0);
        assert_eq!(min_clique_switches(128, 24), Some(8));
        assert_eq!(min_clique_switches(24, 24), Some(1));
        // max clique capacity for r=24 is around m=12..13: 12*13=156
        assert_eq!(min_clique_switches(157, 24), None);
    }

    #[test]
    fn bound_is_infinite_for_too_few_switches() {
        // m switches with all ports used by hosts cannot interconnect.
        let b = continuous_moore_haspl(1024, 43, 24); // 1024/43 ≈ 23.8 → k ≈ 0.2
        assert!(b.is_infinite());
    }
}
