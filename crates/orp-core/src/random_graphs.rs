//! Random-graph baselines from the related work the paper builds on
//! (§2.1): Erdős–Rényi, Watts–Strogatz small worlds, the
//! Bollobás–Chung "cycle plus random matching", and Barabási–Albert
//! scale-free graphs — each lifted to a host-switch graph so they can be
//! compared against ORP solutions under identical `(n, r)` budgets.
//!
//! The paper's §2.1 argument, reproducible with these generators: local
//! search beats naive random topologies, and scale-free degree
//! distributions are impractical under a fixed radix.

use crate::construct::fill_free_ports;
use crate::error::GraphError;
use crate::graph::{HostSwitchGraph, Switch};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Spreads `n` hosts over `m` switches as evenly as possible, requiring
/// `reserve` free ports on every switch afterwards.
fn attach_balanced(g: &mut HostSwitchGraph, n: u32, reserve: u32) -> Result<(), GraphError> {
    let m = g.num_switches();
    // round-robin, skipping switches whose remaining ports (beyond the
    // reservation) ran out — keeps the distribution as even as capacity
    // allows
    let mut left = n;
    while left > 0 {
        let mut placed = false;
        for s in 0..m {
            if left == 0 {
                break;
            }
            if g.free_ports(s) > reserve {
                g.attach_host(s)?;
                left -= 1;
                placed = true;
            }
        }
        if !placed {
            return Err(GraphError::InvalidParameters(format!(
                "cannot hold {n} hosts with {reserve} reserved ports per switch"
            )));
        }
    }
    Ok(())
}

/// Erdős–Rényi-flavoured host-switch graph: hosts spread evenly, then
/// random switch links inserted until every port is used (at most one
/// stray port remains) — i.e. `G(m, M)` conditioned on the radix budget.
/// Connectivity is *not* guaranteed for very sparse budgets; retries a
/// few seeds and errors if all attempts disconnect.
pub fn erdos_renyi(n: u32, m: u32, r: u32, seed: u64) -> Result<HostSwitchGraph, GraphError> {
    for attempt in 0..16u64 {
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed.wrapping_add(attempt.wrapping_mul(0x9e3779b97f4a7c15)));
        let mut g = HostSwitchGraph::new(m, r)?;
        attach_balanced(&mut g, n, 2)?;
        fill_free_ports(&mut g, &mut rng);
        if g.hosts_connected() {
            return Ok(g);
        }
    }
    Err(GraphError::ConstructionFailed(
        "Erdős–Rényi fabric stayed disconnected".into(),
    ))
}

/// Bollobás–Chung: a Hamiltonian cycle over the switches plus a random
/// perfect matching (requires even `m`); the classic diameter-
/// `O(log m)` construction the paper cites as [6]. Remaining ports hold
/// hosts.
pub fn cycle_plus_matching(
    n: u32,
    m: u32,
    r: u32,
    seed: u64,
) -> Result<HostSwitchGraph, GraphError> {
    if m < 4 || !m.is_multiple_of(2) {
        return Err(GraphError::InvalidParameters(format!(
            "cycle-plus-matching needs even m >= 4, got {m}"
        )));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    'attempt: for _ in 0..32 {
        let mut g = HostSwitchGraph::new(m, r)?;
        attach_balanced(&mut g, n, 3)?;
        for s in 0..m {
            g.add_link(s, (s + 1) % m)?;
        }
        // random perfect matching avoiding existing cycle edges
        let mut order: Vec<Switch> = (0..m).collect();
        order.shuffle(&mut rng);
        for pair in order.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            if g.has_link(a, b) || g.add_link(a, b).is_err() {
                continue 'attempt; // resample the matching
            }
        }
        return Ok(g);
    }
    Err(GraphError::ConstructionFailed(
        "no valid matching found".into(),
    ))
}

/// Watts–Strogatz small world over the switches: a ring lattice where
/// each switch links to its `k/2` nearest neighbours per side, then each
/// lattice edge rewires with probability `beta` (0 = lattice,
/// 1 ≈ random). Hosts fill the remaining ports evenly.
pub fn watts_strogatz(
    n: u32,
    m: u32,
    k: u32,
    beta: f64,
    r: u32,
    seed: u64,
) -> Result<HostSwitchGraph, GraphError> {
    if !k.is_multiple_of(2) || k < 2 || k >= m {
        return Err(GraphError::InvalidParameters(format!(
            "Watts–Strogatz needs even 2 <= k < m, got k={k} m={m}"
        )));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidParameters(format!(
            "beta={beta} not in [0,1]"
        )));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = HostSwitchGraph::new(m, r)?;
    // lattice
    for s in 0..m {
        for d in 1..=(k / 2) {
            let t = (s + d) % m;
            if !g.has_link(s, t) {
                g.add_link(s, t)?;
            }
        }
    }
    // rewire
    for s in 0..m {
        for d in 1..=(k / 2) {
            let t = (s + d) % m;
            if rng.gen::<f64>() < beta && g.has_link(s, t) {
                // pick a fresh endpoint with a free port
                for _ in 0..64 {
                    let u = rng.gen_range(0..m);
                    if u != s && !g.has_link(s, u) && g.free_ports(u) > 0 {
                        g.remove_link(s, t)?;
                        g.add_link(s, u)?;
                        break;
                    }
                }
            }
        }
    }
    attach_balanced(&mut g, n, 0)?;
    if !g.hosts_connected() {
        return Err(GraphError::ConstructionFailed(
            "rewiring disconnected hosts".into(),
        ));
    }
    Ok(g)
}

/// Barabási–Albert preferential attachment over the switches (`k` links
/// per arriving switch), host ports filled afterwards where the radix
/// allows. Produces the power-law-ish degree profile of §2.1's
/// scale-free discussion — note how the radix cap truncates the tail,
/// which is exactly the paper's practicality objection.
pub fn barabasi_albert(
    n: u32,
    m: u32,
    k: u32,
    r: u32,
    seed: u64,
) -> Result<HostSwitchGraph, GraphError> {
    if k < 1 || k >= m || k >= r {
        return Err(GraphError::InvalidParameters(format!(
            "Barabási–Albert needs 1 <= k < min(m, r), got k={k}"
        )));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = HostSwitchGraph::new(m, r)?;
    // seed clique of k+1 switches
    let seed_sz = k + 1;
    for a in 0..seed_sz {
        for b in (a + 1)..seed_sz {
            g.add_link(a, b)?;
        }
    }
    // endpoint pool: one entry per incident edge (preferential weights)
    let mut pool: Vec<Switch> = Vec::new();
    for s in 0..seed_sz {
        for _ in 0..g.neighbors(s).len() {
            pool.push(s);
        }
    }
    for s in seed_sz..m {
        let mut added = 0;
        let mut guard = 0;
        while added < k && guard < 1000 {
            guard += 1;
            let t = pool[rng.gen_range(0..pool.len())];
            if t != s && !g.has_link(s, t) && g.free_ports(t) > 0 && g.free_ports(s) > 0 {
                g.add_link(s, t)?;
                pool.push(s);
                pool.push(t);
                added += 1;
            }
        }
        if added == 0 {
            return Err(GraphError::ConstructionFailed(format!(
                "switch {s} found no attachment targets"
            )));
        }
    }
    // hosts go wherever ports remain, round robin
    let mut left = n;
    let mut guard = 0;
    while left > 0 {
        let mut progressed = false;
        for s in 0..m {
            if left == 0 {
                break;
            }
            if g.free_ports(s) > 0 {
                g.attach_host(s)?;
                left -= 1;
                progressed = true;
            }
        }
        guard += 1;
        if !progressed || guard > r {
            return Err(GraphError::InvalidParameters(format!(
                "only {} of {n} hosts fit the scale-free fabric",
                n - left
            )));
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::path_metrics;

    #[test]
    fn erdos_renyi_uses_all_ports() {
        let g = erdos_renyi(128, 32, 12, 5).unwrap();
        g.validate().unwrap();
        let free: u32 = (0..32).map(|s| g.free_ports(s)).sum();
        assert!(free <= 1);
        assert!(path_metrics(&g).unwrap().haspl > 2.0);
    }

    #[test]
    fn cycle_plus_matching_degree_profile() {
        let g = cycle_plus_matching(64, 32, 8, 5).unwrap();
        g.validate().unwrap();
        // every switch: 2 cycle + 1 matching links
        assert!((0..32).all(|s| g.neighbors(s).len() == 3));
        assert!(g.is_connected());
    }

    #[test]
    fn cycle_plus_matching_needs_even_m() {
        assert!(cycle_plus_matching(10, 5, 8, 0).is_err());
    }

    #[test]
    fn watts_strogatz_extremes() {
        // beta=0: pure lattice — ring distances
        let g0 = watts_strogatz(32, 16, 4, 0.0, 8, 5).unwrap();
        g0.validate().unwrap();
        assert!((0..16).all(|s| g0.neighbors(s).len() == 4));
        // beta=1: heavily rewired but still valid
        let g1 = watts_strogatz(32, 16, 4, 1.0, 8, 5).unwrap();
        g1.validate().unwrap();
        // rewiring should shrink the ASPL vs the lattice (whp)
        let a0 = path_metrics(&g0).unwrap().haspl;
        let a1 = path_metrics(&g1).unwrap().haspl;
        assert!(a1 <= a0 + 0.2, "lattice {a0} vs rewired {a1}");
    }

    #[test]
    fn watts_strogatz_rejects_bad_k() {
        assert!(watts_strogatz(32, 16, 3, 0.5, 8, 0).is_err());
        assert!(watts_strogatz(32, 16, 16, 0.5, 8, 0).is_err());
    }

    #[test]
    fn barabasi_albert_has_skewed_degrees() {
        let g = barabasi_albert(60, 60, 2, 20, 5).unwrap();
        g.validate().unwrap();
        let degs: Vec<usize> = (0..60).map(|s| g.neighbors(s).len()).collect();
        let max = *degs.iter().max().unwrap();
        let min = *degs.iter().min().unwrap();
        assert!(max >= 3 * min, "expected a heavy tail, got {min}..{max}");
    }

    #[test]
    fn barabasi_albert_radix_caps_the_tail() {
        let g = barabasi_albert(0, 80, 2, 6, 5).unwrap();
        assert!((0..80).all(|s| g.switch_degree(s) <= 6));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            erdos_renyi(64, 16, 10, 3).unwrap(),
            erdos_renyi(64, 16, 10, 3).unwrap()
        );
        assert_eq!(
            watts_strogatz(32, 16, 4, 0.3, 8, 3).unwrap(),
            watts_strogatz(32, 16, 4, 0.3, 8, 3).unwrap()
        );
    }
}
