//! Exact (exhaustive) ORP solving for tiny instances.
//!
//! Enumerates every host distribution and every switch graph up to a
//! caller-chosen switch count, evaluating the h-ASPL of each feasible,
//! connected candidate. Exponential, of course — the point is to
//! certify, on instances small enough to enumerate, that
//!
//! * the Theorem-2 lower bound is never violated,
//! * the clique construction of Theorem 3 is optimal in its regime, and
//! * the simulated annealer reaches the true optimum (our regression
//!   tests for SA quality).

use crate::graph::HostSwitchGraph;
use crate::metrics::{path_metrics, PathMetrics};

/// The optimum found by exhaustive search.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// An optimal graph.
    pub graph: HostSwitchGraph,
    /// Its metrics.
    pub metrics: PathMetrics,
    /// Candidates evaluated.
    pub evaluated: u64,
}

/// Exhaustively solves ORP for `n` hosts, radix `r`, considering
/// `1..=max_m` switches. Practical up to roughly `max_m = 5` and
/// `n ≤ 16`.
///
/// # Panics
/// Panics if `max_m > 6` (the search would not terminate in reasonable
/// time) or `n < 2`.
pub fn solve_exact(n: u32, r: u32, max_m: u32) -> Option<ExactSolution> {
    assert!(
        max_m <= 6,
        "exhaustive search is exponential; keep max_m <= 6"
    );
    assert!(n >= 2);
    let mut best: Option<ExactSolution> = None;
    let mut evaluated = 0u64;
    for m in 1..=max_m {
        search_m(n, m, r, &mut best, &mut evaluated);
    }
    if let Some(b) = &mut best {
        b.evaluated = evaluated;
    }
    best
}

/// All candidates with exactly `m` switches.
fn search_m(n: u32, m: u32, r: u32, best: &mut Option<ExactSolution>, evaluated: &mut u64) {
    let pairs: Vec<(u32, u32)> = (0..m)
        .flat_map(|a| ((a + 1)..m).map(move |b| (a, b)))
        .collect();
    let num_pairs = pairs.len() as u32;
    let mut dist = vec![0u32; m as usize];
    // enumerate host distributions: compositions of n into m parts ≥ 0
    compose(n, m, 0, &mut dist, &mut |hosts: &[u32]| {
        // prune: hosts alone must fit the radix
        if hosts.iter().any(|&h| h > r) {
            return;
        }
        for mask in 0..(1u64 << num_pairs) {
            // degree feasibility
            let mut deg = hosts.to_vec();
            let mut ok = true;
            for (i, &(a, b)) in pairs.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    deg[a as usize] += 1;
                    deg[b as usize] += 1;
                    if deg[a as usize] > r || deg[b as usize] > r {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let mut g = match HostSwitchGraph::new(m, r) {
                Ok(g) => g,
                Err(_) => return,
            };
            for (i, &(a, b)) in pairs.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    g.add_link(a, b).expect("degree-checked");
                }
            }
            for (s, &h) in hosts.iter().enumerate() {
                for _ in 0..h {
                    g.attach_host(s as u32).expect("radix-checked");
                }
            }
            if let Some(pm) = path_metrics(&g) {
                *evaluated += 1;
                let better = best
                    .as_ref()
                    .map(|b| pm.total_length < b.metrics.total_length)
                    .unwrap_or(true);
                if better {
                    *best = Some(ExactSolution {
                        graph: g,
                        metrics: pm,
                        evaluated: 0,
                    });
                }
            }
        }
    });
}

/// Enumerates all ways to write `left` as an ordered sum of
/// `m - pos` non-negative parts into `out[pos..]`.
fn compose(left: u32, m: u32, pos: u32, out: &mut Vec<u32>, f: &mut impl FnMut(&[u32])) {
    if pos == m - 1 {
        out[pos as usize] = left;
        f(out);
        return;
    }
    for take in 0..=left {
        out[pos as usize] = take;
        compose(left - take, m, pos + 1, out, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anneal::SaConfig;
    use crate::bounds::{haspl_lower_bound, min_clique_switches};
    use crate::construct::{clique, star};
    use crate::solver::Solver;

    #[test]
    fn star_is_exactly_optimal_when_hosts_fit() {
        let sol = solve_exact(5, 6, 3).unwrap();
        assert_eq!(sol.metrics.haspl, 2.0);
        let star = star(5, 6).unwrap();
        assert_eq!(path_metrics(&star).unwrap().haspl, 2.0);
    }

    #[test]
    fn theorem3_clique_is_optimal_beyond_one_switch() {
        // n=8, r=5: one switch holds 5 < 8, min clique m: m(6-m) >= 8 → m=2
        // (2·4=8). Exact optimum must equal the clique construction.
        let (n, r) = (8u32, 5u32);
        assert_eq!(min_clique_switches(n as u64, r as u64), Some(2));
        let cl = clique(n, r).unwrap();
        let cl_m = path_metrics(&cl).unwrap();
        let sol = solve_exact(n, r, 4).unwrap();
        assert_eq!(
            sol.metrics.total_length, cl_m.total_length,
            "clique {} vs exact {}",
            cl_m.haspl, sol.metrics.haspl
        );
    }

    #[test]
    fn exact_respects_theorem2_bound() {
        for (n, r) in [(6u32, 4u32), (8, 4), (10, 5), (9, 6)] {
            let sol = solve_exact(n, r, 5).unwrap();
            let lb = haspl_lower_bound(n as u64, r as u64);
            assert!(
                sol.metrics.haspl >= lb - 1e-9,
                "n={n} r={r}: exact {} < bound {lb}",
                sol.metrics.haspl
            );
        }
    }

    #[test]
    fn annealer_reaches_the_exact_optimum_on_tiny_instances() {
        let (n, r) = (10u32, 5u32);
        let sol = solve_exact(n, r, 5).unwrap();
        let cfg = SaConfig {
            iters: 4000,
            seed: 3,
            ..Default::default()
        };
        let sa = Solver::builder(n, r).config(cfg).run().unwrap().result;
        // SA fixes m = m_opt, the exhaustive search roams all m — SA may
        // only match or exceed slightly; require within 5 %.
        assert!(
            sa.metrics.haspl <= sol.metrics.haspl * 1.05 + 1e-9,
            "SA {} vs exact {}",
            sa.metrics.haspl,
            sol.metrics.haspl
        );
    }

    #[test]
    fn evaluated_counter_is_positive() {
        let sol = solve_exact(4, 4, 2).unwrap();
        assert!(sol.evaluated > 0);
        sol.graph.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn refuses_oversized_searches() {
        let _ = solve_exact(8, 4, 7);
    }
}
