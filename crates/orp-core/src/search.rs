//! The annealing evaluation engine: a [`SearchState`] that owns the graph
//! and every derived structure the local search needs, keeps them all in
//! sync through a transactional apply/score/commit/rollback API, and
//! evaluates h-ASPL with a bit-parallel batched BFS over reusable scratch
//! so that steady-state annealing performs **zero heap allocation and zero
//! full rebuilds per proposal**.
//!
//! # Why
//!
//! The original annealer rebuilt a [`SwitchCsr`] and the host-count vector
//! from the graph on every proposal (`O(m + L)` of pure allocation and
//! copying before a single BFS step ran) and hand-mirrored every
//! `EdgeSet::remove`/`insert` in each of the three move kinds — a classic
//! source of drift bugs. Here the graph, the CSR, the host counts, and the
//! [`EdgeSet`] live behind one API; a move is applied exactly once and
//! every structure follows.
//!
//! # Transactions
//!
//! [`SearchState::begin`] opens a transaction; [`SearchState::apply_swap`]
//! and [`SearchState::apply_swing`] mutate all owned structures and append
//! to an undo log; [`SearchState::rollback`] replays the log backwards to
//! the matching `begin`, and [`SearchState::commit`] forgets it.
//! Transactions nest, which is exactly what the 2-neighbor swing of §5.2
//! needs: apply the first swing, score, and on rejection stack a second
//! swing on top before deciding the fate of both.
//!
//! # Evaluation
//!
//! [`SearchState::evaluate`] runs a *batched* BFS: 64 sources advance
//! together, one bit per source in a `u64` frontier mask per switch. Per
//! level every switch ORs its neighbours' frontier masks — with the tiny
//! diameters of ORP solutions (3–5) the whole sweep touches each adjacency
//! list a handful of times instead of once per source, which is roughly an
//! order of magnitude faster than source-at-a-time BFS even before
//! threading.
//!
//! # Incremental delta evaluation
//!
//! On cache-eligible instances (see [`SearchConfig`]) the engine keeps a
//! **per-source distance cache**: an `m × m` matrix of hop counts plus
//! per-source aggregates (host-weighted path sums, per-distance
//! hostful-switch histograms, eccentricities). A swap or swing perturbs at
//! most three switch links, and the *exact* set of sources whose distance
//! vector changes is computable from the cached rows alone:
//!
//! * an **added** link `{u, v}` changes the distances from `s` iff
//!   `|d(s,u) − d(s,v)| ≥ 2` (the shortcut strictly improves the farther
//!   endpoint, and only then can anything downstream improve);
//! * a **removed** link `{u, v}` with `d(s,u) + 1 = d(s,v)` changes the
//!   distances from `s` iff `v` has no *other* surviving neighbour `w`
//!   with `d(s,w) = d(s,u)` — an alternate BFS parent keeps `d(s,v)` and
//!   therefore every distance below it intact; if `d(s,u) = d(s,v)` the
//!   link lies on no shortest path at all.
//!
//! Only the affected sources are repacked into 64-wide batches and
//! re-swept; everything else is scored from the cached aggregates in
//! `O(m)`. Edge deltas accumulate *lazily* (rollback pushes the inverse
//! delta, so a rejected proposal that never re-evaluated cancels to a
//! no-op), and the full sweep remains both the fallback (large `m`, deep
//! graphs) and the correctness oracle of the equivalence suites.
//!
//! # Row codecs and memory budget
//!
//! The cache rows come in two codecs, picked by [`SearchConfig`]:
//!
//! * **Dense** — one `u16` per entry, distances up to 127 (the legacy
//!   layout, and the [`CacheMode::Auto`] choice up to
//!   [`CACHE_MAX_SWITCHES`] switches);
//! * **Packed** ([`CacheMode::Compressed`]) — one `u8` per entry,
//!   distances up to 63, halving the matrix so Graph-Golf-scale
//!   instances (`n = 65536`) fit a few GiB. ORP diameters are
//!   single-digit, so the tighter cap never binds on real searches.
//!
//! Transactional row snapshots are run-length encoded (a repaired row
//! differs from its pre-image in a handful of runs), so rejected
//! proposals at large `m` do not copy whole rows around.
//!
//! # Sharded parallel repair
//!
//! Re-BFS batches **and** per-source repairs are scheduled together on
//! the persistent worker pool through per-worker Chase–Lev deques
//! ([`crate::wsdeque`]): the publisher seeds each worker with a
//! contiguous shard of the task list, workers drain their own deque and
//! steal from siblings when idle. Every repair touches only its own
//! source's row, aggregates, and flags, so workers never contend; the
//! totals are reduced sequentially afterwards, which keeps the result
//! bit-identical for every worker count and codec.

use crate::error::GraphError;
use crate::graph::{Host, HostSwitchGraph, Switch};
use crate::metrics::{finalize_metrics, PathMetrics, SwitchCsr};
use crate::ops::{EdgeSet, Swap, Swing};
use crate::wsdeque::{Deque, Steal};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Switch count from which the auto heuristic turns on threaded
/// evaluation (when more than one CPU is available).
pub const PARALLEL_SWITCH_THRESHOLD: u32 = 256;

/// Largest switch count for which [`CacheMode::Auto`] picks the dense
/// (`u16`) row codec; above it the auto mode switches to the packed
/// (`u8`) codec while the memory budget allows.
pub const CACHE_MAX_SWITCHES: usize = 4096;

/// Distance cap of the dense (`u16`) rows; a BFS level reaching it
/// permanently disables the cache for the instance (ORP graphs have
/// single-digit diameters, so this only triggers on degenerate
/// path-like inputs).
const DENSE_MAX_DIST: usize = 128;

/// Distance cap of the packed (`u8`) rows.
const PACKED_MAX_DIST: usize = 64;

/// Cache marker for an unreachable switch.
const INVALID_DIST: u16 = u16::MAX;

/// Packed-row byte marking an unreachable switch.
const PACKED_INVALID: u8 = u8::MAX;

/// `−ln` of the Metropolis acceptance probability below which guarded
/// evaluation may early-reject without running a BFS
/// (`exp(−40) ≈ 4·10⁻¹⁸`, far below one draw in a lifetime of runs).
pub const EARLY_REJECT_LOG: f64 = 40.0;

/// Default [`SearchConfig::memory_budget_bytes`]: 8 GiB — enough for
/// the packed codec at m = 65536 switches (~4.3 GiB) and the dense
/// codec up to m = 16384, so [`CacheMode::Auto`] covers the whole
/// Graph-Golf range out of the box.
pub const DEFAULT_CACHE_BUDGET: usize = 1 << 33;

/// Minimum combined task count (sweep batches + repairs) before a
/// cached evaluation engages the worker pool; below it the condvar
/// round trip costs more than the work.
const POOL_TASK_THRESHOLD: usize = 32;

/// Resolves the effective number of evaluation worker threads from the
/// user's override (`SaConfig::parallel_eval`) and the instance size:
/// `Some(false)` forces 1, `Some(true)` forces threading, `None` picks
/// threading iff `m >=` [`PARALLEL_SWITCH_THRESHOLD`] and the machine has
/// more than one CPU. Returns at least 1.
pub fn resolve_parallel_eval(override_flag: Option<bool>, num_switches: u32) -> usize {
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let parallel = override_flag.unwrap_or(num_switches >= PARALLEL_SWITCH_THRESHOLD && cpus > 1);
    if parallel {
        cpus.max(1)
    } else {
        1
    }
}

// ---- search configuration ----------------------------------------------

/// How the distance cache is provisioned (see [`SearchConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Dense rows up to [`CACHE_MAX_SWITCHES`] switches, packed rows
    /// beyond that while the budget allows, no cache otherwise.
    #[default]
    Auto,
    /// Force the dense `u16` codec (or no cache if over budget).
    Dense,
    /// Force the packed `u8` codec (or no cache if over budget).
    Compressed,
    /// Never build a distance cache: every evaluation is a full sweep.
    Off,
}

impl FromStr for CacheMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Self::Auto),
            "dense" => Ok(Self::Dense),
            "compressed" => Ok(Self::Compressed),
            "off" => Ok(Self::Off),
            other => Err(format!(
                "unknown cache mode {other:?} (expected auto|dense|compressed|off)"
            )),
        }
    }
}

/// The row codec a [`SearchConfig`] resolved to for a given instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheCodec {
    /// `u16` entries, distances up to 127.
    Dense,
    /// `u8` entries, distances up to 63 — half the memory.
    Packed,
}

/// Tunables of the evaluation engine, surfaced through
/// `Solver::builder()` and `orp solve --cache-mode/--mem-budget`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// Distance-cache provisioning policy.
    pub cache_mode: CacheMode,
    /// Upper bound on the cache's bulk allocation (rows + histograms);
    /// a mode whose codec would exceed it degrades to no cache.
    pub memory_budget_bytes: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            cache_mode: CacheMode::Auto,
            memory_budget_bytes: DEFAULT_CACHE_BUDGET,
        }
    }
}

impl SearchConfig {
    /// A config that disables the distance cache entirely.
    pub fn off() -> Self {
        Self {
            cache_mode: CacheMode::Off,
            ..Self::default()
        }
    }

    /// Bytes of bulk storage the dense codec needs for `m` switches.
    pub fn dense_cache_bytes(m: usize) -> usize {
        m.saturating_mul(m)
            .saturating_mul(2)
            .saturating_add(m.saturating_mul(DENSE_MAX_DIST * 4 + 15))
    }

    /// Bytes of bulk storage the packed codec needs for `m` switches.
    pub fn compressed_cache_bytes(m: usize) -> usize {
        m.saturating_mul(m)
            .saturating_add(m.saturating_mul(PACKED_MAX_DIST * 4 + 15))
    }

    /// The codec this config provisions for an `m`-switch instance, or
    /// `None` when the cache stays off (mode `Off`, degenerate `m`, or
    /// over budget).
    pub fn resolve_codec(&self, m: usize) -> Option<CacheCodec> {
        if m < 2 {
            return None;
        }
        let dense_fits = Self::dense_cache_bytes(m) <= self.memory_budget_bytes;
        let packed_fits = Self::compressed_cache_bytes(m) <= self.memory_budget_bytes;
        match self.cache_mode {
            CacheMode::Off => None,
            CacheMode::Dense => dense_fits.then_some(CacheCodec::Dense),
            CacheMode::Compressed => packed_fits.then_some(CacheCodec::Packed),
            CacheMode::Auto => {
                if m <= CACHE_MAX_SWITCHES && dense_fits {
                    Some(CacheCodec::Dense)
                } else if packed_fits {
                    Some(CacheCodec::Packed)
                } else {
                    None
                }
            }
        }
    }
}

/// Fixed-capacity CSR adjacency, edited in place on every link change
/// instead of rebuilt from the graph: switch `s` owns slots
/// `[s·r, s·r + deg(s))` of a flat array (`r` = radix), so adding or
/// removing a link is `O(r)` with no allocation.
#[derive(Debug, Clone)]
pub struct SlotCsr {
    radix: usize,
    deg: Vec<u32>,
    slots: Vec<u32>,
}

impl SlotCsr {
    /// Builds the slotted adjacency from a graph.
    pub fn from_graph(g: &HostSwitchGraph) -> Self {
        let m = g.num_switches() as usize;
        let radix = g.radix() as usize;
        let mut csr = Self {
            radix,
            deg: vec![0; m],
            slots: vec![u32::MAX; m * radix],
        };
        for s in 0..m as u32 {
            for &t in g.neighbors(s) {
                let d = &mut csr.deg[s as usize];
                csr.slots[s as usize * radix + *d as usize] = t;
                *d += 1;
            }
        }
        csr
    }

    /// Number of switches.
    #[inline]
    pub fn len(&self) -> usize {
        self.deg.len()
    }

    /// Whether there are no switches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.deg.is_empty()
    }

    /// Switch neighbours of `s` (unsorted).
    #[inline]
    pub fn neighbors(&self, s: Switch) -> &[u32] {
        let base = s as usize * self.radix;
        &self.slots[base..base + self.deg[s as usize] as usize]
    }

    #[inline]
    fn push(&mut self, s: Switch, t: Switch) {
        let d = &mut self.deg[s as usize];
        debug_assert!((*d as usize) < self.radix, "slot overflow at switch {s}");
        self.slots[s as usize * self.radix + *d as usize] = t;
        *d += 1;
    }

    #[inline]
    fn pull(&mut self, s: Switch, t: Switch) {
        let base = s as usize * self.radix;
        let d = self.deg[s as usize] as usize;
        let row = &mut self.slots[base..base + d];
        let pos = row.iter().position(|&x| x == t).expect("neighbor present");
        row[pos] = row[d - 1];
        self.deg[s as usize] -= 1;
    }

    /// Records the new link `{a, b}` (`O(1)`).
    #[inline]
    pub fn add_link(&mut self, a: Switch, b: Switch) {
        self.push(a, b);
        self.push(b, a);
    }

    /// Drops the link `{a, b}` (`O(r)`).
    #[inline]
    pub fn remove_link(&mut self, a: Switch, b: Switch) {
        self.pull(a, b);
        self.pull(b, a);
    }
}

/// Reusable buffers for one evaluation worker: three `u64` frontier masks
/// per switch. Allocated once, reused by every proposal.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    cur: Vec<u64>,
    next: Vec<u64>,
    seen: Vec<u64>,
}

impl EvalScratch {
    fn reset(&mut self, m: usize) {
        self.cur.clear();
        self.cur.resize(m, 0);
        self.next.clear();
        self.next.resize(m, 0);
        self.seen.clear();
        self.seen.resize(m, 0);
    }
}

/// Partial result of sweeping one batch of sources.
#[derive(Debug, Clone, Copy, Default)]
struct BatchSums {
    /// Σ `k_a·k_b·(d+2)` over ordered hostful pairs with source in batch.
    weighted: u64,
    /// Max inter-switch distance seen from this batch's sources.
    max_d: u32,
    /// Hostful switches reached, summed over the batch's sources
    /// (each source counts itself). Detects disconnection.
    reached: u64,
}

impl BatchSums {
    #[inline]
    fn absorb(&mut self, b: BatchSums) {
        self.weighted += b.weighted;
        self.max_d = self.max_d.max(b.max_d);
        self.reached += b.reached;
    }
}

/// Sweeps sources `srcs[lo..hi]` (at most 64) in lockstep: bit `i` of a
/// mask tracks source `srcs[lo + i]`.
fn sweep_batch(
    csr: &SlotCsr,
    counts: &[u32],
    srcs: &[u32],
    scratch: &mut EvalScratch,
) -> BatchSums {
    debug_assert!(!srcs.is_empty() && srcs.len() <= 64);
    let m = csr.len();
    scratch.reset(m);
    let mut k_src = [0u64; 64];
    for (i, &s) in srcs.iter().enumerate() {
        scratch.cur[s as usize] = 1 << i;
        scratch.seen[s as usize] = 1 << i;
        k_src[i] = counts[s as usize] as u64;
    }
    let mut sums = BatchSums {
        reached: srcs.len() as u64,
        ..Default::default()
    };
    let mut depth = 0u64;
    loop {
        depth += 1;
        let mut active = false;
        for (v, &kv) in counts.iter().enumerate().take(m) {
            let mut gather = 0u64;
            for &u in csr.neighbors(v as u32) {
                gather |= scratch.cur[u as usize];
            }
            let new = gather & !scratch.seen[v];
            scratch.next[v] = new;
            if new != 0 {
                scratch.seen[v] |= new;
                active = true;
                let kv = kv as u64;
                if kv > 0 {
                    sums.max_d = sums.max_d.max(depth as u32);
                    sums.reached += new.count_ones() as u64;
                    let mut bits = new;
                    let mut batch_k = 0u64;
                    while bits != 0 {
                        batch_k += k_src[bits.trailing_zeros() as usize];
                        bits &= bits - 1;
                    }
                    sums.weighted += batch_k * kv * (depth + 2);
                }
            }
        }
        if !active {
            return sums;
        }
        std::mem::swap(&mut scratch.cur, &mut scratch.next);
    }
}

// ---- distance cache ----------------------------------------------------

/// Codec-dispatched row storage of the distance cache.
#[derive(Debug)]
enum RowStore {
    /// One `u16` per entry.
    Dense(Vec<u16>),
    /// One `u8` per entry; [`PACKED_INVALID`] marks unreachable.
    Packed(Vec<u8>),
}

/// Reads entry `(s, v)` of the row store as a logical `u16` distance.
#[inline]
fn row_get(store: &RowStore, m: usize, s: usize, v: usize) -> u16 {
    match store {
        RowStore::Dense(rows) => rows[s * m + v],
        RowStore::Packed(rows) => {
            let b = rows[s * m + v];
            if b == PACKED_INVALID {
                INVALID_DIST
            } else {
                u16::from(b)
            }
        }
    }
}

/// Run-length encodes row `s` as flattened `(value, run)` `u16` pairs
/// appended to `out`; runs split at `u16::MAX`.
fn encode_row_rle(store: &RowStore, m: usize, s: usize, out: &mut Vec<u16>) {
    let mut v = 0usize;
    while v < m {
        let val = row_get(store, m, s, v);
        let mut run = 1usize;
        while v + run < m && run < u16::MAX as usize && row_get(store, m, s, v + run) == val {
            run += 1;
        }
        out.push(val);
        out.push(run as u16);
        v += run;
    }
}

/// Raw views into the cache arrays, so one sweep/repair implementation
/// serves both the sequential path and the worker pool (each task writes
/// only the row and aggregates of its own sources, which are disjoint).
#[derive(Debug, Clone, Copy)]
struct CachePtrs {
    /// Byte pointer into the row store; interpretation follows `codec`.
    rows: *mut u8,
    codec: CacheCodec,
    /// Distance cap (and histogram stride) of this cache.
    max_dist: usize,
    wsum: *mut u64,
    hist: *mut u32,
    ecc: *mut u16,
    nreach: *mut u32,
    valid: *mut bool,
    m: usize,
}

// SAFETY: the pointers are only dereferenced for sources assigned to the
// holder, and distinct workers are assigned disjoint sources.
unsafe impl Send for CachePtrs {}
unsafe impl Sync for CachePtrs {}

impl CachePtrs {
    /// Reads entry `(s, v)` as a logical `u16` distance.
    ///
    /// # Safety
    /// The caller must own source `s` for the duration of the job.
    #[inline]
    unsafe fn get(&self, s: usize, v: usize) -> u16 {
        match self.codec {
            CacheCodec::Dense => *(self.rows as *const u16).add(s * self.m + v),
            CacheCodec::Packed => {
                let b = *self.rows.add(s * self.m + v);
                if b == PACKED_INVALID {
                    INVALID_DIST
                } else {
                    u16::from(b)
                }
            }
        }
    }

    /// Writes entry `(s, v)` from a logical `u16` distance.
    ///
    /// # Safety
    /// The caller must own source `s` for the duration of the job.
    #[inline]
    unsafe fn set(&self, s: usize, v: usize, d: u16) {
        match self.codec {
            CacheCodec::Dense => *(self.rows as *mut u16).add(s * self.m + v) = d,
            CacheCodec::Packed => {
                *self.rows.add(s * self.m + v) = if d == INVALID_DIST {
                    PACKED_INVALID
                } else {
                    debug_assert!(d < u16::from(PACKED_INVALID));
                    d as u8
                }
            }
        }
    }

    /// Fills row `s` with the unreachable marker (both codecs use
    /// all-ones bytes for it).
    ///
    /// # Safety
    /// The caller must own source `s` for the duration of the job.
    #[inline]
    unsafe fn fill_invalid(&self, s: usize) {
        match self.codec {
            CacheCodec::Dense => {
                std::ptr::write_bytes((self.rows as *mut u16).add(s * self.m), 0xFF, self.m)
            }
            CacheCodec::Packed => std::ptr::write_bytes(self.rows.add(s * self.m), 0xFF, self.m),
        }
    }
}

/// As [`sweep_batch`], but additionally fills the cache row and
/// per-source aggregates of every swept source. Returns `false` when a
/// BFS level reaches the cache's distance cap (cache must be disabled).
fn sweep_batch_cached(
    csr: &SlotCsr,
    counts: &[u32],
    srcs: &[u32],
    scratch: &mut EvalScratch,
    c: &CachePtrs,
) -> bool {
    debug_assert!(!srcs.is_empty() && srcs.len() <= 64);
    let m = csr.len();
    debug_assert_eq!(m, c.m);
    scratch.reset(m);
    // SAFETY: every source in `srcs` is owned by this batch; rows and
    // per-source aggregates of distinct sources never alias.
    unsafe {
        for &s in srcs {
            let s = s as usize;
            c.fill_invalid(s);
            c.set(s, s, 0);
        }
    }
    for (i, &s) in srcs.iter().enumerate() {
        scratch.cur[s as usize] = 1 << i;
        scratch.seen[s as usize] = 1 << i;
    }
    let mut depth = 0usize;
    loop {
        depth += 1;
        if depth >= c.max_dist {
            return false;
        }
        let mut active = false;
        for v in 0..m {
            let mut gather = 0u64;
            for &u in csr.neighbors(v as u32) {
                gather |= scratch.cur[u as usize];
            }
            let new = gather & !scratch.seen[v];
            scratch.next[v] = new;
            if new != 0 {
                scratch.seen[v] |= new;
                active = true;
                let mut bits = new;
                while bits != 0 {
                    let s = srcs[bits.trailing_zeros() as usize] as usize;
                    bits &= bits - 1;
                    // SAFETY: `s` belongs to this batch (see above).
                    unsafe {
                        c.set(s, v, depth as u16);
                    }
                }
            }
        }
        if !active {
            break;
        }
        std::mem::swap(&mut scratch.cur, &mut scratch.next);
    }
    // Aggregates come from a sequential post-pass over each finished
    // row — far cheaper than scalar updates inside the frontier bit
    // loop above, which would cost one scattered read-modify-write per
    // (source, switch) pair.
    // SAFETY: as above.
    unsafe {
        for &s in srcs {
            recompute_aggregates_ptr(c, s as usize, counts);
            *c.valid.add(s as usize) = true;
        }
    }
    true
}

/// Rebuilds the aggregates of source `s` from its stored row: a single
/// sequential pass shared by the sweep workers and the repair path.
///
/// # Safety
/// The caller must own source `s` (no other thread may touch its row or
/// aggregate slots), and the row must be fully written.
unsafe fn recompute_aggregates_ptr(c: &CachePtrs, s: usize, counts: &[u32]) {
    let m = c.m;
    let hist = std::slice::from_raw_parts_mut(c.hist.add(s * c.max_dist), c.max_dist);
    hist.fill(0);
    let mut wsum = 0u64;
    let mut nreach = 0u32;
    let mut ecc = 0u16;
    for (v, &kv) in counts.iter().enumerate().take(m) {
        let d = c.get(s, v);
        if v == s || d == INVALID_DIST || kv == 0 {
            continue;
        }
        wsum += kv as u64 * (d as u64 + 2);
        hist[d as usize] += 1;
        nreach += 1;
        ecc = ecc.max(d);
    }
    *c.wsum.add(s) = wsum;
    *c.nreach.add(s) = nreach;
    *c.ecc.add(s) = ecc;
}

/// The per-source distance cache: one row per switch (hop counts to
/// every other switch, stored dense or packed) plus the aggregates that
/// let a proposal be scored without re-visiting unaffected rows.
///
/// Invariants (for every row with `valid[s]`):
/// * row `s` holds the hop distances of the graph **minus the pending
///   [`DistCache::edge_delta`]** — rows are only refreshed inside
///   `evaluate`, edge mutations between evaluations just accumulate;
/// * `wsum[s] = Σ_{v≠s, k_v>0, reachable} k_v·(d(s,v)+2)`,
///   `hist[s][d] = #{v≠s : k_v>0, d(s,v)=d}`, `nreach[s] = Σ_d hist[s][d]`
///   and `ecc[s] = max{d : hist[s][d]>0}` — all wrt the row *as stored*
///   and the **current** host counts (host moves adjust them eagerly and
///   reversibly in `O(valid rows)`).
#[derive(Debug)]
struct DistCache {
    m: usize,
    codec: CacheCodec,
    /// Distance cap and histogram stride (codec-dependent).
    max_dist: usize,
    store: RowStore,
    valid: Vec<bool>,
    wsum: Vec<u64>,
    hist: Vec<u32>,
    ecc: Vec<u16>,
    nreach: Vec<u32>,
    /// Net link changes since the rows were last refreshed, as
    /// `(a, b, net)` with `a < b`; entries cancelling to net 0 are
    /// dropped, so a rolled-back proposal leaves no trace.
    edge_delta: Vec<(Switch, Switch, i32)>,
    /// Set when a sweep or repair overflowed the distance cap; the
    /// engine then falls back to full sweeps forever.
    disabled: bool,
    // -- transactional snapshots ------------------------------------
    /// Sources whose rows were overwritten inside an open transaction,
    /// with their pre-overwrite validity and the start offset of their
    /// RLE image in [`Self::snap_rle`]. Restored in reverse on
    /// rollback, so the earliest (pre-transaction) copy wins.
    snap_src: Vec<(u32, bool, u32)>,
    /// Run-length arena backing [`Self::snap_src`]: flattened
    /// `(value, run)` `u16` pairs per saved row.
    snap_rle: Vec<u16>,
    /// `snap_src` boundary per open transaction level.
    snap_marks: Vec<usize>,
    /// Copy of [`Self::edge_delta`] at each `begin`, restored wholesale
    /// on rollback (the restored rows match the restored graph, so the
    /// inverse notes pushed by undo replay are discarded).
    saved_deltas: Vec<Vec<(Switch, Switch, i32)>>,
    // -- scan scratch (never snapshotted) ---------------------------
    /// Per-source classification bits (`ADD_AFF` / `DEL_AFF` /
    /// `NO_STRICT`).
    flags: Vec<u8>,
    /// Per-removal shortest-path-side marker (0 = not on one, 1 = far
    /// endpoint is `v`, 2 = far endpoint is `u`).
    wneed: Vec<u8>,
    /// Per-removal witness bits (bit 0: any witness, bit 1: witness not
    /// using an added link).
    wit: Vec<u8>,
    /// `max(k_far)` over witness-less removals, per source.
    strict: Vec<u32>,
    /// Rows the last repair pass actually rewrote —
    /// conservatively-routed rows a surviving witness protected are
    /// excluded, so the affected-row statistics stay meaningful.
    touched: u32,
}

/// [`DistCache::flags`] bit: some added link can shorten this source.
const ADD_AFF: u8 = 1;
/// [`DistCache::flags`] bit: some removed link lengthens this source
/// (it was on a shortest path and no alternate parent survives).
const DEL_AFF: u8 = 2;
/// [`DistCache::flags`] bit: some removal's only surviving witness goes
/// through an added link, so this row is *not* exact for the graph
/// minus that link alone and must run the decremental phase.
const NO_STRICT: u8 = 4;

/// Read-only result of classifying the pending edge delta against the
/// cached rows.
#[derive(Debug, Default)]
struct DeltaScan {
    /// Whether some hostful source has no valid row (its aggregates are
    /// unknown — early reject is then impossible).
    invalid_hostful: bool,
    /// Whether the guard's allowance bound applies: at most one
    /// net-added link (the single-add distance formula the improvement
    /// bound rests on does not compose across simultaneous adds).
    guardable: bool,
    /// Lower bound on the increase of the *ordered* weighted path sum
    /// from witness-less removals, over sources the add cannot touch.
    strict_sum: u64,
    /// Upper bound on the decrease of the ordered weighted path sum from
    /// the added link: an ordered pair `(s, x)` can only improve if `s`
    /// sits strictly behind one endpoint and `x` strictly behind the
    /// other, and then by at most `min(diff(s), diff(x)) − 1`, so the
    /// total decrease is at most `2·min(Su·Kv, Sv·Ku)` where
    /// `Su = Σ k_s·(diff(s)−1)` and `Ku = Σ k_s` over sources behind `u`
    /// (resp. `v`).
    allowance: u64,
}

impl DistCache {
    fn with_codec(m: usize, codec: CacheCodec) -> Self {
        let max_dist = match codec {
            CacheCodec::Dense => DENSE_MAX_DIST,
            CacheCodec::Packed => PACKED_MAX_DIST,
        };
        let store = match codec {
            CacheCodec::Dense => RowStore::Dense(vec![INVALID_DIST; m * m]),
            CacheCodec::Packed => RowStore::Packed(vec![PACKED_INVALID; m * m]),
        };
        Self {
            m,
            codec,
            max_dist,
            store,
            valid: vec![false; m],
            wsum: vec![0; m],
            hist: vec![0; m * max_dist],
            ecc: vec![0; m],
            nreach: vec![0; m],
            edge_delta: Vec::new(),
            disabled: false,
            snap_src: Vec::new(),
            snap_rle: Vec::new(),
            snap_marks: Vec::new(),
            saved_deltas: Vec::new(),
            flags: vec![0; m],
            wneed: vec![0; m],
            wit: vec![0; m],
            strict: vec![0; m],
            touched: 0,
        }
    }

    /// Resident bytes of the bulk row store, the per-source aggregates,
    /// and the live transactional snapshot arena.
    fn resident_bytes(&self) -> usize {
        let rows = match &self.store {
            RowStore::Dense(r) => r.len() * 2,
            RowStore::Packed(r) => r.len(),
        };
        rows + self.hist.len() * 4
            + self.wsum.len() * 8
            + self.nreach.len() * 4
            + self.ecc.len() * 2
            + self.valid.len()
            + self.snap_rle.len() * 2
    }

    // -- transactional snapshots --------------------------------------

    /// Opens a snapshot level (called from [`SearchState::begin`]).
    fn mark(&mut self) {
        if self.disabled {
            return;
        }
        self.snap_marks.push(self.snap_src.len());
        self.saved_deltas.push(self.edge_delta.clone());
    }

    /// Folds the innermost snapshot level into its parent (commit): the
    /// entries stay restorable by an enclosing rollback and are dropped
    /// only when the outermost transaction commits.
    fn commit_mark(&mut self) {
        if self.disabled {
            return;
        }
        self.snap_marks.pop();
        self.saved_deltas.pop();
        if self.snap_marks.is_empty() {
            self.snap_src.clear();
            self.snap_rle.clear();
        }
    }

    /// Restores every row dirtied since the innermost `mark` (reverse
    /// order, so the earliest copy wins) and rewinds the edge delta to
    /// its state at `begin`. Aggregates of restored rows are recomputed
    /// against `counts`, which the caller passes *after* replaying the
    /// undo log — so host counts are already rolled back.
    fn rollback_mark(&mut self, counts: &[u32]) {
        if self.disabled {
            return;
        }
        let (Some(boundary), Some(saved)) = (self.snap_marks.pop(), self.saved_deltas.pop()) else {
            return;
        };
        while self.snap_src.len() > boundary {
            let (s, was_valid, start) = self.snap_src.pop().expect("len > boundary");
            let s = s as usize;
            let start = start as usize;
            self.decode_snap_row(s, start);
            self.snap_rle.truncate(start);
            self.valid[s] = was_valid;
            if was_valid {
                // restored rows were validated when first stored
                let ok = self.recompute_aggregates(s, counts);
                debug_assert!(ok, "snapshot row of source {s} holds an oversized distance");
            }
        }
        self.edge_delta = saved;
    }

    /// Decodes the RLE image at `snap_rle[start..]` back into row `s`.
    fn decode_snap_row(&mut self, s: usize, start: usize) {
        let m = self.m;
        let rle = &self.snap_rle[start..];
        let mut v = 0usize;
        let mut i = 0usize;
        match &mut self.store {
            RowStore::Dense(rows) => {
                let base = s * m;
                while v < m {
                    let (val, run) = (rle[i], rle[i + 1] as usize);
                    i += 2;
                    rows[base + v..base + v + run].fill(val);
                    v += run;
                }
            }
            RowStore::Packed(rows) => {
                let base = s * m;
                while v < m {
                    let (val, run) = (rle[i], rle[i + 1] as usize);
                    i += 2;
                    let b = if val == INVALID_DIST {
                        PACKED_INVALID
                    } else {
                        val as u8
                    };
                    rows[base + v..base + v + run].fill(b);
                    v += run;
                }
            }
        }
        debug_assert_eq!(i, rle.len(), "trailing RLE data after row {s}");
    }

    /// Saves row `s` (and its validity) before a sweep or repair
    /// overwrites it. Only meaningful while a snapshot level is open.
    fn snapshot_row(&mut self, s: u32) {
        debug_assert!(!self.snap_marks.is_empty());
        let s_idx = s as usize;
        let start = self.snap_rle.len() as u32;
        self.snap_src.push((s, self.valid[s_idx], start));
        encode_row_rle(&self.store, self.m, s_idx, &mut self.snap_rle);
    }

    /// Rebuilds `wsum`/`hist`/`ecc`/`nreach` of source `s` from its row
    /// and the given host counts — one sequential scan. Returns `false`
    /// if the row holds a finite distance beyond what the histogram can
    /// index (only reachable through formula repair).
    #[must_use]
    fn recompute_aggregates(&mut self, s: usize, counts: &[u32]) -> bool {
        let m = self.m;
        let max_dist = self.max_dist;
        let hist = &mut self.hist[s * max_dist..(s + 1) * max_dist];
        hist.fill(0);
        let mut wsum = 0u64;
        let mut nreach = 0u32;
        let mut ecc = 0u16;
        for (v, &k) in counts.iter().enumerate().take(m) {
            let d = row_get(&self.store, m, s, v);
            if v == s || d == INVALID_DIST {
                continue;
            }
            // hostless switches count too: a later host move must be
            // able to index `hist[d]`
            if d >= max_dist as u16 {
                return false;
            }
            if k == 0 {
                continue;
            }
            wsum += k as u64 * (d as u64 + 2);
            hist[d as usize] += 1;
            nreach += 1;
            ecc = ecc.max(d);
        }
        self.wsum[s] = wsum;
        self.nreach[s] = nreach;
        self.ecc[s] = ecc;
        true
    }

    fn ptrs(&mut self) -> CachePtrs {
        let rows = match &mut self.store {
            RowStore::Dense(r) => r.as_mut_ptr() as *mut u8,
            RowStore::Packed(r) => r.as_mut_ptr(),
        };
        CachePtrs {
            rows,
            codec: self.codec,
            max_dist: self.max_dist,
            wsum: self.wsum.as_mut_ptr(),
            hist: self.hist.as_mut_ptr(),
            ecc: self.ecc.as_mut_ptr(),
            nreach: self.nreach.as_mut_ptr(),
            valid: self.valid.as_mut_ptr(),
            m: self.m,
        }
    }

    /// Accumulates a link change (`net = ±1`); exact inverses cancel.
    fn note_edge(&mut self, a: Switch, b: Switch, net: i32) {
        if self.disabled {
            return;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(pos) = self.edge_delta.iter().position(|&(x, y, _)| (x, y) == key) {
            self.edge_delta[pos].2 += net;
            if self.edge_delta[pos].2 == 0 {
                self.edge_delta.swap_remove(pos);
            }
        } else {
            self.edge_delta.push((key.0, key.1, net));
        }
    }

    /// Eagerly re-weights every valid row for a host-count change at `v`.
    /// Self-inverse under the opposite delta, so transaction rollback
    /// (which replays the inverse host move) restores the aggregates
    /// exactly.
    fn note_host_delta(&mut self, v: Switch, old_k: u32, new_k: u32) {
        if self.disabled || old_k == new_k {
            return;
        }
        let m = self.m;
        let max_dist = self.max_dist;
        let v = v as usize;
        let dk = new_k as i64 - old_k as i64;
        for s in 0..m {
            if !self.valid[s] || s == v {
                continue;
            }
            // All valid rows describe the same graph, so `d(s,v)` can be
            // read from `v`'s own row — a sequential scan instead of an
            // `m`-stride column walk (one cache miss per source).
            let d = if self.valid[v] {
                row_get(&self.store, m, v, s)
            } else {
                row_get(&self.store, m, s, v)
            };
            if d == INVALID_DIST {
                continue;
            }
            let du = d as usize;
            self.wsum[s] = (self.wsum[s] as i64 + dk * (du as i64 + 2)) as u64;
            if old_k == 0 {
                self.hist[s * max_dist + du] += 1;
                self.nreach[s] += 1;
                if d > self.ecc[s] {
                    self.ecc[s] = d;
                }
            } else if new_k == 0 {
                let base = s * max_dist;
                self.hist[base + du] -= 1;
                self.nreach[s] -= 1;
                if self.hist[base + du] == 0 && d == self.ecc[s] {
                    let mut e = du;
                    while e > 0 && self.hist[base + e] == 0 {
                        e -= 1;
                    }
                    self.ecc[s] = e as u16;
                }
            }
        }
    }

    /// Classifies every row against the pending edge delta, pushing the
    /// sources that must be re-swept (affected or invalid, hostful or
    /// not — the cache keeps every row warm so host moves onto hostless
    /// switches never cold-start) into `rebfs`. Read-only on the cache
    /// itself, so an early reject can abandon the result without repair
    /// work.
    fn scan_delta(
        &mut self,
        csr: &SlotCsr,
        counts: &[u32],
        rebfs: &mut Vec<u32>,
        repair: &mut Vec<u32>,
    ) -> DeltaScan {
        rebfs.clear();
        repair.clear();
        let mut scan = DeltaScan::default();
        let m = self.m;
        // Split the pending delta once; swings keep |adds| = |dels| = 1,
        // swaps 2 and 2.
        let mut adds: Vec<(u32, u32)> = Vec::with_capacity(4);
        let mut dels: Vec<(u32, u32)> = Vec::with_capacity(4);
        for &(a, b, net) in &self.edge_delta {
            if net > 0 {
                adds.push((a, b));
            } else if net < 0 {
                dels.push((a, b));
            }
        }
        scan.guardable = adds.len() <= 1;
        for (s, (&ok, &k)) in self.valid.iter().zip(counts).enumerate().take(m) {
            if !ok {
                if k > 0 {
                    scan.invalid_hostful = true;
                }
                rebfs.push(s as u32);
            }
        }
        if adds.is_empty() && dels.is_empty() {
            return scan;
        }
        // Every pass below reads whole rows sequentially (d(s,x) is read
        // from x's row — valid rows all describe the same graph, so the
        // symmetric entry is identical and the `m`-stride column walk of
        // a per-source formulation is avoided). That needs the rows of
        // every delta endpoint and witness candidate; if any is missing
        // (only possible before the first full sweep), classification is
        // impossible and every row is conservatively re-swept.
        let mut conservative = adds
            .iter()
            .chain(&dels)
            .any(|&(u, v)| !self.valid[u as usize] || !self.valid[v as usize]);
        for &(u, v) in &dels {
            conservative |= csr
                .neighbors(u)
                .iter()
                .chain(csr.neighbors(v))
                .any(|&w| !self.valid[w as usize]);
        }
        if conservative {
            scan.guardable = false;
            for s in 0..m {
                if self.valid[s] {
                    rebfs.push(s as u32);
                }
            }
            rebfs.sort_unstable();
            return scan;
        }
        self.flags[..m].fill(0);
        self.strict[..m].fill(0);
        // Added links: `s` can shrink iff its endpoint distances differ
        // by ≥ 2 (or one endpoint is unreachable — reachability gain).
        // Accumulates the behind-u / behind-v host masses of the
        // single-add improvement allowance (see `DeltaScan::allowance`).
        let (mut su, mut ku, mut sv, mut kv) = (0u64, 0u64, 0u64, 0u64);
        for &(u, v) in &adds {
            for (s, &ks) in counts.iter().enumerate().take(m) {
                if !self.valid[s] {
                    continue;
                }
                let du = row_get(&self.store, m, u as usize, s);
                let dv = row_get(&self.store, m, v as usize, s);
                if du == INVALID_DIST && dv == INVALID_DIST {
                    continue; // joins two components not containing s
                }
                if du == INVALID_DIST || dv == INVALID_DIST {
                    // s gains reachability: pairs only appear (weighted
                    // sum grows), so no allowance is needed — but the
                    // row must be re-derived
                    self.flags[s] |= ADD_AFF;
                    continue;
                }
                let ks = u64::from(ks);
                if du + 2 <= dv {
                    // s strictly behind u: improving pairs enter the new
                    // link at u and exit towards targets behind v
                    self.flags[s] |= ADD_AFF;
                    if scan.guardable {
                        su += ks * (dv - du - 1) as u64;
                        ku += ks;
                    }
                } else if dv + 2 <= du {
                    self.flags[s] |= ADD_AFF;
                    if scan.guardable {
                        sv += ks * (du - dv - 1) as u64;
                        kv += ks;
                    }
                }
            }
        }
        scan.allowance = 2 * (su * kv).min(sv * ku);
        // Removed links, one at a time: `s` lengthens iff the link was on
        // a shortest path from `s` (endpoint levels differ — by exactly 1,
        // since it was an edge) and the far endpoint has no alternate
        // parent. A parent in the *post-delta* adjacency keeps every
        // distance intact — inductively down the BFS levels — but a
        // parent reached through an added link only proves the combined
        // delta leaves `s` unchanged, not the removals alone, so it does
        // not count as a *strict* witness (bit 1), which is what formula
        // repair needs.
        for &(u, v) in &dels {
            for s in 0..m {
                // add-affected sources still need their removal bits:
                // they decide repair eligibility (strict increments are
                // filtered later)
                let need = if !self.valid[s] {
                    0
                } else {
                    let du = row_get(&self.store, m, u as usize, s);
                    let dv = row_get(&self.store, m, v as usize, s);
                    if du == INVALID_DIST || dv == INVALID_DIST || du == dv {
                        0
                    } else if du < dv {
                        1 // far endpoint is v
                    } else {
                        2 // far endpoint is u
                    }
                };
                self.wneed[s] = need;
            }
            if !scan.guardable {
                // No guard will read the strict increments, so the
                // witness scan (deg(far) whole-row passes) buys nothing:
                // route every on-DAG source to the decremental phase,
                // which rediscovers surviving parents at O(deg) per
                // source and leaves witness-protected rows untouched.
                for s in 0..m {
                    if self.wneed[s] != 0 {
                        self.flags[s] |= DEL_AFF;
                    }
                }
                continue;
            }
            self.wit[..m].fill(0);
            for (far, need) in [(v, 1u8), (u, 2u8)] {
                for &w in csr.neighbors(far) {
                    let key = if far < w { (far, w) } else { (w, far) };
                    let strict_bit = if adds.contains(&key) { 1 } else { 3 };
                    for s in 0..m {
                        if self.wneed[s] == need {
                            let dw = row_get(&self.store, m, w as usize, s);
                            if dw != INVALID_DIST
                                && dw + 1 == row_get(&self.store, m, far as usize, s)
                            {
                                self.wit[s] |= strict_bit;
                            }
                        }
                    }
                }
            }
            for s in 0..m {
                if self.wneed[s] == 0 {
                    continue;
                }
                let far = if self.wneed[s] == 1 { v } else { u };
                if self.wit[s] & 1 == 0 {
                    self.flags[s] |= DEL_AFF;
                    // the farther endpoint strictly recedes by ≥ 1
                    self.strict[s] = self.strict[s].max(counts[far as usize]);
                }
                if self.wit[s] & 2 == 0 {
                    self.flags[s] |= NO_STRICT;
                }
            }
        }
        // Every affected source — add endpoints included — is repaired
        // in place (decremental orphan re-relaxation for the removals,
        // then incremental insertion relaxation for the adds — see
        // `repair_one_source`); re-BFS is reserved for invalid rows.
        for (s, &ks) in counts.iter().enumerate().take(m) {
            if !self.valid[s] {
                continue; // already queued
            }
            let f = self.flags[s];
            let ks = u64::from(ks);
            if f & ADD_AFF == 0 {
                // strict increments only for sources the add cannot
                // rescue
                scan.strict_sum += ks * self.strict[s] as u64;
            }
            if f & (ADD_AFF | DEL_AFF) == 0 {
                continue;
            }
            repair.push(s as u32);
        }
        scan
    }

    /// Scores the graph from the aggregates alone (`O(m)`); requires
    /// every hostful source to hold a valid, refreshed row.
    fn totals(&self, counts: &[u32]) -> BatchSums {
        let mut t = BatchSums::default();
        for (s, &k) in counts.iter().enumerate().take(self.m) {
            if k == 0 {
                continue;
            }
            debug_assert!(self.valid[s], "hostful source {s} lacks a cache row");
            t.weighted += k as u64 * self.wsum[s];
            t.max_d = t.max_d.max(self.ecc[s] as u32);
            t.reached += 1 + self.nreach[s] as u64;
        }
        t
    }

    /// Lower bound on the *ordered* weighted path sum after the pending
    /// delta: stale aggregates (with current host counts), plus the
    /// strict-removal increments (those sources' distances cannot have
    /// been rescued by the add), minus the add-improvement allowance
    /// (which over-covers every pair whose distance can shrink). Valid
    /// only for guardable scans with no invalid hostful row.
    fn lower_bound_weighted(&self, counts: &[u32], scan: &DeltaScan) -> u64 {
        let mut w = scan.strict_sum;
        for (s, &k) in counts.iter().enumerate().take(self.m) {
            if k > 0 {
                w += k as u64 * self.wsum[s];
            }
        }
        w.saturating_sub(scan.allowance)
    }

    /// Drops the bulk storage once the cache is disabled.
    fn release(&mut self) {
        self.disabled = true;
        self.store = match self.codec {
            CacheCodec::Dense => RowStore::Dense(Vec::new()),
            CacheCodec::Packed => RowStore::Packed(Vec::new()),
        };
        self.hist = Vec::new();
        self.wsum = Vec::new();
        self.ecc = Vec::new();
        self.nreach = Vec::new();
        self.valid = vec![false; self.m];
        self.edge_delta = Vec::new();
        self.snap_src = Vec::new();
        self.snap_rle = Vec::new();
        self.snap_marks = Vec::new();
        self.saved_deltas = Vec::new();
        self.flags = Vec::new();
        self.wneed = Vec::new();
        self.wit = Vec::new();
        self.strict = Vec::new();
    }
}

// ---- sharded in-place repair -------------------------------------------

/// Per-worker scratch of the sharded repair path: epoch-stamped marker
/// arrays, the bucket queue, and the worker-local RLE snapshot arena
/// (merged into the cache's snapshot stack after the job, so workers
/// never contend on it).
#[derive(Debug, Default)]
struct RepairScratch {
    /// Current epoch; a stamp array entry equals it iff set this source.
    ep: u32,
    /// Stamp: vertex already examined as an orphan candidate.
    cand_ep: Vec<u32>,
    /// Stamp: vertex orphaned (all strict shortest-path parents gone).
    orphan_ep: Vec<u32>,
    /// Stamp: orphan settled by the re-relaxation.
    settled_ep: Vec<u32>,
    /// Bucket queue over hop distance, shared by orphan descent and
    /// re-relaxation (each drains the buckets it fills).
    buckets: Vec<Vec<u32>>,
    /// Orphans of the current source.
    orphans: Vec<u32>,
    /// Rows this worker snapshotted during the current job, as
    /// `(source, was_valid, start into snap_rle)`.
    snaps: Vec<(u32, bool, u32)>,
    /// RLE arena backing [`Self::snaps`].
    snap_rle: Vec<u16>,
    /// Rows this worker's repairs actually rewrote during the job.
    touched: u32,
}

impl RepairScratch {
    fn ensure(&mut self, m: usize, max_dist: usize) {
        if self.cand_ep.len() != m {
            self.ep = 0;
            self.cand_ep = vec![0; m];
            self.orphan_ep = vec![0; m];
            self.settled_ep = vec![0; m];
        }
        if self.buckets.len() != max_dist + 1 {
            self.buckets = vec![Vec::new(); max_dist + 1];
        }
    }

    fn reset_job(&mut self) {
        self.touched = 0;
        self.snaps.clear();
        self.snap_rle.clear();
    }
}

/// Everything a repair task needs, as raw views so the same packet can
/// be executed by any pool worker. All pointers stay valid until the
/// job completes (the publisher blocks).
#[derive(Debug, Clone, Copy)]
struct RepairCtx {
    cache: CachePtrs,
    /// Classification bits from the scan (read-only during repair).
    flags: *const u8,
    csr: *const SlotCsr,
    counts: *const u32,
    counts_len: usize,
    adds: *const (u32, u32, u32),
    adds_len: usize,
    dels: *const (u32, u32),
    dels_len: usize,
    /// Whether a transaction is open (rows must be snapshotted before
    /// their first write).
    snap: bool,
}

// SAFETY: every task dereferences only its own source's row, aggregate
// slots, and flag byte; the shared inputs (csr/counts/adds/dels) are
// read-only for the duration of the job.
unsafe impl Send for RepairCtx {}
unsafe impl Sync for RepairCtx {}

/// RLE-snapshots the pre-image of row `s` into this worker's local
/// arena (merged into the cache's snapshot stack after the job).
///
/// # Safety
/// The caller must own source `s` for the duration of the job.
unsafe fn snapshot_into(rs: &mut RepairScratch, c: &CachePtrs, s: usize) {
    let start = rs.snap_rle.len() as u32;
    rs.snaps.push((s as u32, *c.valid.add(s), start));
    let m = c.m;
    let mut v = 0usize;
    while v < m {
        let val = c.get(s, v);
        let mut run = 1usize;
        while v + run < m && run < u16::MAX as usize && c.get(s, v + run) == val {
            run += 1;
        }
        rs.snap_rle.push(val);
        rs.snap_rle.push(run as u16);
        v += run;
    }
}

/// The added-link copies incident to `x`, as `(other endpoint,
/// copies to skip)` — iterating `csr` neighbors must ignore exactly
/// that many occurrences to see the strict (minus-removals,
/// minus-adds) adjacency. Parallel pre-existing copies survive.
#[inline]
fn added_copies(adds: &[(u32, u32, u32)], x: u32) -> [(u32, u32); 4] {
    let mut skip = [(u32::MAX, 0u32); 4];
    let mut n = 0;
    for &(a, b, mult) in adds {
        let other = if a == x {
            b
        } else if b == x {
            a
        } else {
            continue;
        };
        if n < skip.len() {
            skip[n] = (other, mult);
            n += 1;
        }
    }
    skip
}

/// Consumes one skip token for neighbor `w`, returning `true` if
/// this occurrence is an added copy.
#[inline]
fn consume_added(skip: &mut [(u32, u32); 4], w: u32) -> bool {
    for e in skip.iter_mut() {
        if e.0 == w && e.1 > 0 {
            e.1 -= 1;
            return true;
        }
    }
    false
}

/// Whether `x` keeps a surviving strict shortest-path parent (level
/// exactly one below, reached neither through an added link nor an
/// already-orphaned vertex).
///
/// # Safety
/// The caller must own source `s` for the duration of the job.
#[inline]
unsafe fn strict_parent_survives(
    c: &CachePtrs,
    rs: &RepairScratch,
    csr: &SlotCsr,
    adds: &[(u32, u32, u32)],
    s: usize,
    x: u32,
    lvl: u16,
) -> bool {
    let mut skip = added_copies(adds, x);
    for &w in csr.neighbors(x) {
        if consume_added(&mut skip, w) {
            continue;
        }
        let wi = w as usize;
        if u32::from(c.get(s, wi)) + 1 == u32::from(lvl) && rs.orphan_ep[wi] != rs.ep {
            return true;
        }
    }
    false
}

/// Decremental phase for one source: rewrites the stored row from the
/// pre-delta distances to `d_del` (graph minus the removals, added
/// links excluded). Orphan descent finds exactly the vertices whose
/// every strict shortest-path parent is gone, then a bucket-Dijkstra
/// re-settles them from the unorphaned boundary, patching
/// `wsum`/`hist`/`ecc`/`nreach` per rewritten entry. Snapshots the row
/// just before the first write when a transaction is open. Returns
/// `None` on distance overflow, otherwise whether any entry was
/// rewritten (a row whose every on-DAG removal keeps a surviving
/// strict parent is untouched, and its aggregates stay exact).
///
/// # Safety
/// The caller must own source `s` exclusively for the duration of the
/// job, and every `RepairCtx` pointer must be live.
unsafe fn del_repair_source(ctx: &RepairCtx, rs: &mut RepairScratch, s: usize) -> Option<bool> {
    let c = &ctx.cache;
    let max_dist = c.max_dist;
    let csr = &*ctx.csr;
    let counts = std::slice::from_raw_parts(ctx.counts, ctx.counts_len);
    let adds = std::slice::from_raw_parts(ctx.adds, ctx.adds_len);
    let dels = std::slice::from_raw_parts(ctx.dels, ctx.dels_len);
    if rs.ep == u32::MAX {
        rs.cand_ep.iter_mut().for_each(|e| *e = 0);
        rs.orphan_ep.iter_mut().for_each(|e| *e = 0);
        rs.settled_ep.iter_mut().for_each(|e| *e = 0);
        rs.ep = 0;
    }
    rs.ep += 1;
    let ep = rs.ep;
    rs.orphans.clear();
    // -- orphan descent ------------------------------------------
    // Seed with the far endpoint of every removal that sat on the
    // shortest-path DAG of `s` (endpoint levels differ by 1).
    let mut lo = max_dist;
    let mut pending = 0usize;
    for &(a, b) in dels {
        let (da, db) = (c.get(s, a as usize), c.get(s, b as usize));
        if da == INVALID_DIST || db == INVALID_DIST || da == db {
            continue;
        }
        let (far, lvl) = if da < db { (b, db) } else { (a, da) };
        let lvl = lvl as usize;
        debug_assert!(lvl < max_dist);
        rs.buckets[lvl].push(far);
        lo = lo.min(lvl);
        pending += 1;
    }
    let mut lvl = lo;
    while pending > 0 && lvl < max_dist {
        while let Some(x) = rs.buckets[lvl].pop() {
            pending -= 1;
            let xi = x as usize;
            if rs.cand_ep[xi] == ep {
                continue;
            }
            rs.cand_ep[xi] = ep;
            if strict_parent_survives(c, rs, csr, adds, s, x, lvl as u16) {
                continue;
            }
            rs.orphan_ep[xi] = ep;
            rs.orphans.push(x);
            // shortest-path children may have lost their last parent
            let mut skip = added_copies(adds, x);
            for &y in csr.neighbors(x) {
                if consume_added(&mut skip, y) {
                    continue;
                }
                let yi = y as usize;
                if c.get(s, yi) == lvl as u16 + 1 && rs.cand_ep[yi] != ep {
                    rs.buckets[lvl + 1].push(y);
                    pending += 1;
                }
            }
        }
        lvl += 1;
    }
    if rs.orphans.is_empty() {
        return Some(false);
    }
    // The row is about to be rewritten: save it now if a snapshot
    // level is open, so witness-protected rows never pay for one.
    if ctx.snap {
        snapshot_into(rs, c, s);
    }
    // -- re-relaxation (unit-weight Dijkstra from the boundary) ---
    let mut lo = max_dist;
    for oi in 0..rs.orphans.len() {
        let x = rs.orphans[oi];
        let mut best = u32::from(INVALID_DIST);
        let mut skip = added_copies(adds, x);
        for &w in csr.neighbors(x) {
            if consume_added(&mut skip, w) {
                continue;
            }
            let wi = w as usize;
            let dw = c.get(s, wi);
            if rs.orphan_ep[wi] != ep && dw != INVALID_DIST {
                best = best.min(u32::from(dw) + 1);
            }
        }
        if best < u32::from(INVALID_DIST) {
            let key = (best as usize).min(max_dist);
            rs.buckets[key].push(x);
            lo = lo.min(key);
        }
    }
    let hist = std::slice::from_raw_parts_mut(c.hist.add(s * max_dist), max_dist);
    let wsum = &mut *c.wsum.add(s);
    let ecc = &mut *c.ecc.add(s);
    let nreach = &mut *c.nreach.add(s);
    let mut overflow = false;
    let mut key = lo;
    while key <= max_dist {
        while let Some(x) = rs.buckets[key].pop() {
            let xi = x as usize;
            if rs.settled_ep[xi] == ep {
                continue;
            }
            rs.settled_ep[xi] = ep;
            if key >= max_dist {
                overflow = true;
                continue; // keep draining the buckets
            }
            // Patch the aggregates in place: orphan distances grow
            // strictly, so the eccentricity only ratchets up here.
            let d_old = c.get(s, xi);
            c.set(s, xi, key as u16);
            debug_assert!((key as u16) > d_old);
            let kx = counts[xi];
            if kx != 0 {
                *wsum += kx as u64 * (key as u64 - d_old as u64);
                hist[d_old as usize] -= 1;
                hist[key] += 1;
                *ecc = (*ecc).max(key as u16);
            }
            let mut skip = added_copies(adds, x);
            for &w in csr.neighbors(x) {
                if consume_added(&mut skip, w) {
                    continue;
                }
                let wi = w as usize;
                if rs.orphan_ep[wi] == ep && rs.settled_ep[wi] != ep {
                    rs.buckets[(key + 1).min(max_dist)].push(w);
                }
            }
        }
        key += 1;
    }
    if overflow {
        return None;
    }
    // orphans the boundary never reached are now unreachable
    let mut ecc_dirty = false;
    for oi in 0..rs.orphans.len() {
        let xi = rs.orphans[oi] as usize;
        if rs.settled_ep[xi] != ep {
            let d_old = c.get(s, xi);
            c.set(s, xi, INVALID_DIST);
            let kx = counts[xi];
            if kx != 0 {
                *wsum -= kx as u64 * (d_old as u64 + 2);
                hist[d_old as usize] -= 1;
                *nreach -= 1;
                if d_old == *ecc {
                    ecc_dirty = true;
                }
            }
        }
    }
    if ecc_dirty {
        // the histogram is current again: its highest non-empty
        // bucket is the surviving eccentricity
        *ecc = hist.iter().rposition(|&cnt| cnt != 0).unwrap_or(0) as u16;
    }
    Some(true)
}

/// Insertion phase for one source: given a row holding `d_del`, seeds
/// each pending add's endpoints with the opposite endpoint's distance
/// plus one and settles the decrease wavefront in ascending key order
/// through the live adjacency (bucket Dijkstra; a popped key at or
/// above the current entry is stale and skipped). Only entries that
/// actually shrink are touched, and the aggregates are patched per
/// write — the eccentricity is re-read from the histogram when the
/// previous maximum shrank. Returns `None` when a new finite distance
/// reaches the cap, otherwise whether anything changed.
///
/// # Safety
/// As [`del_repair_source`].
unsafe fn add_repair_source(
    ctx: &RepairCtx,
    rs: &mut RepairScratch,
    s: usize,
    snapshotted: bool,
) -> Option<bool> {
    let c = &ctx.cache;
    let max_dist = c.max_dist;
    let csr = &*ctx.csr;
    let counts = std::slice::from_raw_parts(ctx.counts, ctx.counts_len);
    let adds = std::slice::from_raw_parts(ctx.adds, ctx.adds_len);
    let mut lo = max_dist;
    let mut seeded = false;
    for &(u, v, _) in adds {
        let (du, dv) = (c.get(s, u as usize), c.get(s, v as usize));
        for (x, cand) in [(v, du.saturating_add(1)), (u, dv.saturating_add(1))] {
            if cand < c.get(s, x as usize) {
                let key = (cand as usize).min(max_dist);
                rs.buckets[key].push(x);
                lo = lo.min(key);
                seeded = true;
            }
        }
    }
    if !seeded {
        return Some(false);
    }
    if !snapshotted && ctx.snap {
        snapshot_into(rs, c, s);
    }
    let hist = std::slice::from_raw_parts_mut(c.hist.add(s * max_dist), max_dist);
    let wsum = &mut *c.wsum.add(s);
    let ecc = &mut *c.ecc.add(s);
    let nreach = &mut *c.nreach.add(s);
    let mut overflow = false;
    let mut ecc_dirty = false;
    let mut key = lo;
    while key <= max_dist {
        while let Some(x) = rs.buckets[key].pop() {
            let xi = x as usize;
            let d_old = c.get(s, xi);
            if key >= d_old as usize {
                continue; // stale: already settled at least as close
            }
            if key >= max_dist {
                overflow = true; // finite but beyond histogram range
                continue; // keep draining the buckets
            }
            c.set(s, xi, key as u16);
            let kx = counts[xi];
            if d_old == INVALID_DIST {
                // newly reachable through an added link
                if kx != 0 {
                    *wsum += kx as u64 * (key as u64 + 2);
                    hist[key] += 1;
                    *nreach += 1;
                    *ecc = (*ecc).max(key as u16);
                }
            } else if kx != 0 {
                *wsum -= kx as u64 * (d_old as u64 - key as u64);
                hist[d_old as usize] -= 1;
                hist[key] += 1;
                if d_old == *ecc {
                    ecc_dirty = true;
                }
            }
            let cand = key + 1;
            for &w in csr.neighbors(x) {
                if cand < usize::from(c.get(s, w as usize)) {
                    rs.buckets[cand.min(max_dist)].push(w);
                }
            }
        }
        key += 1;
    }
    if overflow {
        return None;
    }
    if ecc_dirty {
        // the histogram is current again: its highest non-empty
        // bucket is the surviving eccentricity
        *ecc = hist.iter().rposition(|&cnt| cnt != 0).unwrap_or(0) as u16;
    }
    Some(true)
}

/// Runs both repair phases for one source — the unit of work a repair
/// task executes, identical on the sequential and pool paths. Returns
/// `false` when a repaired distance overflowed the cap (the cache must
/// then be released).
fn repair_one_source(ctx: &RepairCtx, rs: &mut RepairScratch, s: usize) -> bool {
    // SAFETY: source `s` is owned by exactly one task; everything this
    // function writes (row `s`, aggregates of `s`, the worker-local
    // scratch) is private to that task.
    let flags_s = unsafe { *ctx.flags.add(s) };
    let mut changed = false;
    if ctx.dels_len > 0 && flags_s & (DEL_AFF | NO_STRICT) != 0 {
        match unsafe { del_repair_source(ctx, rs, s) } {
            None => return false,
            Some(c) => changed = c,
        }
    }
    if ctx.adds_len > 0 {
        match unsafe { add_repair_source(ctx, rs, s, changed) } {
            None => return false,
            Some(c) => changed |= c,
        }
    }
    rs.touched += u32::from(changed);
    true
}

// ---- persistent evaluation worker pool ---------------------------------

/// One evaluation job, published to the pool by the evaluating thread.
/// Task ids below the batch count (`⌈srcs_len/64⌉`) are 64-wide sweep
/// batches; the rest index into `repair`. All pointers stay valid until
/// the job completes (the publisher blocks).
#[derive(Debug, Clone, Copy)]
struct JobPacket {
    csr: *const SlotCsr,
    counts: *const u32,
    counts_len: usize,
    srcs: *const u32,
    srcs_len: usize,
    scratch: *mut EvalScratch,
    cache: Option<CachePtrs>,
    repair: *const u32,
    repair_len: usize,
    rctx: Option<RepairCtx>,
    rscratch: *mut RepairScratch,
}

// SAFETY: the publisher blocks until every worker finished, scratch
// buffers are indexed per worker, and cached sweeps/repairs write
// disjoint rows.
unsafe impl Send for JobPacket {}
unsafe impl Sync for JobPacket {}

#[derive(Debug)]
struct PoolCtl {
    seq: u64,
    shutdown: bool,
    job: Option<JobPacket>,
    active: usize,
    partials: Vec<BatchSums>,
}

/// One worker's cumulative scheduler counters. Written with relaxed
/// atomics — once per job by the owning worker, pushes/peak by the
/// publisher at seed time — and read by [`SearchState::pool_stats`].
/// Untouched (a single relaxed load per job) unless telemetry is on.
#[derive(Debug, Default)]
struct LaneStats {
    pushes: AtomicU64,
    pops: AtomicU64,
    steals: AtomicU64,
    steal_fails: AtomicU64,
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
    peak_depth: AtomicU64,
}

#[derive(Debug)]
struct PoolShared {
    ctl: Mutex<PoolCtl>,
    go: Condvar,
    done: Condvar,
    /// One work-stealing deque per worker (index 0 = the publisher).
    /// The publisher seeds each with a contiguous shard of the task
    /// list before the job is published; tasks are never re-pushed, so
    /// an observed-empty deque stays empty for the rest of the job.
    deques: Vec<Deque<u32>>,
    overflow: AtomicBool,
    /// Per-worker scheduler telemetry; populated only while
    /// [`PoolShared::telemetry`] is set.
    lanes: Vec<LaneStats>,
    telemetry: AtomicBool,
}

/// Persistent evaluation workers: spawned once per [`SearchState`],
/// parked on a condvar between proposals, woken by sequence number.
/// Replaces the per-proposal `std::thread::scope` spawn of the previous
/// engine — the steady-state eval path creates no threads at all.
#[derive(Debug)]
struct EvalPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Executes this worker's share of `job`: drains the worker's own deque
/// (LIFO), then steals the oldest tasks from siblings until every deque
/// has been observed empty.
fn pool_process(job: &JobPacket, worker: usize, shared: &PoolShared) -> BatchSums {
    let telemetry = shared.telemetry.load(Ordering::Relaxed);
    let job_start = telemetry.then(Instant::now);
    let (mut busy_ns, mut pops, mut steals, mut steal_fails) = (0u64, 0u64, 0u64, 0u64);
    // SAFETY: the publisher keeps every pointer alive until the job is
    // complete, and `scratch.add(worker)` / `rscratch.add(worker)` are
    // this worker's exclusive buffers.
    let (csr, counts, srcs, scratch) = unsafe {
        (
            &*job.csr,
            std::slice::from_raw_parts(job.counts, job.counts_len),
            std::slice::from_raw_parts(job.srcs, job.srcs_len),
            &mut *job.scratch.add(worker),
        )
    };
    let repair: &[u32] = if job.repair_len == 0 {
        &[]
    } else {
        // SAFETY: as above.
        unsafe { std::slice::from_raw_parts(job.repair, job.repair_len) }
    };
    let nbatches = srcs.len().div_ceil(64);
    let mut acc = BatchSums::default();
    let exec = |t: usize, acc: &mut BatchSums, scratch: &mut EvalScratch| {
        if t < nbatches {
            let lo = t * 64;
            let hi = (lo + 64).min(srcs.len());
            match &job.cache {
                Some(c) => {
                    if !sweep_batch_cached(csr, counts, &srcs[lo..hi], scratch, c) {
                        shared.overflow.store(true, Ordering::Relaxed);
                    }
                }
                None => acc.absorb(sweep_batch(csr, counts, &srcs[lo..hi], scratch)),
            }
        } else {
            let s = repair[t - nbatches] as usize;
            let ctx = job.rctx.as_ref().expect("repair task without context");
            // SAFETY: worker-indexed exclusive scratch (see above).
            let rs = unsafe { &mut *job.rscratch.add(worker) };
            if !repair_one_source(ctx, rs, s) {
                shared.overflow.store(true, Ordering::Relaxed);
            }
        }
    };
    // When telemetry is on, each task execution is bracketed by two
    // clock reads (tens of ns against µs-scale BFS batches); when off,
    // `exec` runs bare and the whole function costs one relaxed load.
    let timed_exec =
        |t: usize, acc: &mut BatchSums, scratch: &mut EvalScratch, busy_ns: &mut u64| {
            if telemetry {
                let t0 = Instant::now();
                exec(t, acc, scratch);
                *busy_ns += t0.elapsed().as_nanos() as u64;
            } else {
                exec(t, acc, scratch);
            }
        };
    while let Some(t) = shared.deques[worker].pop() {
        pops += 1;
        timed_exec(t as usize, &mut acc, scratch, &mut busy_ns);
    }
    let nw = shared.deques.len();
    if nw > 1 {
        let mut victim = (worker + 1) % nw;
        let mut empties = 0usize;
        while empties < nw - 1 {
            if victim == worker {
                victim = (victim + 1) % nw;
                continue;
            }
            match shared.deques[victim].steal() {
                Steal::Success(t) => {
                    steals += 1;
                    timed_exec(t as usize, &mut acc, scratch, &mut busy_ns);
                    empties = 0;
                }
                Steal::Retry => {
                    steal_fails += 1;
                    std::hint::spin_loop();
                    empties = 0;
                }
                Steal::Empty => {
                    steal_fails += 1;
                    empties += 1;
                    victim = (victim + 1) % nw;
                }
            }
        }
    }
    if let Some(t0) = job_start {
        let total_ns = t0.elapsed().as_nanos() as u64;
        let lane = &shared.lanes[worker];
        lane.pops.fetch_add(pops, Ordering::Relaxed);
        lane.steals.fetch_add(steals, Ordering::Relaxed);
        lane.steal_fails.fetch_add(steal_fails, Ordering::Relaxed);
        lane.busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
        lane.idle_ns
            .fetch_add(total_ns.saturating_sub(busy_ns), Ordering::Relaxed);
    }
    acc
}

impl EvalPool {
    /// Spawns `extra` parked workers (the evaluating thread itself acts
    /// as worker 0); each deque holds up to `task_cap` tasks.
    fn spawn(extra: usize, task_cap: usize) -> Self {
        let shared = Arc::new(PoolShared {
            ctl: Mutex::new(PoolCtl {
                seq: 0,
                shutdown: false,
                job: None,
                active: 0,
                partials: vec![BatchSums::default(); extra + 1],
            }),
            go: Condvar::new(),
            done: Condvar::new(),
            deques: (0..=extra)
                .map(|_| Deque::with_capacity(task_cap))
                .collect(),
            overflow: AtomicBool::new(false),
            lanes: (0..=extra).map(|_| LaneStats::default()).collect(),
            telemetry: AtomicBool::new(false),
        });
        let handles = (1..=extra)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut last_seen = 0u64;
                    loop {
                        let job = {
                            let mut ctl = shared.ctl.lock().expect("pool lock");
                            loop {
                                if ctl.shutdown {
                                    return;
                                }
                                if ctl.seq != last_seen {
                                    if let Some(job) = ctl.job {
                                        last_seen = ctl.seq;
                                        break job;
                                    }
                                }
                                ctl = shared.go.wait(ctl).expect("pool wait");
                            }
                        };
                        let acc = pool_process(&job, w, &shared);
                        let mut ctl = shared.ctl.lock().expect("pool lock");
                        ctl.partials[w] = acc;
                        ctl.active -= 1;
                        if ctl.active == 0 {
                            shared.done.notify_one();
                        }
                    }
                })
            })
            .collect();
        Self { shared, handles }
    }

    /// Runs one job of `ntasks` tasks across the pool (the caller
    /// participates as worker 0) and returns the combined sums plus the
    /// overflow flag.
    fn run(&self, job: JobPacket, ntasks: usize) -> (BatchSums, bool) {
        self.shared.overflow.store(false, Ordering::Relaxed);
        // Seed each worker's deque with a contiguous shard of the task
        // list (worker i owns tasks [i·per, (i+1)·per)): contiguous
        // source ranges keep each worker's row writes dense in memory,
        // and stealing rebalances the tail. The job publish below
        // (mutex + condvar) orders these pushes before any worker's
        // first pop or steal.
        let nw = self.handles.len() + 1;
        let per = ntasks.div_ceil(nw);
        let telemetry = self.shared.telemetry.load(Ordering::Relaxed);
        for (w, dq) in self.shared.deques.iter().enumerate() {
            debug_assert!(dq.is_empty());
            let lo = (w * per).min(ntasks);
            let hi = ((w + 1) * per).min(ntasks);
            for t in lo..hi {
                assert!(dq.push(t as u32), "deque sized below the job's task count");
            }
            if telemetry && hi > lo {
                // Tasks are never re-pushed mid-job, so the seeded
                // shard size is this job's peak depth for the deque.
                let lane = &self.shared.lanes[w];
                lane.pushes.fetch_add((hi - lo) as u64, Ordering::Relaxed);
                lane.peak_depth
                    .fetch_max((hi - lo) as u64, Ordering::Relaxed);
            }
        }
        {
            let mut ctl = self.shared.ctl.lock().expect("pool lock");
            ctl.seq += 1;
            ctl.job = Some(job);
            ctl.active = self.handles.len();
            for p in &mut ctl.partials {
                *p = BatchSums::default();
            }
        }
        self.shared.go.notify_all();
        let mine = pool_process(&job, 0, &self.shared);
        let mut ctl = self.shared.ctl.lock().expect("pool lock");
        while ctl.active > 0 {
            ctl = self.shared.done.wait(ctl).expect("pool wait");
        }
        ctl.job = None;
        let mut totals = mine;
        for p in &ctl.partials {
            totals.absorb(*p);
        }
        (totals, self.shared.overflow.load(Ordering::Relaxed))
    }
}

impl Drop for EvalPool {
    fn drop(&mut self) {
        {
            let mut ctl = self.shared.ctl.lock().expect("pool lock");
            ctl.shutdown = true;
        }
        self.shared.go.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

// ---- evaluation outcome & stats ----------------------------------------

/// Which code path scored the last proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalPathKind {
    /// Full batched sweep over every hostful source.
    #[default]
    Full,
    /// Affected-source re-sweep over the distance cache.
    Incremental,
    /// Guarded evaluation proved the move hopeless without any BFS.
    EarlyRejected,
}

/// Running counters for the evaluation paths, exposed for telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalStats {
    /// Evaluations that swept every hostful source.
    pub full: u64,
    /// Evaluations served by the affected-source re-sweep.
    pub incremental: u64,
    /// Guarded evaluations rejected from the lower bound alone.
    pub early_rejected: u64,
    /// Sources fixed by the in-place repair path instead of a re-BFS
    /// (a subset of the incremental evaluations' affected sources).
    pub repaired: u64,
    /// Cache rows rewritten by a full re-BFS sweep (the expensive
    /// complement of [`EvalStats::repaired`]).
    pub swept: u64,
    /// Jobs dispatched to the work-stealing worker pool.
    pub pool_jobs: u64,
    /// Path taken by the most recent evaluation.
    pub last_kind: EvalPathKind,
    /// Sources re-swept by the most recent evaluation.
    pub last_affected: u32,
    /// Source universe of the most recent evaluation (every switch on
    /// the cached path, hostful switches on the plain path).
    pub last_sources: u32,
}

/// One worker's cumulative scheduler counters, as returned by
/// [`SearchState::pool_stats`]. All values are totals since the pool
/// was spawned (telemetry-off stretches contribute nothing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolWorkerStats {
    /// Tasks seeded into this worker's deque by job publishers.
    pub pushes: u64,
    /// Tasks this worker took from its own deque.
    pub pops: u64,
    /// Tasks this worker stole from siblings.
    pub steals: u64,
    /// Steal attempts that lost a race or found the victim empty.
    pub steal_fails: u64,
    /// Wall nanoseconds spent executing tasks.
    pub busy_ns: u64,
    /// Wall nanoseconds inside jobs but not executing (stealing,
    /// spinning, observing empty deques).
    pub idle_ns: u64,
    /// Largest task count ever seeded into this worker's deque.
    pub peak_depth: u64,
}

/// Result of [`SearchState::evaluate_guarded`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvalOutcome {
    /// The graph was scored.
    Metrics(PathMetrics),
    /// Some host pair is unreachable.
    Disconnected,
    /// The proposal was provably worse than the caller's threshold; no
    /// BFS ran and the cache is untouched. Contains the proven h-ASPL
    /// lower bound.
    EarlyRejected(f64),
}

/// One entry of the undo log; each names the *applied* mutation, so
/// rollback performs its inverse.
#[derive(Debug, Clone, Copy)]
enum UndoOp {
    AddedLink(Switch, Switch),
    RemovedLink(Switch, Switch),
    /// Host `.0` was moved; it previously sat on switch `.1`.
    MovedHost(Host, Switch),
}

/// The single source of truth for everything the local search reads or
/// mutates: the [`HostSwitchGraph`], a mutation-tracked [`SlotCsr`], the
/// per-switch host counts, and the [`EdgeSet`] used for move sampling.
///
/// Moves go through [`SearchState::apply_swap`] /
/// [`SearchState::apply_swing`] inside a [`SearchState::begin`] …
/// [`SearchState::commit`]/[`SearchState::rollback`] transaction, which
/// keeps all four structures consistent by construction; the structures
/// are never rebuilt after [`SearchState::new`]. Scoring via
/// [`SearchState::evaluate`] reuses per-worker [`EvalScratch`] buffers —
/// after warm-up a proposal allocates nothing — and, whenever the
/// [`SearchConfig`] provisions a distance cache (dense or packed),
/// re-sweeps only the sources whose distance vectors the move can
/// actually change (see the module docs). On multi-worker engines the
/// re-sweeps *and* per-source repairs of one evaluation are scheduled
/// over the pool's work-stealing deques as a single job.
#[derive(Debug)]
pub struct SearchState {
    g: HostSwitchGraph,
    csr: SlotCsr,
    counts: Vec<u32>,
    edges: EdgeSet,
    hostful: u64,
    undo: Vec<UndoOp>,
    txn_marks: Vec<usize>,
    workers: usize,
    scratch: Vec<EvalScratch>,
    srcs: Vec<u32>,
    cache: Option<DistCache>,
    pool: Option<EvalPool>,
    rebfs_buf: Vec<u32>,
    repair_buf: Vec<u32>,
    /// Per-worker repair scratch (index 0 doubles as the sequential
    /// path's scratch).
    rscratch: Vec<RepairScratch>,
    /// Pending delta split for the repair tasks, reused per evaluation.
    adds_buf: Vec<(u32, u32, u32)>,
    dels_buf: Vec<(u32, u32)>,
    /// Reusable `(source, worker, index)` keys for the deterministic
    /// post-job snapshot merge.
    snap_order: Vec<(u32, u32, u32)>,
    stats: EvalStats,
}

impl SearchState {
    /// Builds the engine around `start`. `parallel` follows
    /// [`resolve_parallel_eval`]: `None` auto-selects threading from the
    /// switch count, `Some(_)` overrides.
    ///
    /// Fails with [`GraphError::Disconnected`] if some host pair is
    /// unreachable (the annealer requires a connected start), and with
    /// [`GraphError::InvalidParameters`] on fewer than two hosts.
    pub fn new(start: HostSwitchGraph, parallel: Option<bool>) -> Result<Self, GraphError> {
        let workers = resolve_parallel_eval(parallel, start.num_switches());
        Self::with_search(start, workers, SearchConfig::default())
    }

    /// As [`SearchState::new`] with an explicit evaluation worker count
    /// (clamped to at least 1).
    pub fn with_workers(start: HostSwitchGraph, workers: usize) -> Result<Self, GraphError> {
        Self::with_search(start, workers, SearchConfig::default())
    }

    /// Compatibility constructor: explicit worker count and whether the
    /// incremental distance cache may be used (`false` forces the full
    /// batched sweep on every evaluation — the correctness oracle and
    /// the baseline of the `incremental_eval` benchmark).
    pub fn with_options(
        start: HostSwitchGraph,
        workers: usize,
        distance_cache: bool,
    ) -> Result<Self, GraphError> {
        let cfg = if distance_cache {
            SearchConfig::default()
        } else {
            SearchConfig::off()
        };
        Self::with_search(start, workers, cfg)
    }

    /// Checkpoint-restore constructor: as [`SearchState::with_workers`]
    /// but with an explicit [`EdgeSet`] storage order.
    ///
    /// The edge set's internal order after a long run is a function of
    /// the whole move history (swap-remove on every removal), and move
    /// sampling indexes into it — so resuming a run bit-identically
    /// requires restoring that exact order, not rebuilding it from the
    /// graph. `edge_order` must hold exactly the graph's links, each
    /// once, in the checkpointed order.
    pub fn with_edge_order(
        start: HostSwitchGraph,
        workers: usize,
        edge_order: &[(Switch, Switch)],
    ) -> Result<Self, GraphError> {
        Self::with_search_edge_order(start, workers, SearchConfig::default(), edge_order)
    }

    /// Full-control constructor: explicit worker count and cache
    /// provisioning policy (see [`SearchConfig::resolve_codec`]).
    pub fn with_search(
        start: HostSwitchGraph,
        workers: usize,
        cfg: SearchConfig,
    ) -> Result<Self, GraphError> {
        if start.num_hosts() < 2 {
            return Err(GraphError::InvalidParameters(
                "search needs at least two hosts".into(),
            ));
        }
        let counts = start.host_counts();
        let workers = workers.max(1);
        let m = start.num_switches() as usize;
        // worst case per job: every source re-swept in 64-wide batches
        // plus every source repaired
        let task_cap = m + m.div_ceil(64);
        let mut state = Self {
            csr: SlotCsr::from_graph(&start),
            edges: EdgeSet::from_graph(&start),
            hostful: counts.iter().filter(|&&k| k > 0).count() as u64,
            counts,
            g: start,
            undo: Vec::new(),
            txn_marks: Vec::new(),
            workers,
            scratch: vec![EvalScratch::default(); workers],
            srcs: Vec::new(),
            cache: cfg
                .resolve_codec(m)
                .map(|codec| DistCache::with_codec(m, codec)),
            pool: (workers > 1).then(|| EvalPool::spawn(workers - 1, task_cap)),
            rebfs_buf: Vec::new(),
            repair_buf: Vec::new(),
            rscratch: (0..workers).map(|_| RepairScratch::default()).collect(),
            adds_buf: Vec::new(),
            dels_buf: Vec::new(),
            snap_order: Vec::new(),
            stats: EvalStats::default(),
        };
        if state.evaluate().is_none() {
            return Err(GraphError::Disconnected);
        }
        Ok(state)
    }

    /// As [`SearchState::with_search`] with an explicit [`EdgeSet`]
    /// storage order (see [`SearchState::with_edge_order`]).
    pub fn with_search_edge_order(
        start: HostSwitchGraph,
        workers: usize,
        cfg: SearchConfig,
        edge_order: &[(Switch, Switch)],
    ) -> Result<Self, GraphError> {
        let edges = EdgeSet::from_ordered(edge_order).ok_or_else(|| {
            GraphError::InvalidParameters("edge order contains duplicates".into())
        })?;
        if edges.len() != start.num_links()
            || edge_order.iter().any(|&(a, b)| !start.has_link(a, b))
        {
            return Err(GraphError::InvalidParameters(
                "edge order does not match the graph's links".into(),
            ));
        }
        let mut state = Self::with_search(start, workers, cfg)?;
        state.edges = edges;
        Ok(state)
    }

    /// The owned graph. Mutate it only through this engine.
    #[inline]
    pub fn graph(&self) -> &HostSwitchGraph {
        &self.g
    }

    /// The link multiset kept in sync with the graph (for move sampling).
    #[inline]
    pub fn edges(&self) -> &EdgeSet {
        &self.edges
    }

    /// The in-place-maintained adjacency.
    #[inline]
    pub fn csr(&self) -> &SlotCsr {
        &self.csr
    }

    /// `k_s` per switch, maintained incrementally.
    #[inline]
    pub fn host_counts(&self) -> &[u32] {
        &self.counts
    }

    /// Number of evaluation worker threads this state resolved to.
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether the incremental distance cache is live for this instance.
    #[inline]
    pub fn cache_active(&self) -> bool {
        self.cache.as_ref().is_some_and(|c| !c.disabled)
    }

    /// The row codec the live distance cache uses, or `None` when every
    /// evaluation is a full sweep.
    #[inline]
    pub fn cache_codec(&self) -> Option<CacheCodec> {
        self.cache.as_ref().filter(|c| !c.disabled).map(|c| c.codec)
    }

    /// Evaluation-path counters (full vs incremental vs early-rejected).
    #[inline]
    pub fn eval_stats(&self) -> &EvalStats {
        &self.stats
    }

    /// Turns per-worker scheduler telemetry on or off. Off (the
    /// default), the pool's hot path pays one relaxed load per job;
    /// on, each task execution is clock-bracketed and the counters
    /// land in [`SearchState::pool_stats`].
    pub fn set_pool_telemetry(&self, on: bool) {
        if let Some(pool) = &self.pool {
            pool.shared.telemetry.store(on, Ordering::Relaxed);
        }
    }

    /// Cumulative per-worker scheduler counters (index 0 = the
    /// evaluating thread). Empty on single-worker engines; all zeros
    /// until [`SearchState::set_pool_telemetry`] enables collection.
    pub fn pool_stats(&self) -> Vec<PoolWorkerStats> {
        self.pool.as_ref().map_or_else(Vec::new, |pool| {
            pool.shared
                .lanes
                .iter()
                .map(|l| PoolWorkerStats {
                    pushes: l.pushes.load(Ordering::Relaxed),
                    pops: l.pops.load(Ordering::Relaxed),
                    steals: l.steals.load(Ordering::Relaxed),
                    steal_fails: l.steal_fails.load(Ordering::Relaxed),
                    busy_ns: l.busy_ns.load(Ordering::Relaxed),
                    idle_ns: l.idle_ns.load(Ordering::Relaxed),
                    peak_depth: l.peak_depth.load(Ordering::Relaxed),
                })
                .collect()
        })
    }

    /// Resident bytes of the live distance cache (row store, per-source
    /// aggregates, and transactional snapshots). 0 when no cache is
    /// provisioned or it disabled itself.
    pub fn cache_resident_bytes(&self) -> usize {
        self.cache
            .as_ref()
            .filter(|c| !c.disabled)
            .map_or(0, DistCache::resident_bytes)
    }

    /// Consumes the engine, returning the graph.
    pub fn into_graph(self) -> HostSwitchGraph {
        self.g
    }

    // ---- transactional mutation ------------------------------------

    /// Opens a transaction. Transactions nest; each `begin` must be
    /// matched by exactly one [`Self::commit`] or [`Self::rollback`].
    pub fn begin(&mut self) {
        self.txn_marks.push(self.undo.len());
        if let Some(c) = &mut self.cache {
            c.mark();
        }
    }

    /// Whether a transaction is currently open.
    #[inline]
    pub fn in_txn(&self) -> bool {
        !self.txn_marks.is_empty()
    }

    /// Makes the innermost transaction's mutations permanent (or part of
    /// the enclosing transaction, if one is open).
    pub fn commit(&mut self) {
        self.txn_marks.pop().expect("commit without begin");
        if let Some(c) = &mut self.cache {
            c.commit_mark();
        }
        if self.txn_marks.is_empty() {
            self.undo.clear();
        }
    }

    /// Reverts every mutation of the innermost transaction, restoring the
    /// graph, CSR, host counts, and edge set to their state at `begin`.
    /// The distance cache restores the snapshots of every row an
    /// in-transaction evaluation overwrote and rewinds its pending edge
    /// delta, so a rejected proposal leaves the cache exactly as `begin`
    /// found it — the *next* proposal's affected set is not inflated by
    /// the rejected one.
    pub fn rollback(&mut self) {
        let mark = self.txn_marks.pop().expect("rollback without begin");
        while self.undo.len() > mark {
            match self.undo.pop().expect("len > mark") {
                UndoOp::AddedLink(a, b) => self.raw_unlink(a, b),
                UndoOp::RemovedLink(a, b) => self.raw_link(a, b),
                UndoOp::MovedHost(h, from) => self.raw_move_host(h, from),
            }
        }
        if let Some(c) = &mut self.cache {
            c.rollback_mark(&self.counts);
        }
    }

    fn raw_link(&mut self, a: Switch, b: Switch) {
        self.g.add_link(a, b).expect("undo-logged link re-add");
        self.csr.add_link(a, b);
        self.edges.insert(a, b);
        if let Some(c) = &mut self.cache {
            c.note_edge(a, b, 1);
        }
    }

    fn raw_unlink(&mut self, a: Switch, b: Switch) {
        self.g.remove_link(a, b).expect("undo-logged link removal");
        self.csr.remove_link(a, b);
        self.edges.remove(a, b);
        if let Some(c) = &mut self.cache {
            c.note_edge(a, b, -1);
        }
    }

    fn raw_move_host(&mut self, h: Host, to: Switch) {
        let from = self.g.switch_of(h);
        self.g.move_host(h, to).expect("undo-logged host move");
        let from_old = self.counts[from as usize];
        let to_old = self.counts[to as usize];
        self.counts[from as usize] -= 1;
        if self.counts[from as usize] == 0 {
            self.hostful -= 1;
        }
        if self.counts[to as usize] == 0 {
            self.hostful += 1;
        }
        self.counts[to as usize] += 1;
        if let Some(c) = &mut self.cache {
            c.note_host_delta(from, from_old, from_old - 1);
            c.note_host_delta(to, to_old, to_old + 1);
        }
    }

    fn link(&mut self, a: Switch, b: Switch) {
        self.raw_link(a, b);
        self.undo.push(UndoOp::AddedLink(a, b));
    }

    fn unlink(&mut self, a: Switch, b: Switch) {
        self.raw_unlink(a, b);
        self.undo.push(UndoOp::RemovedLink(a, b));
    }

    fn move_host(&mut self, h: Host, to: Switch) {
        let from = self.g.switch_of(h);
        self.raw_move_host(h, to);
        self.undo.push(UndoOp::MovedHost(h, from));
    }

    /// Applies a swap (Fig. 2) to every owned structure. Must be inside a
    /// transaction; invalid swaps leave the state untouched.
    pub fn apply_swap(&mut self, s: Swap) -> Result<(), GraphError> {
        assert!(self.in_txn(), "apply_swap outside a transaction");
        if !s.is_valid(&self.g) {
            return Err(GraphError::InvalidParameters(format!("invalid swap {s:?}")));
        }
        self.unlink(s.a, s.b);
        self.unlink(s.c, s.d);
        self.link(s.a, s.d);
        self.link(s.c, s.b);
        Ok(())
    }

    /// Applies a swing (Fig. 3) to every owned structure, returning the
    /// host that moved. Must be inside a transaction; invalid swings leave
    /// the state untouched.
    pub fn apply_swing(&mut self, s: Swing) -> Result<Host, GraphError> {
        assert!(self.in_txn(), "apply_swing outside a transaction");
        if !s.is_valid(&self.g) {
            return Err(GraphError::InvalidParameters(format!(
                "invalid swing {s:?}"
            )));
        }
        let h = *self.g.hosts_of(s.c).last().expect("validated non-empty");
        self.unlink(s.a, s.b);
        self.move_host(h, s.b);
        self.link(s.a, s.c);
        Ok(h)
    }

    // ---- evaluation -------------------------------------------------

    /// Scores the current (possibly uncommitted) graph: h-ASPL, diameter,
    /// and total pair length, or `None` if some host pair is unreachable.
    ///
    /// On cache-backed instances only the sources affected by the edge
    /// delta since the last evaluation are re-swept; otherwise (and as
    /// the fallback) the full batched BFS runs over the in-place CSR and
    /// reused scratch.
    pub fn evaluate(&mut self) -> Option<PathMetrics> {
        match self.evaluate_guarded(None) {
            EvalOutcome::Metrics(m) => Some(m),
            EvalOutcome::Disconnected => None,
            EvalOutcome::EarlyRejected(_) => unreachable!("no reject threshold given"),
        }
    }

    /// As [`Self::evaluate`], but with an optional early-reject
    /// threshold: if the engine can prove from the cached distances alone
    /// that the new h-ASPL exceeds `reject_above` (possible when no
    /// added link shortcuts any source and some removed link strictly
    /// lengthens a path), it returns [`EvalOutcome::EarlyRejected`]
    /// without running any BFS and without touching the cache — the
    /// caller is expected to roll the proposal back.
    pub fn evaluate_guarded(&mut self, reject_above: Option<f64>) -> EvalOutcome {
        let n = self.g.num_hosts() as u64;
        self.srcs.clear();
        let counts = &self.counts;
        self.srcs
            .extend((0..self.csr.len() as u32).filter(|&s| counts[s as usize] > 0));
        if self.cache_active() {
            if let Some(outcome) = self.evaluate_cached(n, reject_above) {
                return outcome;
            }
            // the cached sweep overflowed the codec's distance cap: drop
            // the cache and fall through to the plain path
            if let Some(c) = &mut self.cache {
                c.release();
            }
        }
        let totals = self.sweep_all_plain();
        self.stats.full += 1;
        self.stats.last_kind = EvalPathKind::Full;
        self.stats.last_affected = self.srcs.len() as u32;
        self.stats.last_sources = self.srcs.len() as u32;
        self.finish(n, totals)
    }

    /// The cache-backed evaluation path; `None` means the cache
    /// overflowed and the caller must fall back to the plain sweep.
    ///
    /// Re-sweeps and per-source repairs are one combined job: sweeps
    /// rewrite *invalid* rows, repairs rewrite *valid* rows, and both
    /// touch only their own source's row and aggregates, so the tasks
    /// are independent and the pool schedules them over its
    /// work-stealing deques in any order. All reductions (path sums,
    /// snapshot merge) happen in deterministic sequential order
    /// afterwards, so the result is bit-identical for any worker count.
    fn evaluate_cached(&mut self, n: u64, reject_above: Option<f64>) -> Option<EvalOutcome> {
        let in_txn = self.in_txn();
        let cache = self.cache.as_mut().expect("cache_active checked");
        let scan = cache.scan_delta(
            &self.csr,
            &self.counts,
            &mut self.rebfs_buf,
            &mut self.repair_buf,
        );
        if let Some(limit) = reject_above {
            if scan.guardable && !scan.invalid_hostful {
                let weighted = cache.lower_bound_weighted(&self.counts, &scan);
                let lb = finalize_metrics(n, &self.counts, weighted, 0, weighted > 0).haspl;
                if lb > limit {
                    self.stats.early_rejected += 1;
                    self.stats.last_kind = EvalPathKind::EarlyRejected;
                    self.stats.last_affected = 0;
                    self.stats.last_sources = self.srcs.len() as u32;
                    return Some(EvalOutcome::EarlyRejected(lb));
                }
            }
        }
        let full = self.rebfs_buf.len() == self.csr.len();
        let m = self.csr.len();
        let cache = self.cache.as_mut().expect("cache_active checked");
        if in_txn {
            // Rows rewritten wholesale by re-BFS are snapshotted here;
            // the repair path saves its rows lazily at the write sites,
            // so conservatively-routed rows a witness protects never
            // pay for a copy.
            for &s in self.rebfs_buf.iter() {
                cache.snapshot_row(s);
            }
        }
        // split the pending delta once for every repair task
        self.adds_buf.clear();
        self.dels_buf.clear();
        for &(a, b, net) in &cache.edge_delta {
            if net > 0 {
                self.adds_buf.push((a, b, net as u32));
            } else if net < 0 {
                self.dels_buf.push((a, b));
            }
        }
        let max_dist = cache.max_dist;
        let ptrs = cache.ptrs();
        let rctx = RepairCtx {
            cache: ptrs,
            flags: cache.flags.as_ptr(),
            csr: &self.csr,
            counts: self.counts.as_ptr(),
            counts_len: self.counts.len(),
            adds: self.adds_buf.as_ptr(),
            adds_len: self.adds_buf.len(),
            dels: self.dels_buf.as_ptr(),
            dels_len: self.dels_buf.len(),
            snap: in_txn,
        };
        for rs in &mut self.rscratch {
            rs.ensure(m, max_dist);
            rs.reset_job();
        }
        let nbatches = self.rebfs_buf.len().div_ceil(64);
        let ntasks = nbatches + self.repair_buf.len();
        let ok = if ntasks == 0 {
            true
        } else if self.workers > 1 && (self.rebfs_buf.len() > 64 || ntasks >= POOL_TASK_THRESHOLD) {
            self.stats.pool_jobs += 1;
            let job = JobPacket {
                csr: &self.csr,
                counts: self.counts.as_ptr(),
                counts_len: self.counts.len(),
                srcs: self.rebfs_buf.as_ptr(),
                srcs_len: self.rebfs_buf.len(),
                scratch: self.scratch.as_mut_ptr(),
                cache: Some(ptrs),
                repair: self.repair_buf.as_ptr(),
                repair_len: self.repair_buf.len(),
                rctx: Some(rctx),
                rscratch: self.rscratch.as_mut_ptr(),
            };
            let (_, overflow) = self.pool.as_ref().expect("workers > 1").run(job, ntasks);
            !overflow
        } else {
            let mut ok = true;
            for lo in (0..self.rebfs_buf.len()).step_by(64) {
                let hi = (lo + 64).min(self.rebfs_buf.len());
                ok &= sweep_batch_cached(
                    &self.csr,
                    &self.counts,
                    &self.rebfs_buf[lo..hi],
                    &mut self.scratch[0],
                    &ptrs,
                );
            }
            if ok {
                for &s in &self.repair_buf {
                    if !repair_one_source(&rctx, &mut self.rscratch[0], s as usize) {
                        ok = false;
                        break;
                    }
                }
            }
            ok
        };
        if !ok {
            return None;
        }
        let cache = self.cache.as_mut().expect("cache_active checked");
        if in_txn {
            // Merge the worker-local row snapshots into the cache's
            // stack in ascending source order — deterministic no matter
            // which worker executed (or stole) each repair task. Within
            // one evaluation each source is saved at most once, and
            // across evaluations append order preserves time order, so
            // rollback's reverse replay still restores the earliest
            // (pre-transaction) image last.
            self.snap_order.clear();
            for (w, rs) in self.rscratch.iter().enumerate() {
                for (i, &(s, _, _)) in rs.snaps.iter().enumerate() {
                    self.snap_order.push((s, w as u32, i as u32));
                }
            }
            self.snap_order.sort_unstable();
            for &(s, w, i) in &self.snap_order {
                let rs = &self.rscratch[w as usize];
                let (_, was_valid, start) = rs.snaps[i as usize];
                let end = rs
                    .snaps
                    .get(i as usize + 1)
                    .map_or(rs.snap_rle.len(), |&(_, _, e)| e as usize);
                cache
                    .snap_src
                    .push((s, was_valid, cache.snap_rle.len() as u32));
                cache
                    .snap_rle
                    .extend_from_slice(&rs.snap_rle[start as usize..end]);
            }
        }
        cache.touched = self.rscratch.iter().map(|rs| rs.touched).sum();
        cache.edge_delta.clear();
        let totals = cache.totals(&self.counts);
        if full {
            self.stats.full += 1;
            self.stats.last_kind = EvalPathKind::Full;
        } else {
            self.stats.incremental += 1;
            self.stats.last_kind = EvalPathKind::Incremental;
        }
        let touched = self.cache.as_ref().expect("cache_active checked").touched;
        self.stats.repaired += u64::from(touched);
        self.stats.swept += self.rebfs_buf.len() as u64;
        self.stats.last_affected = self.rebfs_buf.len() as u32 + touched;
        self.stats.last_sources = self.csr.len() as u32;
        Some(self.finish(n, totals))
    }

    /// Full batched sweep with no cache involvement, on the pool when
    /// the instance is large enough.
    fn sweep_all_plain(&mut self) -> BatchSums {
        if self.workers > 1 && self.srcs.len() > 64 {
            self.stats.pool_jobs += 1;
            let job = JobPacket {
                csr: &self.csr,
                counts: self.counts.as_ptr(),
                counts_len: self.counts.len(),
                srcs: self.srcs.as_ptr(),
                srcs_len: self.srcs.len(),
                scratch: self.scratch.as_mut_ptr(),
                cache: None,
                repair: std::ptr::null(),
                repair_len: 0,
                rctx: None,
                rscratch: self.rscratch.as_mut_ptr(),
            };
            let ntasks = self.srcs.len().div_ceil(64);
            self.pool.as_ref().expect("workers > 1").run(job, ntasks).0
        } else {
            let mut totals = BatchSums::default();
            for lo in (0..self.srcs.len()).step_by(64) {
                let hi = (lo + 64).min(self.srcs.len());
                totals.absorb(sweep_batch(
                    &self.csr,
                    &self.counts,
                    &self.srcs[lo..hi],
                    &mut self.scratch[0],
                ));
            }
            totals
        }
    }

    /// Connectivity check plus the shared metric accounting.
    fn finish(&self, n: u64, totals: BatchSums) -> EvalOutcome {
        // every source must have reached every hostful switch
        if totals.reached != self.srcs.len() as u64 * self.hostful {
            return EvalOutcome::Disconnected;
        }
        EvalOutcome::Metrics(finalize_metrics(
            n,
            &self.counts,
            totals.weighted,
            totals.max_d,
            totals.weighted > 0,
        ))
    }

    /// Debug-grade cross-check that every incremental structure matches a
    /// from-scratch derivation (used by the property suites): host
    /// counts, adjacency, edge set, and — when the distance cache is live
    /// — its aggregates against its rows and, once the pending edge delta
    /// is settled, its rows against fresh single-source BFS distances.
    pub fn check_consistency(&self) -> Result<(), String> {
        let fresh_counts = self.g.host_counts();
        if self.counts != fresh_counts {
            return Err(format!(
                "host counts diverged: incremental {:?} vs fresh {:?}",
                self.counts, fresh_counts
            ));
        }
        let fresh = SwitchCsr::from_graph(&self.g);
        for s in 0..self.csr.len() as u32 {
            let mut a: Vec<u32> = self.csr.neighbors(s).to_vec();
            let mut b: Vec<u32> = fresh.neighbors(s).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            if a != b {
                return Err(format!("adjacency of switch {s} diverged: {a:?} vs {b:?}"));
            }
        }
        let mut ours: Vec<(u32, u32)> = self.edges.edges().to_vec();
        let mut theirs: Vec<(u32, u32)> = self.g.links().collect();
        ours.sort_unstable();
        theirs.sort_unstable();
        if ours != theirs {
            return Err(format!("edge set diverged: {ours:?} vs {theirs:?}"));
        }
        self.check_cache_consistency()
    }

    /// Distance-cache part of [`Self::check_consistency`].
    fn check_cache_consistency(&self) -> Result<(), String> {
        let Some(cache) = &self.cache else {
            return Ok(());
        };
        if cache.disabled {
            return Ok(());
        }
        let m = cache.m;
        let max_dist = cache.max_dist;
        let settled = cache.edge_delta.is_empty();
        for s in 0..m {
            if !cache.valid[s] {
                continue;
            }
            // aggregates must match the row as stored + current counts
            let mut wsum = 0u64;
            let mut hist = vec![0u32; max_dist];
            let mut nreach = 0u32;
            let mut ecc = 0u16;
            for (v, &k) in self.counts.iter().enumerate().take(m) {
                let d = row_get(&cache.store, m, s, v);
                if v == s || d == INVALID_DIST || k == 0 {
                    continue;
                }
                wsum += k as u64 * (d as u64 + 2);
                hist[d as usize] += 1;
                nreach += 1;
                ecc = ecc.max(d);
            }
            if wsum != cache.wsum[s]
                || nreach != cache.nreach[s]
                || ecc != cache.ecc[s]
                || hist != cache.hist[s * max_dist..(s + 1) * max_dist]
            {
                return Err(format!(
                    "cache aggregates of source {s} diverged from its row \
                     (wsum {} vs {}, nreach {} vs {}, ecc {} vs {})",
                    cache.wsum[s], wsum, cache.nreach[s], nreach, cache.ecc[s], ecc
                ));
            }
            if settled {
                // rows must equal fresh BFS distances of the owned graph
                let fresh = self.g.switch_distances(s as u32);
                for (v, &f) in fresh.iter().enumerate() {
                    let f16 = if f == u32::MAX {
                        INVALID_DIST
                    } else {
                        f as u16
                    };
                    let cached = row_get(&cache.store, m, s, v);
                    if cached != f16 {
                        return Err(format!(
                            "cached distance d({s},{v}) = {cached} diverged from fresh {f16}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::random_general;
    use crate::metrics::path_metrics;
    use crate::ops::{sample_swap, sample_swing};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Side-by-side cost of the plain vs cache-filling batched sweep;
    /// run with `--ignored --nocapture` on a release build when tuning.
    #[test]
    #[ignore = "perf harness, not a correctness check"]
    fn bfs_sweep_cost_comparison() {
        let m = 4096u32;
        let g = random_general(4 * m, m, 12, 7).unwrap();
        let mut st = SearchState::with_options(g, 1, true).unwrap();
        let srcs: Vec<u32> = (0..m).collect();
        let mut scratch = EvalScratch::default();
        for round in 0..3 {
            let t0 = std::time::Instant::now();
            let mut sums = BatchSums::default();
            for lo in (0..srcs.len()).step_by(64) {
                sums.absorb(sweep_batch(
                    &st.csr,
                    &st.counts,
                    &srcs[lo..lo + 64],
                    &mut scratch,
                ));
            }
            let plain = t0.elapsed();
            let cache = st.cache.as_mut().unwrap();
            let ptrs = cache.ptrs();
            let t0 = std::time::Instant::now();
            for lo in (0..srcs.len()).step_by(64) {
                assert!(sweep_batch_cached(
                    &st.csr,
                    &st.counts,
                    &srcs[lo..lo + 64],
                    &mut scratch,
                    &ptrs,
                ));
            }
            let cached = t0.elapsed();
            println!(
                "round {round}: plain {plain:?}  cached {cached:?}  (weighted {})",
                sums.weighted
            );
        }
    }

    /// Prints how swap/swing proposals classify sources (re-BFS vs
    /// formula repair vs untouched); run with `--ignored --nocapture`
    /// when tuning the scan.
    #[test]
    #[ignore = "perf harness, not a correctness check"]
    fn delta_classification_profile() {
        let m = 1024u32;
        let g = random_general(4 * m, m, 12, 7).unwrap();
        let mut st = SearchState::with_options(g, 1, true).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for round in 0..8 {
            for swing in [false, true] {
                st.begin();
                let ok = if swing {
                    sample_swing(&st.g, &st.edges, &mut rng, 32)
                        .map(|s| st.apply_swing(s).unwrap())
                        .is_some()
                } else {
                    sample_swap(&st.g, &st.edges, &mut rng, 32)
                        .map(|s| st.apply_swap(s).unwrap())
                        .is_some()
                };
                if !ok {
                    st.rollback();
                    continue;
                }
                let counts = st.counts.clone();
                let cache = st.cache.as_mut().unwrap();
                let (mut rebfs, mut repair) = (Vec::new(), Vec::new());
                cache.scan_delta(&st.csr, &counts, &mut rebfs, &mut repair);
                let mu = cache.m;
                let count = |bit: u8| (0..mu).filter(|&s| cache.flags[s] & bit != 0).count();
                println!(
                    "round {round} {}: rebfs {:>4} repair {:>4}  add_aff {:>4} del_aff {:>4} \
                     no_strict {:>4}",
                    if swing { "swing" } else { "swap " },
                    rebfs.len(),
                    repair.len(),
                    count(ADD_AFF),
                    count(DEL_AFF),
                    count(NO_STRICT),
                );
                st.rollback();
            }
        }
    }

    /// Structural equality up to adjacency-list ordering (rollback uses
    /// `swap_remove`, which permutes neighbour lists).
    fn assert_same_graph(a: &HostSwitchGraph, b: &HostSwitchGraph) {
        let (mut a, mut b) = (a.clone(), b.clone());
        a.canonicalize();
        b.canonicalize();
        assert_eq!(a, b);
    }

    fn ring(m: u32, hosts_per: u32, r: u32) -> HostSwitchGraph {
        let mut g = HostSwitchGraph::new(m, r).unwrap();
        for s in 0..m {
            g.add_link(s, (s + 1) % m).unwrap();
        }
        for s in 0..m {
            for _ in 0..hosts_per {
                g.attach_host(s).unwrap();
            }
        }
        g
    }

    #[test]
    fn search_config_resolves_codec_by_mode_and_budget() {
        let auto = SearchConfig::default();
        assert_eq!(auto.resolve_codec(64), Some(CacheCodec::Dense));
        assert_eq!(
            auto.resolve_codec(CACHE_MAX_SWITCHES + 1),
            Some(CacheCodec::Packed)
        );
        assert_eq!(auto.resolve_codec(1), None);
        assert_eq!(SearchConfig::off().resolve_codec(64), None);
        let tight = SearchConfig {
            cache_mode: CacheMode::Auto,
            memory_budget_bytes: 1024,
        };
        assert_eq!(tight.resolve_codec(4096), None);
        let forced = SearchConfig {
            cache_mode: CacheMode::Compressed,
            ..SearchConfig::default()
        };
        assert_eq!(forced.resolve_codec(64), Some(CacheCodec::Packed));
        assert!(SearchConfig::compressed_cache_bytes(64) < SearchConfig::dense_cache_bytes(64));
        assert_eq!("compressed".parse::<CacheMode>(), Ok(CacheMode::Compressed));
        assert_eq!("auto".parse::<CacheMode>(), Ok(CacheMode::Auto));
        assert!("bogus".parse::<CacheMode>().is_err());
    }

    #[test]
    fn compressed_cache_matches_dense_and_plain() {
        // the packed-u8 codec must follow bit-identical trajectories to
        // the dense codec and the no-cache oracle across mixed proposals
        // with commits and rollbacks
        let g = random_general(96, 24, 8, 13).unwrap();
        let dense_cfg = SearchConfig {
            cache_mode: CacheMode::Dense,
            ..SearchConfig::default()
        };
        let packed_cfg = SearchConfig {
            cache_mode: CacheMode::Compressed,
            ..SearchConfig::default()
        };
        let mut dense = SearchState::with_search(g.clone(), 1, dense_cfg).unwrap();
        let mut packed = SearchState::with_search(g.clone(), 1, packed_cfg).unwrap();
        let mut plain = SearchState::with_search(g, 1, SearchConfig::off()).unwrap();
        assert_eq!(dense.cache_codec(), Some(CacheCodec::Dense));
        assert_eq!(packed.cache_codec(), Some(CacheCodec::Packed));
        assert_eq!(plain.cache_codec(), None);
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for step in 0..120 {
            let applied = if step % 2 == 0 {
                sample_swing(dense.graph(), dense.edges(), &mut rng, 24).map(|s| {
                    dense.begin();
                    packed.begin();
                    plain.begin();
                    dense.apply_swing(s).unwrap();
                    packed.apply_swing(s).unwrap();
                    plain.apply_swing(s).unwrap();
                })
            } else {
                sample_swap(dense.graph(), dense.edges(), &mut rng, 24).map(|s| {
                    dense.begin();
                    packed.begin();
                    plain.begin();
                    dense.apply_swap(s).unwrap();
                    packed.apply_swap(s).unwrap();
                    plain.apply_swap(s).unwrap();
                })
            };
            if applied.is_none() {
                continue;
            }
            let want = plain.evaluate();
            assert_eq!(dense.evaluate(), want, "step {step}");
            assert_eq!(packed.evaluate(), want, "step {step}");
            if step % 3 == 0 && want.is_some() {
                dense.commit();
                packed.commit();
                plain.commit();
            } else {
                dense.rollback();
                packed.rollback();
                plain.rollback();
            }
        }
        assert_eq!(dense.evaluate(), packed.evaluate());
        dense.check_consistency().unwrap();
        packed.check_consistency().unwrap();
        assert!(packed.eval_stats().incremental > 0);
    }

    #[test]
    fn sharded_repair_pool_matches_sequential() {
        // the combined sweep+repair job on the work-stealing pool must be
        // bit-identical to the sequential engine, including rollbacks
        let g = random_general(768, 192, 10, 29).unwrap();
        let mut seq = SearchState::with_workers(g.clone(), 1).unwrap();
        let mut par = SearchState::with_workers(g, 3).unwrap();
        assert_eq!(par.workers(), 3);
        assert!(par.eval_stats().pool_jobs > 0, "initial fill uses the pool");
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        for step in 0..60 {
            let applied = if step % 2 == 0 {
                sample_swing(seq.graph(), seq.edges(), &mut rng, 24).map(|s| {
                    seq.begin();
                    par.begin();
                    seq.apply_swing(s).unwrap();
                    par.apply_swing(s).unwrap();
                })
            } else {
                sample_swap(seq.graph(), seq.edges(), &mut rng, 24).map(|s| {
                    seq.begin();
                    par.begin();
                    seq.apply_swap(s).unwrap();
                    par.apply_swap(s).unwrap();
                })
            };
            if applied.is_none() {
                continue;
            }
            let want = seq.evaluate();
            assert_eq!(par.evaluate(), want, "step {step}");
            if step % 3 == 0 && want.is_some() {
                seq.commit();
                par.commit();
            } else {
                seq.rollback();
                par.rollback();
            }
        }
        assert_eq!(seq.evaluate(), par.evaluate());
        assert_eq!(seq.eval_stats().repaired, par.eval_stats().repaired);
        assert!(par.eval_stats().repaired > 0, "walk exercised the repairs");
        par.check_consistency().unwrap();
    }

    #[test]
    fn evaluate_matches_path_metrics() {
        for seed in 0..4 {
            let g = random_general(96, 24, 8, seed).unwrap();
            let expect = path_metrics(&g).unwrap();
            let mut st = SearchState::new(g, Some(false)).unwrap();
            let got = st.evaluate().unwrap();
            assert_eq!(got.total_length, expect.total_length, "seed {seed}");
            assert_eq!(got.diameter, expect.diameter, "seed {seed}");
            assert!((got.haspl - expect.haspl).abs() < 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn evaluate_matches_on_irregular_counts() {
        // hostless switches, piles of hosts on others
        let mut g = HostSwitchGraph::new(5, 8).unwrap();
        for s in 0..5 {
            g.add_link(s, (s + 1) % 5).unwrap();
        }
        for _ in 0..5 {
            g.attach_host(0).unwrap();
        }
        g.attach_host(2).unwrap();
        let expect = path_metrics(&g).unwrap();
        let mut st = SearchState::new(g, Some(false)).unwrap();
        assert_eq!(st.evaluate().unwrap(), expect);
    }

    #[test]
    fn evaluate_batches_beyond_64_sources() {
        // more than 64 hostful switches exercises multi-batch sweeps
        let g = ring(130, 1, 4);
        let expect = path_metrics(&g).unwrap();
        let mut st = SearchState::new(g, Some(false)).unwrap();
        assert_eq!(st.evaluate().unwrap(), expect);
    }

    #[test]
    fn threaded_evaluation_is_bit_identical() {
        let g = random_general(256, 72, 10, 9).unwrap();
        let mut seq = SearchState::new(g.clone(), Some(false)).unwrap();
        let mut par = SearchState::new(g, Some(true)).unwrap();
        assert!(par.workers() >= 1);
        assert_eq!(seq.evaluate().unwrap(), par.evaluate().unwrap());
    }

    #[test]
    fn worker_pool_matches_sequential_across_random_walk() {
        // explicit worker count so the pool is exercised even on 1-CPU
        // machines; both engines must follow bit-identical trajectories
        let g = random_general(256, 72, 10, 21).unwrap();
        let mut seq = SearchState::with_workers(g.clone(), 1).unwrap();
        let mut par = SearchState::with_workers(g, 3).unwrap();
        assert_eq!(par.workers(), 3);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for step in 0..60 {
            let Some(s) = sample_swing(seq.graph(), seq.edges(), &mut rng, 24) else {
                continue;
            };
            seq.begin();
            par.begin();
            seq.apply_swing(s).unwrap();
            par.apply_swing(s).unwrap();
            assert_eq!(seq.evaluate(), par.evaluate(), "step {step}");
            if step % 3 == 0 {
                seq.commit();
                par.commit();
            } else {
                seq.rollback();
                par.rollback();
            }
        }
        assert_eq!(seq.evaluate(), par.evaluate());
        par.check_consistency().unwrap();
    }

    #[test]
    fn cache_disabled_engine_matches_cached() {
        let g = random_general(96, 24, 8, 3).unwrap();
        let mut plain = SearchState::with_options(g.clone(), 1, false).unwrap();
        let mut cached = SearchState::with_options(g, 1, true).unwrap();
        assert!(!plain.cache_active());
        assert!(cached.cache_active());
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..80 {
            let Some(s) = sample_swap(plain.graph(), plain.edges(), &mut rng, 24) else {
                continue;
            };
            plain.begin();
            cached.begin();
            plain.apply_swap(s).unwrap();
            cached.apply_swap(s).unwrap();
            assert_eq!(plain.evaluate(), cached.evaluate());
            plain.rollback();
            cached.rollback();
        }
        assert_eq!(plain.evaluate(), cached.evaluate());
        cached.check_consistency().unwrap();
        assert!(cached.eval_stats().incremental > 0);
    }

    #[test]
    fn disconnection_detected() {
        let mut g = HostSwitchGraph::new(4, 4).unwrap();
        g.add_link(0, 1).unwrap();
        g.add_link(2, 3).unwrap();
        g.attach_host(0).unwrap();
        g.attach_host(3).unwrap();
        assert!(matches!(
            SearchState::new(g, Some(false)),
            Err(GraphError::Disconnected)
        ));
    }

    #[test]
    fn uncommitted_disconnection_is_caught_incrementally() {
        // two 4-cycles joined by {0,4} and {2,6}; the swap rewires both
        // cross links to internal chords, disconnecting the halves — the
        // affected-source scan must surface it without a full sweep
        let mut g = HostSwitchGraph::new(8, 4).unwrap();
        for s in 0..4 {
            g.add_link(s, (s + 1) % 4).unwrap();
            g.add_link(4 + s, 4 + (s + 1) % 4).unwrap();
        }
        g.add_link(0, 4).unwrap();
        g.add_link(2, 6).unwrap();
        for s in 0..8 {
            g.attach_host(s).unwrap();
        }
        let mut st = SearchState::new(g, Some(false)).unwrap();
        let before = st.evaluate().unwrap();
        st.begin();
        // {0,4},{6,2} -> {0,2},{6,4}: both new links are intra-cycle
        let s = Swap {
            a: 0,
            b: 4,
            c: 6,
            d: 2,
        };
        assert!(s.is_valid(st.graph()));
        st.apply_swap(s).unwrap();
        assert!(st.evaluate().is_none());
        st.rollback();
        assert_eq!(st.evaluate().unwrap(), before);
        st.check_consistency().unwrap();
    }

    #[test]
    fn swap_commit_and_rollback() {
        let mut g = ring(6, 1, 5);
        g.add_link(0, 3).unwrap();
        g.add_link(1, 4).unwrap();
        let snapshot = g.clone();
        let mut st = SearchState::new(g, Some(false)).unwrap();
        let s = Swap {
            a: 0,
            b: 1,
            c: 3,
            d: 4,
        };

        st.begin();
        st.apply_swap(s).unwrap();
        assert!(st.graph().has_link(0, 4) && !st.graph().has_link(0, 1));
        st.rollback();
        assert_same_graph(st.graph(), &snapshot);
        st.check_consistency().unwrap();

        st.begin();
        st.apply_swap(s).unwrap();
        st.commit();
        assert!(st.graph().has_link(0, 4) && st.graph().has_link(3, 1));
        st.check_consistency().unwrap();
        assert_eq!(st.evaluate().unwrap(), path_metrics(st.graph()).unwrap());
    }

    #[test]
    fn swing_rollback_restores_host() {
        let g = ring(5, 2, 6);
        let snapshot = g.clone();
        let mut st = SearchState::new(g, Some(false)).unwrap();
        let s = Swing { a: 0, b: 1, c: 3 };
        st.begin();
        let h = st.apply_swing(s).unwrap();
        assert_eq!(st.graph().switch_of(h), 1);
        assert_eq!(st.host_counts()[3], 1);
        st.rollback();
        assert_same_graph(st.graph(), &snapshot);
        assert_eq!(st.host_counts()[3], 2);
        st.check_consistency().unwrap();
    }

    #[test]
    fn nested_transactions_support_two_neighbor_flow() {
        let g = ring(8, 2, 6);
        let snapshot = g.clone();
        let mut st = SearchState::new(g, Some(false)).unwrap();

        // outer swing, inner swing stacked on top, roll both back
        st.begin();
        st.apply_swing(Swing { a: 0, b: 1, c: 3 }).unwrap();
        st.begin();
        let s2 = Swing { a: 4, b: 3, c: 1 };
        assert!(s2.is_valid(st.graph()));
        st.apply_swing(s2).unwrap();
        st.rollback();
        st.rollback();
        assert_same_graph(st.graph(), &snapshot);
        st.check_consistency().unwrap();

        // commit inner into outer, then commit outer
        st.begin();
        st.apply_swing(Swing { a: 0, b: 1, c: 3 }).unwrap();
        st.begin();
        st.apply_swing(s2).unwrap();
        st.commit();
        st.commit();
        assert!(!st.in_txn());
        st.check_consistency().unwrap();
        assert_eq!(st.evaluate().unwrap(), path_metrics(st.graph()).unwrap());
    }

    #[test]
    fn invalid_moves_leave_state_untouched() {
        let g = ring(5, 1, 5);
        let snapshot = g.clone();
        let mut st = SearchState::new(g, Some(false)).unwrap();
        st.begin();
        assert!(st
            .apply_swap(Swap {
                a: 0,
                b: 1,
                c: 1,
                d: 2
            })
            .is_err());
        assert!(st.apply_swing(Swing { a: 0, b: 1, c: 0 }).is_err());
        st.rollback();
        assert_same_graph(st.graph(), &snapshot);
        st.check_consistency().unwrap();
    }

    #[test]
    fn long_random_walk_stays_consistent() {
        let g = random_general(64, 16, 8, 5).unwrap();
        let mut st = SearchState::new(g, Some(false)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for step in 0..300 {
            let accept = step % 3 != 0;
            if step % 2 == 0 {
                let Some(s) = sample_swap(st.graph(), st.edges(), &mut rng, 24) else {
                    continue;
                };
                st.begin();
                st.apply_swap(s).unwrap();
                let ok = st.evaluate().is_some();
                if accept && ok {
                    st.commit();
                } else {
                    st.rollback();
                }
            } else {
                let Some(s) = sample_swing(st.graph(), st.edges(), &mut rng, 24) else {
                    continue;
                };
                st.begin();
                st.apply_swing(s).unwrap();
                let ok = st.evaluate().is_some();
                if accept && ok {
                    st.commit();
                } else {
                    st.rollback();
                }
            }
        }
        st.check_consistency().unwrap();
        assert_eq!(st.evaluate().unwrap(), path_metrics(st.graph()).unwrap());
    }

    #[test]
    fn early_reject_fires_on_a_provably_uphill_swing() {
        // Hub 0 with leaves 1..4 plus chord {1,2}; hosts 1@1, 4@3, 4@4.
        // Swing{a:3, b:0, c:1} removes the hub link of the heavy leaf 3,
        // re-hangs it off leaf 1, and moves 1's host to the hub: for
        // sources 0 and 4 the removal has no witness (strict ≥ +20 on
        // the ordered sum), while everything behind the added link's
        // far side is hostless, so the improvement allowance is 0 — the
        // guard must prove the move uphill without any BFS.
        let mut g = HostSwitchGraph::new(5, 5).unwrap();
        for leaf in 1..5 {
            g.add_link(0, leaf).unwrap();
        }
        g.add_link(1, 2).unwrap();
        g.attach_host(1).unwrap();
        for _ in 0..4 {
            g.attach_host(3).unwrap();
            g.attach_host(4).unwrap();
        }
        let mut st = SearchState::new(g, Some(false)).unwrap();
        let cur = st.evaluate().unwrap();
        st.begin();
        let s = Swing { a: 3, b: 0, c: 1 };
        assert!(s.is_valid(st.graph()));
        st.apply_swing(s).unwrap();
        let outcome = st.evaluate_guarded(Some(cur.haspl));
        let EvalOutcome::EarlyRejected(lb) = outcome else {
            panic!("expected an early reject, got {outcome:?}");
        };
        assert!(lb > cur.haspl);
        let truth = path_metrics(st.graph()).unwrap();
        assert!(
            truth.haspl >= lb - 1e-9,
            "lower bound {lb} exceeds truth {}",
            truth.haspl
        );
        assert_eq!(st.eval_stats().early_rejected, 1);
        assert_eq!(st.eval_stats().last_kind, EvalPathKind::EarlyRejected);
        // the rejected proposal must not have corrupted the cache
        st.rollback();
        assert_eq!(st.evaluate().unwrap(), cur);
        st.check_consistency().unwrap();
    }

    #[test]
    fn guarded_evaluation_is_sound_on_random_walks() {
        // Every early reject must prove a genuine lower bound, and a
        // guarded engine must stay bit-identical to an unguarded one.
        let g = random_general(128, 32, 8, 7).unwrap();
        let mut st = SearchState::new(g, Some(false)).unwrap();
        let cur = st.evaluate().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for step in 0..300 {
            st.begin();
            let applied = if step % 2 == 0 {
                match sample_swing(st.graph(), st.edges(), &mut rng, 24) {
                    Some(s) => {
                        st.apply_swing(s).unwrap();
                        true
                    }
                    None => false,
                }
            } else {
                match sample_swap(st.graph(), st.edges(), &mut rng, 24) {
                    Some(s) => {
                        st.apply_swap(s).unwrap();
                        true
                    }
                    None => false,
                }
            };
            if !applied {
                st.rollback();
                continue;
            }
            match st.evaluate_guarded(Some(cur.haspl)) {
                EvalOutcome::EarlyRejected(lb) => {
                    assert!(lb > cur.haspl);
                    if let Some(truth) = path_metrics(st.graph()) {
                        assert!(
                            truth.haspl >= lb - 1e-9,
                            "lower bound {lb} exceeds truth {}",
                            truth.haspl
                        );
                    }
                }
                EvalOutcome::Metrics(m) => {
                    assert_eq!(m, path_metrics(st.graph()).unwrap());
                }
                EvalOutcome::Disconnected => {
                    assert!(path_metrics(st.graph()).is_none());
                }
            }
            st.rollback();
        }
        // the rejected proposals must not have corrupted the cache
        assert_eq!(st.evaluate().unwrap(), cur);
        st.check_consistency().unwrap();
    }

    #[test]
    fn cache_survives_depth_overflow_by_disabling() {
        // a 300-ring has eccentricity 150, beyond the dense codec's
        // 128-hop cap: the engine must fall back to the full sweep and
        // still score correctly
        let g = ring(300, 1, 4);
        let expect = path_metrics(&g).unwrap();
        let mut st = SearchState::new(g, Some(false)).unwrap();
        assert!(!st.cache_active());
        assert_eq!(st.cache_codec(), None);
        assert_eq!(st.evaluate().unwrap(), expect);
        assert!(st.eval_stats().full >= 2);
    }

    #[test]
    fn slot_csr_tracks_link_edits() {
        let g = ring(6, 0, 4);
        let mut csr = SlotCsr::from_graph(&g);
        csr.remove_link(0, 1);
        csr.add_link(0, 3);
        let mut n0: Vec<u32> = csr.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![3, 5]);
        assert!(csr.neighbors(1).iter().all(|&t| t != 0));
        assert!(csr.neighbors(3).contains(&0));
    }

    #[test]
    fn resolve_parallel_eval_honours_override() {
        assert_eq!(resolve_parallel_eval(Some(false), 100_000), 1);
        assert!(resolve_parallel_eval(Some(true), 4) >= 1);
        // auto: small instances stay sequential
        assert_eq!(
            resolve_parallel_eval(None, PARALLEL_SWITCH_THRESHOLD - 1),
            1
        );
    }
}
