//! The annealing evaluation engine: a [`SearchState`] that owns the graph
//! and every derived structure the local search needs, keeps them all in
//! sync through a transactional apply/score/commit/rollback API, and
//! evaluates h-ASPL with a bit-parallel batched BFS over reusable scratch
//! so that steady-state annealing performs **zero heap allocation and zero
//! full rebuilds per proposal**.
//!
//! # Why
//!
//! The original annealer rebuilt a [`SwitchCsr`] and the host-count vector
//! from the graph on every proposal (`O(m + L)` of pure allocation and
//! copying before a single BFS step ran) and hand-mirrored every
//! `EdgeSet::remove`/`insert` in each of the three move kinds — a classic
//! source of drift bugs. Here the graph, the CSR, the host counts, and the
//! [`EdgeSet`] live behind one API; a move is applied exactly once and
//! every structure follows.
//!
//! # Transactions
//!
//! [`SearchState::begin`] opens a transaction; [`SearchState::apply_swap`]
//! and [`SearchState::apply_swing`] mutate all owned structures and append
//! to an undo log; [`SearchState::rollback`] replays the log backwards to
//! the matching `begin`, and [`SearchState::commit`] forgets it.
//! Transactions nest, which is exactly what the 2-neighbor swing of §5.2
//! needs: apply the first swing, score, and on rejection stack a second
//! swing on top before deciding the fate of both.
//!
//! # Evaluation
//!
//! [`SearchState::evaluate`] runs a *batched* BFS: 64 sources advance
//! together, one bit per source in a `u64` frontier mask per switch. Per
//! level every switch ORs its neighbours' frontier masks — with the tiny
//! diameters of ORP solutions (3–5) the whole sweep touches each adjacency
//! list a handful of times instead of once per source, which is roughly an
//! order of magnitude faster than source-at-a-time BFS even before
//! threading. Batches are independent, so large instances can additionally
//! split them across OS threads (see [`resolve_parallel_eval`]).

use crate::error::GraphError;
use crate::graph::{Host, HostSwitchGraph, Switch};
use crate::metrics::{PathMetrics, SwitchCsr};
use crate::ops::{EdgeSet, Swap, Swing};

/// Switch count from which the auto heuristic turns on threaded
/// evaluation (when more than one CPU is available).
pub const PARALLEL_SWITCH_THRESHOLD: u32 = 256;

/// Resolves the effective number of evaluation worker threads from the
/// user's override (`SaConfig::parallel_eval`) and the instance size:
/// `Some(false)` forces 1, `Some(true)` forces threading, `None` picks
/// threading iff `m >=` [`PARALLEL_SWITCH_THRESHOLD`] and the machine has
/// more than one CPU. Returns at least 1.
pub fn resolve_parallel_eval(override_flag: Option<bool>, num_switches: u32) -> usize {
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let parallel = override_flag.unwrap_or(num_switches >= PARALLEL_SWITCH_THRESHOLD && cpus > 1);
    if parallel {
        cpus.max(1)
    } else {
        1
    }
}

/// Fixed-capacity CSR adjacency, edited in place on every link change
/// instead of rebuilt from the graph: switch `s` owns slots
/// `[s·r, s·r + deg(s))` of a flat array (`r` = radix), so adding or
/// removing a link is `O(r)` with no allocation.
#[derive(Debug, Clone)]
pub struct SlotCsr {
    radix: usize,
    deg: Vec<u32>,
    slots: Vec<u32>,
}

impl SlotCsr {
    /// Builds the slotted adjacency from a graph.
    pub fn from_graph(g: &HostSwitchGraph) -> Self {
        let m = g.num_switches() as usize;
        let radix = g.radix() as usize;
        let mut csr = Self {
            radix,
            deg: vec![0; m],
            slots: vec![u32::MAX; m * radix],
        };
        for s in 0..m as u32 {
            for &t in g.neighbors(s) {
                let d = &mut csr.deg[s as usize];
                csr.slots[s as usize * radix + *d as usize] = t;
                *d += 1;
            }
        }
        csr
    }

    /// Number of switches.
    #[inline]
    pub fn len(&self) -> usize {
        self.deg.len()
    }

    /// Whether there are no switches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.deg.is_empty()
    }

    /// Switch neighbours of `s` (unsorted).
    #[inline]
    pub fn neighbors(&self, s: Switch) -> &[u32] {
        let base = s as usize * self.radix;
        &self.slots[base..base + self.deg[s as usize] as usize]
    }

    #[inline]
    fn push(&mut self, s: Switch, t: Switch) {
        let d = &mut self.deg[s as usize];
        debug_assert!((*d as usize) < self.radix, "slot overflow at switch {s}");
        self.slots[s as usize * self.radix + *d as usize] = t;
        *d += 1;
    }

    #[inline]
    fn pull(&mut self, s: Switch, t: Switch) {
        let base = s as usize * self.radix;
        let d = self.deg[s as usize] as usize;
        let row = &mut self.slots[base..base + d];
        let pos = row.iter().position(|&x| x == t).expect("neighbor present");
        row[pos] = row[d - 1];
        self.deg[s as usize] -= 1;
    }

    /// Records the new link `{a, b}` (`O(1)`).
    #[inline]
    pub fn add_link(&mut self, a: Switch, b: Switch) {
        self.push(a, b);
        self.push(b, a);
    }

    /// Drops the link `{a, b}` (`O(r)`).
    #[inline]
    pub fn remove_link(&mut self, a: Switch, b: Switch) {
        self.pull(a, b);
        self.pull(b, a);
    }
}

/// Reusable buffers for one evaluation worker: three `u64` frontier masks
/// per switch. Allocated once, reused by every proposal.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    cur: Vec<u64>,
    next: Vec<u64>,
    seen: Vec<u64>,
}

impl EvalScratch {
    fn reset(&mut self, m: usize) {
        self.cur.clear();
        self.cur.resize(m, 0);
        self.next.clear();
        self.next.resize(m, 0);
        self.seen.clear();
        self.seen.resize(m, 0);
    }
}

/// Partial result of sweeping one batch of sources.
#[derive(Debug, Clone, Copy, Default)]
struct BatchSums {
    /// Σ `k_a·k_b·(d+2)` over ordered hostful pairs with source in batch.
    weighted: u64,
    /// Max inter-switch distance seen from this batch's sources.
    max_d: u32,
    /// Hostful switches reached, summed over the batch's sources
    /// (each source counts itself). Detects disconnection.
    reached: u64,
}

/// Sweeps sources `srcs[lo..hi]` (at most 64) in lockstep: bit `i` of a
/// mask tracks source `srcs[lo + i]`.
fn sweep_batch(
    csr: &SlotCsr,
    counts: &[u32],
    srcs: &[u32],
    scratch: &mut EvalScratch,
) -> BatchSums {
    debug_assert!(!srcs.is_empty() && srcs.len() <= 64);
    let m = csr.len();
    scratch.reset(m);
    let mut k_src = [0u64; 64];
    for (i, &s) in srcs.iter().enumerate() {
        scratch.cur[s as usize] = 1 << i;
        scratch.seen[s as usize] = 1 << i;
        k_src[i] = counts[s as usize] as u64;
    }
    let mut sums = BatchSums {
        reached: srcs.len() as u64,
        ..Default::default()
    };
    let mut depth = 0u64;
    loop {
        depth += 1;
        let mut active = false;
        for (v, &kv) in counts.iter().enumerate().take(m) {
            let mut gather = 0u64;
            for &u in csr.neighbors(v as u32) {
                gather |= scratch.cur[u as usize];
            }
            let new = gather & !scratch.seen[v];
            scratch.next[v] = new;
            if new != 0 {
                scratch.seen[v] |= new;
                active = true;
                let kv = kv as u64;
                if kv > 0 {
                    sums.max_d = sums.max_d.max(depth as u32);
                    sums.reached += new.count_ones() as u64;
                    let mut bits = new;
                    let mut batch_k = 0u64;
                    while bits != 0 {
                        batch_k += k_src[bits.trailing_zeros() as usize];
                        bits &= bits - 1;
                    }
                    sums.weighted += batch_k * kv * (depth + 2);
                }
            }
        }
        if !active {
            return sums;
        }
        std::mem::swap(&mut scratch.cur, &mut scratch.next);
    }
}

/// One entry of the undo log; each names the *applied* mutation, so
/// rollback performs its inverse.
#[derive(Debug, Clone, Copy)]
enum UndoOp {
    AddedLink(Switch, Switch),
    RemovedLink(Switch, Switch),
    /// Host `.0` was moved; it previously sat on switch `.1`.
    MovedHost(Host, Switch),
}

/// The single source of truth for everything the local search reads or
/// mutates: the [`HostSwitchGraph`], a mutation-tracked [`SlotCsr`], the
/// per-switch host counts, and the [`EdgeSet`] used for move sampling.
///
/// Moves go through [`SearchState::apply_swap`] /
/// [`SearchState::apply_swing`] inside a [`SearchState::begin`] …
/// [`SearchState::commit`]/[`SearchState::rollback`] transaction, which
/// keeps all four structures consistent by construction; the structures
/// are never rebuilt after [`SearchState::new`]. Scoring via
/// [`SearchState::evaluate`] reuses per-worker [`EvalScratch`] buffers —
/// after warm-up a proposal allocates nothing.
#[derive(Debug)]
pub struct SearchState {
    g: HostSwitchGraph,
    csr: SlotCsr,
    counts: Vec<u32>,
    edges: EdgeSet,
    hostful: u64,
    undo: Vec<UndoOp>,
    txn_marks: Vec<usize>,
    workers: usize,
    scratch: Vec<EvalScratch>,
    srcs: Vec<u32>,
}

impl SearchState {
    /// Builds the engine around `start`. `parallel` follows
    /// [`resolve_parallel_eval`]: `None` auto-selects threading from the
    /// switch count, `Some(_)` overrides.
    ///
    /// Fails with [`GraphError::Disconnected`] if some host pair is
    /// unreachable (the annealer requires a connected start), and with
    /// [`GraphError::InvalidParameters`] on fewer than two hosts.
    pub fn new(start: HostSwitchGraph, parallel: Option<bool>) -> Result<Self, GraphError> {
        if start.num_hosts() < 2 {
            return Err(GraphError::InvalidParameters(
                "search needs at least two hosts".into(),
            ));
        }
        let counts = start.host_counts();
        let workers = resolve_parallel_eval(parallel, start.num_switches());
        let mut state = Self {
            csr: SlotCsr::from_graph(&start),
            edges: EdgeSet::from_graph(&start),
            hostful: counts.iter().filter(|&&k| k > 0).count() as u64,
            counts,
            g: start,
            undo: Vec::new(),
            txn_marks: Vec::new(),
            workers,
            scratch: vec![EvalScratch::default(); workers],
            srcs: Vec::new(),
        };
        if state.evaluate().is_none() {
            return Err(GraphError::Disconnected);
        }
        Ok(state)
    }

    /// The owned graph. Mutate it only through this engine.
    #[inline]
    pub fn graph(&self) -> &HostSwitchGraph {
        &self.g
    }

    /// The link multiset kept in sync with the graph (for move sampling).
    #[inline]
    pub fn edges(&self) -> &EdgeSet {
        &self.edges
    }

    /// The in-place-maintained adjacency.
    #[inline]
    pub fn csr(&self) -> &SlotCsr {
        &self.csr
    }

    /// `k_s` per switch, maintained incrementally.
    #[inline]
    pub fn host_counts(&self) -> &[u32] {
        &self.counts
    }

    /// Number of evaluation worker threads this state resolved to.
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Consumes the engine, returning the graph.
    pub fn into_graph(self) -> HostSwitchGraph {
        self.g
    }

    // ---- transactional mutation ------------------------------------

    /// Opens a transaction. Transactions nest; each `begin` must be
    /// matched by exactly one [`Self::commit`] or [`Self::rollback`].
    pub fn begin(&mut self) {
        self.txn_marks.push(self.undo.len());
    }

    /// Whether a transaction is currently open.
    #[inline]
    pub fn in_txn(&self) -> bool {
        !self.txn_marks.is_empty()
    }

    /// Makes the innermost transaction's mutations permanent (or part of
    /// the enclosing transaction, if one is open).
    pub fn commit(&mut self) {
        self.txn_marks.pop().expect("commit without begin");
        if self.txn_marks.is_empty() {
            self.undo.clear();
        }
    }

    /// Reverts every mutation of the innermost transaction, restoring the
    /// graph, CSR, host counts, and edge set to their state at `begin`.
    pub fn rollback(&mut self) {
        let mark = self.txn_marks.pop().expect("rollback without begin");
        while self.undo.len() > mark {
            match self.undo.pop().expect("len > mark") {
                UndoOp::AddedLink(a, b) => self.raw_unlink(a, b),
                UndoOp::RemovedLink(a, b) => self.raw_link(a, b),
                UndoOp::MovedHost(h, from) => self.raw_move_host(h, from),
            }
        }
    }

    fn raw_link(&mut self, a: Switch, b: Switch) {
        self.g.add_link(a, b).expect("undo-logged link re-add");
        self.csr.add_link(a, b);
        self.edges.insert(a, b);
    }

    fn raw_unlink(&mut self, a: Switch, b: Switch) {
        self.g.remove_link(a, b).expect("undo-logged link removal");
        self.csr.remove_link(a, b);
        self.edges.remove(a, b);
    }

    fn raw_move_host(&mut self, h: Host, to: Switch) {
        let from = self.g.switch_of(h);
        self.g.move_host(h, to).expect("undo-logged host move");
        self.counts[from as usize] -= 1;
        if self.counts[from as usize] == 0 {
            self.hostful -= 1;
        }
        if self.counts[to as usize] == 0 {
            self.hostful += 1;
        }
        self.counts[to as usize] += 1;
    }

    fn link(&mut self, a: Switch, b: Switch) {
        self.raw_link(a, b);
        self.undo.push(UndoOp::AddedLink(a, b));
    }

    fn unlink(&mut self, a: Switch, b: Switch) {
        self.raw_unlink(a, b);
        self.undo.push(UndoOp::RemovedLink(a, b));
    }

    fn move_host(&mut self, h: Host, to: Switch) {
        let from = self.g.switch_of(h);
        self.raw_move_host(h, to);
        self.undo.push(UndoOp::MovedHost(h, from));
    }

    /// Applies a swap (Fig. 2) to every owned structure. Must be inside a
    /// transaction; invalid swaps leave the state untouched.
    pub fn apply_swap(&mut self, s: Swap) -> Result<(), GraphError> {
        assert!(self.in_txn(), "apply_swap outside a transaction");
        if !s.is_valid(&self.g) {
            return Err(GraphError::InvalidParameters(format!("invalid swap {s:?}")));
        }
        self.unlink(s.a, s.b);
        self.unlink(s.c, s.d);
        self.link(s.a, s.d);
        self.link(s.c, s.b);
        Ok(())
    }

    /// Applies a swing (Fig. 3) to every owned structure, returning the
    /// host that moved. Must be inside a transaction; invalid swings leave
    /// the state untouched.
    pub fn apply_swing(&mut self, s: Swing) -> Result<Host, GraphError> {
        assert!(self.in_txn(), "apply_swing outside a transaction");
        if !s.is_valid(&self.g) {
            return Err(GraphError::InvalidParameters(format!(
                "invalid swing {s:?}"
            )));
        }
        let h = *self.g.hosts_of(s.c).last().expect("validated non-empty");
        self.unlink(s.a, s.b);
        self.move_host(h, s.b);
        self.link(s.a, s.c);
        Ok(h)
    }

    // ---- evaluation -------------------------------------------------

    /// Scores the current (possibly uncommitted) graph: h-ASPL, diameter,
    /// and total pair length, or `None` if some host pair is unreachable.
    ///
    /// Runs the batched BFS over the in-place CSR and reused scratch; no
    /// structure is rebuilt and, past the first call, nothing is
    /// allocated (single-worker path).
    pub fn evaluate(&mut self) -> Option<PathMetrics> {
        let n = self.g.num_hosts() as u64;
        self.srcs.clear();
        self.srcs
            .extend((0..self.csr.len() as u32).filter(|&s| self.counts[s as usize] > 0));
        let totals = if self.workers > 1 && self.srcs.len() > 64 {
            self.sweep_all_threaded()
        } else {
            let mut totals = BatchSums::default();
            for lo in (0..self.srcs.len()).step_by(64) {
                let hi = (lo + 64).min(self.srcs.len());
                let b = sweep_batch(
                    &self.csr,
                    &self.counts,
                    &self.srcs[lo..hi],
                    &mut self.scratch[0],
                );
                totals.weighted += b.weighted;
                totals.max_d = totals.max_d.max(b.max_d);
                totals.reached += b.reached;
            }
            totals
        };
        // every source must have reached every hostful switch
        if totals.reached != self.srcs.len() as u64 * self.hostful {
            return None;
        }
        Some(Self::finalize(n, &self.counts, totals))
    }

    /// Splits the source batches across `self.workers` scoped threads,
    /// each with its own scratch. Thread spawning does allocate — the
    /// threaded path trades that for BFS throughput on large `m`.
    fn sweep_all_threaded(&mut self) -> BatchSums {
        let batches: Vec<&[u32]> = self.srcs.chunks(64).collect();
        let per_worker = batches.len().div_ceil(self.workers);
        let (csr, counts) = (&self.csr, &self.counts);
        let partials: Vec<BatchSums> = std::thread::scope(|scope| {
            let handles: Vec<_> = batches
                .chunks(per_worker)
                .zip(self.scratch.iter_mut())
                .map(|(work, scratch)| {
                    scope.spawn(move || {
                        let mut acc = BatchSums::default();
                        for batch in work {
                            let b = sweep_batch(csr, counts, batch, scratch);
                            acc.weighted += b.weighted;
                            acc.max_d = acc.max_d.max(b.max_d);
                            acc.reached += b.reached;
                        }
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("eval worker panicked"))
                .collect()
        });
        let mut totals = BatchSums::default();
        for p in partials {
            totals.weighted += p.weighted;
            totals.max_d = totals.max_d.max(p.max_d);
            totals.reached += p.reached;
        }
        totals
    }

    /// Identical accounting to `metrics::finalize`: halve the ordered
    /// inter-switch sum, add the `ℓ = 2` intra-switch pairs, and lift the
    /// switch diameter by the two host hops.
    fn finalize(n: u64, counts: &[u32], totals: BatchSums) -> PathMetrics {
        let mut total = totals.weighted / 2;
        let mut diameter = if totals.weighted > 0 {
            totals.max_d + 2
        } else {
            0
        };
        for &k in counts {
            let k = k as u64;
            if k >= 2 {
                total += k * (k - 1) / 2 * 2;
                diameter = diameter.max(2);
            }
        }
        let pairs = n * (n - 1) / 2;
        PathMetrics {
            haspl: total as f64 / pairs as f64,
            diameter,
            total_length: total,
        }
    }

    /// Debug-grade cross-check that every incremental structure matches a
    /// from-scratch derivation (used by the property suite).
    pub fn check_consistency(&self) -> Result<(), String> {
        let fresh_counts = self.g.host_counts();
        if self.counts != fresh_counts {
            return Err(format!(
                "host counts diverged: incremental {:?} vs fresh {:?}",
                self.counts, fresh_counts
            ));
        }
        let fresh = SwitchCsr::from_graph(&self.g);
        for s in 0..self.csr.len() as u32 {
            let mut a: Vec<u32> = self.csr.neighbors(s).to_vec();
            let mut b: Vec<u32> = fresh.neighbors(s).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            if a != b {
                return Err(format!("adjacency of switch {s} diverged: {a:?} vs {b:?}"));
            }
        }
        let mut ours: Vec<(u32, u32)> = self.edges.edges().to_vec();
        let mut theirs: Vec<(u32, u32)> = self.g.links().collect();
        ours.sort_unstable();
        theirs.sort_unstable();
        if ours != theirs {
            return Err(format!("edge set diverged: {ours:?} vs {theirs:?}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::random_general;
    use crate::metrics::path_metrics;
    use crate::ops::{sample_swap, sample_swing};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Structural equality up to adjacency-list ordering (rollback uses
    /// `swap_remove`, which permutes neighbour lists).
    fn assert_same_graph(a: &HostSwitchGraph, b: &HostSwitchGraph) {
        let (mut a, mut b) = (a.clone(), b.clone());
        a.canonicalize();
        b.canonicalize();
        assert_eq!(a, b);
    }

    fn ring(m: u32, hosts_per: u32, r: u32) -> HostSwitchGraph {
        let mut g = HostSwitchGraph::new(m, r).unwrap();
        for s in 0..m {
            g.add_link(s, (s + 1) % m).unwrap();
        }
        for s in 0..m {
            for _ in 0..hosts_per {
                g.attach_host(s).unwrap();
            }
        }
        g
    }

    #[test]
    fn evaluate_matches_path_metrics() {
        for seed in 0..4 {
            let g = random_general(96, 24, 8, seed).unwrap();
            let expect = path_metrics(&g).unwrap();
            let mut st = SearchState::new(g, Some(false)).unwrap();
            let got = st.evaluate().unwrap();
            assert_eq!(got.total_length, expect.total_length, "seed {seed}");
            assert_eq!(got.diameter, expect.diameter, "seed {seed}");
            assert!((got.haspl - expect.haspl).abs() < 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn evaluate_matches_on_irregular_counts() {
        // hostless switches, piles of hosts on others
        let mut g = HostSwitchGraph::new(5, 8).unwrap();
        for s in 0..5 {
            g.add_link(s, (s + 1) % 5).unwrap();
        }
        for _ in 0..5 {
            g.attach_host(0).unwrap();
        }
        g.attach_host(2).unwrap();
        let expect = path_metrics(&g).unwrap();
        let mut st = SearchState::new(g, Some(false)).unwrap();
        assert_eq!(st.evaluate().unwrap(), expect);
    }

    #[test]
    fn evaluate_batches_beyond_64_sources() {
        // more than 64 hostful switches exercises multi-batch sweeps
        let g = ring(130, 1, 4);
        let expect = path_metrics(&g).unwrap();
        let mut st = SearchState::new(g, Some(false)).unwrap();
        assert_eq!(st.evaluate().unwrap(), expect);
    }

    #[test]
    fn threaded_evaluation_is_bit_identical() {
        let g = random_general(256, 72, 10, 9).unwrap();
        let mut seq = SearchState::new(g.clone(), Some(false)).unwrap();
        let mut par = SearchState::new(g, Some(true)).unwrap();
        assert!(par.workers() >= 1);
        assert_eq!(seq.evaluate().unwrap(), par.evaluate().unwrap());
    }

    #[test]
    fn disconnection_detected() {
        let mut g = HostSwitchGraph::new(4, 4).unwrap();
        g.add_link(0, 1).unwrap();
        g.add_link(2, 3).unwrap();
        g.attach_host(0).unwrap();
        g.attach_host(3).unwrap();
        assert!(matches!(
            SearchState::new(g, Some(false)),
            Err(GraphError::Disconnected)
        ));
    }

    #[test]
    fn swap_commit_and_rollback() {
        let mut g = ring(6, 1, 5);
        g.add_link(0, 3).unwrap();
        g.add_link(1, 4).unwrap();
        let snapshot = g.clone();
        let mut st = SearchState::new(g, Some(false)).unwrap();
        let s = Swap {
            a: 0,
            b: 1,
            c: 3,
            d: 4,
        };

        st.begin();
        st.apply_swap(s).unwrap();
        assert!(st.graph().has_link(0, 4) && !st.graph().has_link(0, 1));
        st.rollback();
        assert_same_graph(st.graph(), &snapshot);
        st.check_consistency().unwrap();

        st.begin();
        st.apply_swap(s).unwrap();
        st.commit();
        assert!(st.graph().has_link(0, 4) && st.graph().has_link(3, 1));
        st.check_consistency().unwrap();
        assert_eq!(st.evaluate().unwrap(), path_metrics(st.graph()).unwrap());
    }

    #[test]
    fn swing_rollback_restores_host() {
        let g = ring(5, 2, 6);
        let snapshot = g.clone();
        let mut st = SearchState::new(g, Some(false)).unwrap();
        let s = Swing { a: 0, b: 1, c: 3 };
        st.begin();
        let h = st.apply_swing(s).unwrap();
        assert_eq!(st.graph().switch_of(h), 1);
        assert_eq!(st.host_counts()[3], 1);
        st.rollback();
        assert_same_graph(st.graph(), &snapshot);
        assert_eq!(st.host_counts()[3], 2);
        st.check_consistency().unwrap();
    }

    #[test]
    fn nested_transactions_support_two_neighbor_flow() {
        let g = ring(8, 2, 6);
        let snapshot = g.clone();
        let mut st = SearchState::new(g, Some(false)).unwrap();

        // outer swing, inner swing stacked on top, roll both back
        st.begin();
        st.apply_swing(Swing { a: 0, b: 1, c: 3 }).unwrap();
        st.begin();
        let s2 = Swing { a: 4, b: 3, c: 1 };
        assert!(s2.is_valid(st.graph()));
        st.apply_swing(s2).unwrap();
        st.rollback();
        st.rollback();
        assert_same_graph(st.graph(), &snapshot);
        st.check_consistency().unwrap();

        // commit inner into outer, then commit outer
        st.begin();
        st.apply_swing(Swing { a: 0, b: 1, c: 3 }).unwrap();
        st.begin();
        st.apply_swing(s2).unwrap();
        st.commit();
        st.commit();
        assert!(!st.in_txn());
        st.check_consistency().unwrap();
        assert_eq!(st.evaluate().unwrap(), path_metrics(st.graph()).unwrap());
    }

    #[test]
    fn invalid_moves_leave_state_untouched() {
        let g = ring(5, 1, 5);
        let snapshot = g.clone();
        let mut st = SearchState::new(g, Some(false)).unwrap();
        st.begin();
        assert!(st
            .apply_swap(Swap {
                a: 0,
                b: 1,
                c: 1,
                d: 2
            })
            .is_err());
        assert!(st.apply_swing(Swing { a: 0, b: 1, c: 0 }).is_err());
        st.rollback();
        assert_same_graph(st.graph(), &snapshot);
        st.check_consistency().unwrap();
    }

    #[test]
    fn long_random_walk_stays_consistent() {
        let g = random_general(64, 16, 8, 5).unwrap();
        let mut st = SearchState::new(g, Some(false)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for step in 0..300 {
            let accept = step % 3 != 0;
            if step % 2 == 0 {
                let Some(s) = sample_swap(st.graph(), st.edges(), &mut rng, 24) else {
                    continue;
                };
                st.begin();
                st.apply_swap(s).unwrap();
                let ok = st.evaluate().is_some();
                if accept && ok {
                    st.commit();
                } else {
                    st.rollback();
                }
            } else {
                let Some(s) = sample_swing(st.graph(), st.edges(), &mut rng, 24) else {
                    continue;
                };
                st.begin();
                st.apply_swing(s).unwrap();
                let ok = st.evaluate().is_some();
                if accept && ok {
                    st.commit();
                } else {
                    st.rollback();
                }
            }
        }
        st.check_consistency().unwrap();
        assert_eq!(st.evaluate().unwrap(), path_metrics(st.graph()).unwrap());
    }

    #[test]
    fn slot_csr_tracks_link_edits() {
        let g = ring(6, 0, 4);
        let mut csr = SlotCsr::from_graph(&g);
        csr.remove_link(0, 1);
        csr.add_link(0, 3);
        let mut n0: Vec<u32> = csr.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![3, 5]);
        assert!(csr.neighbors(1).iter().all(|&t| t != 0));
        assert!(csr.neighbors(3).contains(&0));
    }

    #[test]
    fn resolve_parallel_eval_honours_override() {
        assert_eq!(resolve_parallel_eval(Some(false), 100_000), 1);
        assert!(resolve_parallel_eval(Some(true), 4) >= 1);
        // auto: small instances stay sequential
        assert_eq!(
            resolve_parallel_eval(None, PARALLEL_SWITCH_THRESHOLD - 1),
            1
        );
    }
}
