//! Coarsening by heavy-edge matching (the first phase of the multilevel
//! scheme of Karypis & Kumar).

use crate::csr::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// One level of the coarsening hierarchy: the coarse graph plus the map
/// from fine vertices to coarse vertices.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The coarsened graph.
    pub graph: Graph,
    /// `fine_to_coarse[v]` = coarse vertex containing fine vertex `v`.
    pub fine_to_coarse: Vec<u32>,
}

/// Matches each vertex with its unmatched neighbour of maximum edge
/// weight (ties broken by smaller coarse degree bias — here first seen),
/// visiting vertices in random order; unmatched vertices map alone.
///
/// Returns `None` when matching cannot shrink the graph (no edges).
pub fn heavy_edge_matching<R: Rng>(g: &Graph, rng: &mut R) -> Option<CoarseLevel> {
    let n = g.len();
    if g.num_edges() == 0 {
        return None;
    }
    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        let mut best: Option<(u32, u64)> = None;
        for (u, w) in g.neighbors(v) {
            if mate[u as usize] == UNMATCHED && u != v {
                match best {
                    Some((_, bw)) if bw >= w => {}
                    _ => best = Some((u, w)),
                }
            }
        }
        if let Some((u, _)) = best {
            mate[v as usize] = u;
            mate[u as usize] = v;
        } else {
            mate[v as usize] = v; // matched with itself
        }
    }
    // assign coarse ids
    let mut fine_to_coarse = vec![UNMATCHED; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if fine_to_coarse[v as usize] != UNMATCHED {
            continue;
        }
        fine_to_coarse[v as usize] = next;
        let m = mate[v as usize];
        if m != v && m != UNMATCHED {
            fine_to_coarse[m as usize] = next;
        }
        next += 1;
    }
    if next as usize == n {
        return None; // nothing merged
    }
    // build coarse graph
    let mut vwgt = vec![0u64; next as usize];
    for v in 0..n as u32 {
        vwgt[fine_to_coarse[v as usize] as usize] += g.vertex_weight(v);
    }
    let mut edges: Vec<(u32, u32, u64)> = Vec::with_capacity(g.num_edges());
    for v in 0..n as u32 {
        let cv = fine_to_coarse[v as usize];
        for (u, w) in g.neighbors(v) {
            if u > v {
                let cu = fine_to_coarse[u as usize];
                if cu != cv {
                    edges.push((cv, cu, w));
                }
            }
        }
    }
    Some(CoarseLevel {
        graph: Graph::from_weighted(vwgt, &edges),
        fine_to_coarse,
    })
}

/// Coarsens repeatedly until the graph has at most `target` vertices or
/// matching stalls. Returns the hierarchy, finest level first.
pub fn coarsen_to<R: Rng>(g: &Graph, target: usize, rng: &mut R) -> Vec<CoarseLevel> {
    let mut levels = Vec::new();
    let mut cur = g.clone();
    while cur.len() > target {
        match heavy_edge_matching(&cur, rng) {
            Some(level) => {
                // require at least ~5% shrinkage to continue
                if level.graph.len() as f64 > cur.len() as f64 * 0.98 {
                    levels.push(level);
                    break;
                }
                cur = level.graph.clone();
                levels.push(level);
            }
            None => break,
        }
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ring(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn matching_halves_a_ring() {
        let g = ring(16);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let lvl = heavy_edge_matching(&g, &mut rng).unwrap();
        assert!(lvl.graph.len() >= 8 && lvl.graph.len() < 16);
        // total vertex weight preserved
        assert_eq!(lvl.graph.total_weight(), g.total_weight());
    }

    #[test]
    fn coarse_edges_preserve_cut_structure() {
        // two triangles joined by one bridge; the bridge weight must
        // survive coarsening in some form (total edge weight conserved
        // minus internal collapsed edges)
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let lvl = heavy_edge_matching(&g, &mut rng).unwrap();
        assert!(lvl.graph.len() < 6);
        assert_eq!(lvl.fine_to_coarse.len(), 6);
    }

    #[test]
    fn edgeless_graph_does_not_coarsen() {
        let g = Graph::from_edges(4, &[]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(heavy_edge_matching(&g, &mut rng).is_none());
    }

    #[test]
    fn coarsen_to_reaches_target() {
        let g = ring(256);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let levels = coarsen_to(&g, 32, &mut rng);
        assert!(!levels.is_empty());
        let last = &levels.last().unwrap().graph;
        assert!(last.len() <= 64, "stalled at {}", last.len());
        assert_eq!(last.total_weight(), 256);
    }
}
