//! Dinic's maximum-flow algorithm, used to sanity-check cuts via the
//! max-flow min-cut theorem the paper invokes in §6.2.2: any edge cut
//! separating `s` from `t` upper-bounds no flow — i.e. `maxflow(s,t)` is
//! a lower bound on every s-t-separating cut, bisections included.

/// A flow network over directed arcs with residual bookkeeping.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    // arcs stored as parallel arrays; arc i and i^1 are a residual pair
    to: Vec<u32>,
    cap: Vec<u64>,
    head: Vec<Vec<u32>>, // per-vertex arc indices
}

impl FlowNetwork {
    /// An empty network on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.head.len()
    }

    /// Whether the network has no vertices.
    pub fn is_empty(&self) -> bool {
        self.head.is_empty()
    }

    /// Adds a directed arc `u → v` with capacity `c`.
    pub fn add_arc(&mut self, u: u32, v: u32, c: u64) {
        self.head[u as usize].push(self.to.len() as u32);
        self.to.push(v);
        self.cap.push(c);
        self.head[v as usize].push(self.to.len() as u32);
        self.to.push(u);
        self.cap.push(0);
    }

    /// Adds an undirected edge of capacity `c` (capacity in both
    /// directions).
    pub fn add_edge(&mut self, u: u32, v: u32, c: u64) {
        self.head[u as usize].push(self.to.len() as u32);
        self.to.push(v);
        self.cap.push(c);
        self.head[v as usize].push(self.to.len() as u32);
        self.to.push(u);
        self.cap.push(c);
    }

    fn bfs_levels(&self, s: u32, t: u32) -> Option<Vec<i32>> {
        let mut level = vec![-1i32; self.len()];
        let mut q = std::collections::VecDeque::new();
        level[s as usize] = 0;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &a in &self.head[u as usize] {
                let v = self.to[a as usize];
                if self.cap[a as usize] > 0 && level[v as usize] < 0 {
                    level[v as usize] = level[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        (level[t as usize] >= 0).then_some(level)
    }

    fn dfs_push(&mut self, u: u32, t: u32, pushed: u64, level: &[i32], iter: &mut [usize]) -> u64 {
        if u == t {
            return pushed;
        }
        while iter[u as usize] < self.head[u as usize].len() {
            let a = self.head[u as usize][iter[u as usize]] as usize;
            let v = self.to[a];
            if self.cap[a] > 0 && level[v as usize] == level[u as usize] + 1 {
                let d = self.dfs_push(v, t, pushed.min(self.cap[a]), level, iter);
                if d > 0 {
                    self.cap[a] -= d;
                    self.cap[a ^ 1] += d;
                    return d;
                }
            }
            iter[u as usize] += 1;
        }
        0
    }

    /// Computes the maximum flow from `s` to `t` (destructive: consumes
    /// residual capacity; clone first to reuse).
    pub fn max_flow(&mut self, s: u32, t: u32) -> u64 {
        assert_ne!(s, t);
        let mut flow = 0u64;
        while let Some(level) = self.bfs_levels(s, t) {
            let mut iter = vec![0usize; self.len()];
            loop {
                let pushed = self.dfs_push(s, t, u64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
        flow
    }

    /// After [`Self::max_flow`], the set of vertices still reachable from
    /// `s` in the residual network — one side of a minimum cut.
    pub fn min_cut_side(&self, s: u32) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut q = std::collections::VecDeque::new();
        seen[s as usize] = true;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &a in &self.head[u as usize] {
                let v = self.to[a as usize];
                if self.cap[a as usize] > 0 && !seen[v as usize] {
                    seen[v as usize] = true;
                    q.push_back(v);
                }
            }
        }
        seen
    }
}

/// Builds a unit-capacity flow network from an undirected edge list.
pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> FlowNetwork {
    let mut f = FlowNetwork::new(n);
    for &(a, b) in edges {
        f.add_edge(a, b, 1);
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bridge_flow_is_one() {
        // K4 — bridge — K4
        let mut edges = Vec::new();
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                edges.push((i, j));
                edges.push((i + 4, j + 4));
            }
        }
        edges.push((0, 4));
        let mut f = from_edges(8, &edges);
        assert_eq!(f.max_flow(1, 6), 1);
        let side = f.min_cut_side(1);
        assert_eq!(side.iter().filter(|&&b| b).count(), 4);
    }

    #[test]
    fn ring_flow_is_two() {
        let edges: Vec<(u32, u32)> = (0..6u32).map(|i| (i, (i + 1) % 6)).collect();
        let mut f = from_edges(6, &edges);
        assert_eq!(f.max_flow(0, 3), 2);
    }

    #[test]
    fn complete_graph_flow_is_degree() {
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let mut f = from_edges(5, &edges);
        assert_eq!(f.max_flow(0, 4), 4);
    }

    #[test]
    fn disconnected_flow_is_zero() {
        let mut f = from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(f.max_flow(0, 3), 0);
    }

    #[test]
    fn directed_arcs_are_one_way() {
        let mut f = FlowNetwork::new(3);
        f.add_arc(0, 1, 5);
        f.add_arc(1, 2, 3);
        assert_eq!(f.clone().max_flow(0, 2), 3);
        assert_eq!(f.max_flow(2, 0), 0);
    }
}
