//! Multilevel recursive bisection into `k` parts (the METIS recipe):
//! coarsen by heavy-edge matching, bisect the coarsest graph greedily,
//! then project back up refining with FM at every level; recurse on the
//! two sides until `k` parts exist.

use crate::coarsen::coarsen_to;
use crate::csr::Graph;
use crate::initial::greedy_bisection;
use crate::refine::refine_bisection;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Result of a k-way partitioning.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Part id (`0..k`) per vertex.
    pub assignment: Vec<u32>,
    /// Total weight of edges crossing parts (each counted once) — the
    /// paper's bandwidth metric `c`.
    pub cut: u64,
    /// Vertex weight per part.
    pub part_weights: Vec<u64>,
}

/// Tuning knobs; the defaults mirror common METIS settings.
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Allowed imbalance: each part ≤ `(1 + eps)·(total/k)`.
    pub eps: f64,
    /// Coarsening stops at this many vertices.
    pub coarsest: usize,
    /// Greedy-growing trials on the coarsest graph.
    pub init_trials: usize,
    /// FM passes per level.
    pub fm_passes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            eps: 0.03,
            coarsest: 48,
            init_trials: 8,
            fm_passes: 6,
            seed: 1,
        }
    }
}

/// Partitions `g` into `k` balanced parts minimising the edge cut.
///
/// # Panics
/// Panics if `k == 0`.
pub fn partition(g: &Graph, k: usize, cfg: &PartitionConfig) -> Partition {
    assert!(k > 0, "k must be positive");
    let n = g.len();
    let mut assignment = vec![0u32; n];
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    if k > 1 && n > 0 {
        let ids: Vec<u32> = (0..n as u32).collect();
        recurse(g, &ids, k, 0, &mut assignment, cfg, &mut rng);
    }
    let cut = g.edge_cut(&assignment);
    let part_weights = g.part_weights(&assignment, k);
    Partition {
        assignment,
        cut,
        part_weights,
    }
}

/// Recursively bisects the subgraph of `g` induced by `vertices` into `k`
/// parts labelled `base..base+k`.
fn recurse<R: Rng>(
    g: &Graph,
    vertices: &[u32],
    k: usize,
    base: u32,
    assignment: &mut [u32],
    cfg: &PartitionConfig,
    rng: &mut R,
) {
    if k == 1 || vertices.len() <= 1 {
        for &v in vertices {
            assignment[v as usize] = base;
        }
        return;
    }
    let k0 = k / 2;
    let k1 = k - k0;
    // induced subgraph
    let mut index = vec![u32::MAX; g.len()];
    for (i, &v) in vertices.iter().enumerate() {
        index[v as usize] = i as u32;
    }
    let vwgt: Vec<u64> = vertices.iter().map(|&v| g.vertex_weight(v)).collect();
    let mut edges: Vec<(u32, u32, u64)> = Vec::new();
    for (i, &v) in vertices.iter().enumerate() {
        for (u, w) in g.neighbors(v) {
            let j = index[u as usize];
            if j != u32::MAX && (j as usize) > i {
                edges.push((i as u32, j, w));
            }
        }
    }
    let sub = Graph::from_weighted(vwgt, &edges);
    let total = sub.total_weight();
    let target0 = total * k0 as u64 / k as u64;
    let local = bisect(&sub, target0, cfg, rng);
    let mut side0 = Vec::new();
    let mut side1 = Vec::new();
    for (i, &p) in local.iter().enumerate() {
        if p == 0 {
            side0.push(vertices[i]);
        } else {
            side1.push(vertices[i]);
        }
    }
    recurse(g, &side0, k0, base, assignment, cfg, rng);
    recurse(g, &side1, k1, base + k0 as u32, assignment, cfg, rng);
}

/// Multilevel bisection of `g` with part-0 target weight `target0`.
pub fn bisect<R: Rng>(g: &Graph, target0: u64, cfg: &PartitionConfig, rng: &mut R) -> Vec<u32> {
    let total = g.total_weight();
    let target1 = total - target0;
    let cap = |t: u64| ((t as f64) * (1.0 + cfg.eps)).ceil() as u64;
    let max_w = [cap(target0).max(target0 + 1), cap(target1).max(target1 + 1)];

    let targets = [target0, target1];
    let levels = coarsen_to(g, cfg.coarsest.max(4), rng);
    // initial partition on the coarsest graph
    let coarsest: &Graph = levels.last().map(|l| &l.graph).unwrap_or(g);
    let mut a = greedy_bisection(coarsest, target0, cfg.init_trials, rng);
    refine_bisection(coarsest, &mut a, targets, max_w, cfg.fm_passes);
    // project up through the hierarchy, refining at every level
    for i in (0..levels.len()).rev() {
        let lvl = &levels[i];
        let finer_len = lvl.fine_to_coarse.len();
        let mut fine = vec![0u32; finer_len];
        for v in 0..finer_len {
            fine[v] = a[lvl.fine_to_coarse[v] as usize];
        }
        a = fine;
        let finer: &Graph = if i == 0 { g } else { &levels[i - 1].graph };
        refine_bisection(finer, &mut a, targets, max_w, cfg.fm_passes);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(w: usize, h: usize) -> Graph {
        let mut edges = Vec::new();
        let id = |x: usize, y: usize| (y * w + x) as u32;
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        Graph::from_edges(w * h, &edges)
    }

    #[test]
    fn bisects_a_grid_near_optimally() {
        let g = grid(8, 8);
        let p = partition(&g, 2, &PartitionConfig::default());
        assert_eq!(p.part_weights.iter().sum::<u64>(), 64);
        // optimal cut of an 8x8 grid bisection is 8; allow slack
        assert!(p.cut <= 12, "cut = {}", p.cut);
        let max = *p.part_weights.iter().max().unwrap();
        assert!(max <= 33, "imbalance: {:?}", p.part_weights);
    }

    #[test]
    fn kway_parts_are_balanced() {
        let g = grid(8, 8);
        for k in [3usize, 4, 5, 7, 8, 16] {
            let p = partition(&g, k, &PartitionConfig::default());
            let ideal = 64.0 / k as f64;
            for (i, &w) in p.part_weights.iter().enumerate() {
                assert!(
                    (w as f64) <= ideal * 1.35 + 1.0,
                    "k={k} part {i} weight {w} vs ideal {ideal}"
                );
                assert!(w > 0, "k={k} part {i} empty");
            }
            // every part id in range
            assert!(p.assignment.iter().all(|&x| (x as usize) < k));
        }
    }

    #[test]
    fn cut_grows_with_k() {
        let g = grid(10, 10);
        let cfg = PartitionConfig::default();
        let c2 = partition(&g, 2, &cfg).cut;
        let c8 = partition(&g, 8, &cfg).cut;
        assert!(c8 > c2, "c2={c2} c8={c8}");
    }

    #[test]
    fn single_part_has_zero_cut() {
        let g = grid(4, 4);
        let p = partition(&g, 1, &PartitionConfig::default());
        assert_eq!(p.cut, 0);
        assert!(p.assignment.iter().all(|&x| x == 0));
    }

    #[test]
    fn partition_is_deterministic_per_seed() {
        let g = grid(8, 8);
        let cfg = PartitionConfig::default();
        let a = partition(&g, 4, &cfg);
        let b = partition(&g, 4, &cfg);
        assert_eq!(a.assignment, b.assignment);
        let c = partition(&g, 4, &PartitionConfig { seed: 2, ..cfg });
        // different seed may change the assignment but the cut stays sane
        assert!(c.cut <= a.cut * 2 + 8);
    }

    #[test]
    fn two_cliques_bisect_on_bridge() {
        let mut edges = Vec::new();
        for i in 0..10u32 {
            for j in (i + 1)..10 {
                edges.push((i, j));
                edges.push((i + 10, j + 10));
            }
        }
        edges.push((0, 10));
        let g = Graph::from_edges(20, &edges);
        let p = partition(&g, 2, &PartitionConfig::default());
        assert_eq!(p.cut, 1);
    }
}
