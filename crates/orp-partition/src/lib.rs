//! # orp-partition — a multilevel graph partitioner
//!
//! A from-scratch METIS-style partitioner used for the bandwidth
//! evaluation of §6.2.2: the vertices of a host-switch graph
//! (`V = H ∪ S`) are split into `P = 2..16` equal parts and the number of
//! crossing edges `c` is the *bandwidth*; `P = 2` gives the bisection
//! bandwidth.
//!
//! Pipeline (Karypis–Kumar multilevel recursive bisection):
//!
//! 1. [`coarsen`] — heavy-edge matching until the graph is small,
//! 2. [`initial`] — greedy graph-growing bisection of the coarsest graph,
//! 3. [`refine`] — FM passes while projecting back through the hierarchy,
//! 4. [`kway`] — recursive bisection with proportional targets for any `k`.
//!
//! [`maxflow`] provides a Dinic max-flow implementation to cross-check
//! cuts via the max-flow min-cut theorem.
//!
//! ```
//! use orp_partition::{Graph, partition, PartitionConfig};
//!
//! let ring: Vec<(u32, u32)> = (0..8u32).map(|i| (i, (i + 1) % 8)).collect();
//! let g = Graph::from_edges(8, &ring);
//! let p = partition(&g, 2, &PartitionConfig::default());
//! assert_eq!(p.cut, 2); // a ring bisects with exactly two cut edges
//! ```

#![warn(missing_docs)]

pub mod coarsen;
pub mod csr;
pub mod initial;
pub mod kway;
pub mod maxflow;
pub mod refine;

pub use csr::Graph;
pub use kway::{bisect, partition, Partition, PartitionConfig};
