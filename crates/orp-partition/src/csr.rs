//! The weighted undirected graph the partitioner works on, in CSR form.

/// An undirected graph with integer vertex and edge weights, stored as a
/// symmetric CSR adjacency. Self loops are dropped; parallel edges are
/// merged by summing weights.
#[derive(Debug, Clone)]
pub struct Graph {
    xadj: Vec<u32>,
    adjncy: Vec<u32>,
    adjwgt: Vec<u64>,
    vwgt: Vec<u64>,
}

impl Graph {
    /// Builds a graph from an edge list over `n` vertices with unit
    /// vertex and edge weights.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        Self::from_weighted(
            vec![1; n],
            edges
                .iter()
                .map(|&(a, b)| (a, b, 1))
                .collect::<Vec<_>>()
                .as_slice(),
        )
    }

    /// Builds a graph from weighted vertices and weighted edges.
    /// Duplicate `(a,b)` pairs (in either order) merge by summing weights.
    pub fn from_weighted(vwgt: Vec<u64>, edges: &[(u32, u32, u64)]) -> Self {
        let n = vwgt.len();
        // merge duplicates via sort over normalized pairs
        let mut norm: Vec<(u32, u32, u64)> = edges
            .iter()
            .filter(|&&(a, b, _)| a != b)
            .map(|&(a, b, w)| if a < b { (a, b, w) } else { (b, a, w) })
            .collect();
        norm.sort_unstable_by_key(|&(a, b, _)| (a, b));
        let mut merged: Vec<(u32, u32, u64)> = Vec::with_capacity(norm.len());
        for (a, b, w) in norm {
            match merged.last_mut() {
                Some(last) if last.0 == a && last.1 == b => last.2 += w,
                _ => merged.push((a, b, w)),
            }
        }
        let mut deg = vec![0u32; n];
        for &(a, b, _) in &merged {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let mut xadj = Vec::with_capacity(n + 1);
        xadj.push(0u32);
        for d in &deg {
            xadj.push(xadj.last().unwrap() + d);
        }
        let total = *xadj.last().unwrap() as usize;
        let mut adjncy = vec![0u32; total];
        let mut adjwgt = vec![0u64; total];
        let mut cursor: Vec<u32> = xadj[..n].to_vec();
        for &(a, b, w) in &merged {
            let ca = cursor[a as usize] as usize;
            adjncy[ca] = b;
            adjwgt[ca] = w;
            cursor[a as usize] += 1;
            let cb = cursor[b as usize] as usize;
            adjncy[cb] = a;
            adjwgt[cb] = w;
            cursor[b as usize] += 1;
        }
        Self {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vwgt.len()
    }

    /// Whether the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vwgt.is_empty()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Weight of vertex `v`.
    #[inline]
    pub fn vertex_weight(&self, v: u32) -> u64 {
        self.vwgt[v as usize]
    }

    /// Total vertex weight.
    pub fn total_weight(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    /// Neighbours of `v` with edge weights.
    #[inline]
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u64)> + '_ {
        let lo = self.xadj[v as usize] as usize;
        let hi = self.xadj[v as usize + 1] as usize;
        self.adjncy[lo..hi]
            .iter()
            .copied()
            .zip(self.adjwgt[lo..hi].iter().copied())
    }

    /// Degree of `v` (distinct neighbours).
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        (self.xadj[v as usize + 1] - self.xadj[v as usize]) as usize
    }

    /// Sum of weights of edges whose endpoints lie in different parts of
    /// `assignment` — the `c` the paper calls *bandwidth* when vertices
    /// are partitioned (each edge counted once).
    pub fn edge_cut(&self, assignment: &[u32]) -> u64 {
        debug_assert_eq!(assignment.len(), self.len());
        let mut cut = 0u64;
        for v in 0..self.len() as u32 {
            for (u, w) in self.neighbors(v) {
                if u > v && assignment[u as usize] != assignment[v as usize] {
                    cut += w;
                }
            }
        }
        cut
    }

    /// Per-part vertex weights under `assignment` (`k` parts).
    pub fn part_weights(&self, assignment: &[u32], k: usize) -> Vec<u64> {
        let mut w = vec![0u64; k];
        for (v, &p) in assignment.iter().enumerate() {
            w[p as usize] += self.vwgt[v];
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_builds_symmetric_csr() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        let n0: Vec<u32> = g.neighbors(0).map(|(u, _)| u).collect();
        assert!(n0.contains(&1) && n0.contains(&3));
    }

    #[test]
    fn duplicates_merge_and_loops_drop() {
        let g = Graph::from_weighted(vec![1; 3], &[(0, 1, 2), (1, 0, 3), (2, 2, 9)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0).next(), Some((1, 5)));
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn edge_cut_counts_cross_edges_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        // split {0,1} | {2,3}: edges 1-2 and 3-0 cross
        assert_eq!(g.edge_cut(&[0, 0, 1, 1]), 2);
        assert_eq!(g.edge_cut(&[0, 0, 0, 0]), 0);
        assert_eq!(g.edge_cut(&[0, 1, 0, 1]), 4);
    }

    #[test]
    fn part_weights_sum_to_total() {
        let g = Graph::from_weighted(vec![2, 3, 5], &[(0, 1, 1)]);
        let w = g.part_weights(&[0, 1, 1], 2);
        assert_eq!(w, vec![2, 8]);
        assert_eq!(g.total_weight(), 10);
    }
}
