//! Fiduccia–Mattheyses-style refinement of a bisection: gain-ordered
//! moves taken from the currently more-loaded side, with lock-out and
//! rollback to the best *balanced* prefix.

use crate::csr::Graph;

/// Gain of moving `v` to the other side: external minus internal edge
/// weight.
fn gain(g: &Graph, assignment: &[u32], v: u32) -> i64 {
    let p = assignment[v as usize];
    let mut ext = 0i64;
    let mut int = 0i64;
    for (u, w) in g.neighbors(v) {
        if assignment[u as usize] == p {
            int += w as i64;
        } else {
            ext += w as i64;
        }
    }
    ext - int
}

/// One FM pass over a bisection (parts 0/1).
///
/// Moves always leave the side whose load (weight relative to `targets`)
/// is higher, so the pass walks through near-balanced states; a state
/// qualifies as a rollback point only if both parts fit `max_weight`.
/// Returns the cut improvement (non-negative).
fn fm_pass(g: &Graph, assignment: &mut [u32], targets: [u64; 2], max_weight: [u64; 2]) -> u64 {
    let n = g.len();
    let mut gains: Vec<i64> = (0..n as u32).map(|v| gain(g, assignment, v)).collect();
    let mut part_w = [0u64; 2];
    for (v, &p) in assignment.iter().enumerate() {
        part_w[p as usize] += g.vertex_weight(v as u32);
    }
    let mut locked = vec![false; n];
    let mut moves: Vec<u32> = Vec::new();
    let mut cum: i64 = 0;
    let mut best_cum: i64 = 0;
    let mut best_len = 0usize;
    let t0 = targets[0].max(1);
    let t1 = targets[1].max(1);
    for _ in 0..n {
        // move from the side with higher relative load
        let from = if part_w[0] * t1 >= part_w[1] * t0 {
            0usize
        } else {
            1
        };
        let to = 1 - from;
        let mut cand: Option<(u32, i64)> = None;
        for v in 0..n as u32 {
            if locked[v as usize] || assignment[v as usize] as usize != from {
                continue;
            }
            if part_w[to] + g.vertex_weight(v) > max_weight[to] {
                continue;
            }
            match cand {
                Some((_, bg)) if bg >= gains[v as usize] => {}
                _ => cand = Some((v, gains[v as usize])),
            }
        }
        let Some((v, gv)) = cand else { break };
        assignment[v as usize] = to as u32;
        part_w[from] -= g.vertex_weight(v);
        part_w[to] += g.vertex_weight(v);
        locked[v as usize] = true;
        cum += gv;
        moves.push(v);
        gains[v as usize] = -gains[v as usize];
        for (u, w) in g.neighbors(v) {
            if assignment[u as usize] == to as u32 {
                gains[u as usize] -= 2 * w as i64;
            } else {
                gains[u as usize] += 2 * w as i64;
            }
        }
        let balanced = part_w[0] <= max_weight[0] && part_w[1] <= max_weight[1];
        if balanced && cum > best_cum {
            best_cum = cum;
            best_len = moves.len();
        }
    }
    // roll back past the best balanced prefix
    for &v in &moves[best_len..] {
        let p = assignment[v as usize] as usize;
        assignment[v as usize] = (1 - p) as u32;
    }
    best_cum.max(0) as u64
}

/// Refines a bisection with repeated FM passes until a pass stops
/// improving (at most `max_passes`). `targets` are the desired part
/// weights; `max_weight` caps each side (the balance constraint).
///
/// Returns the total cut improvement.
pub fn refine_bisection(
    g: &Graph,
    assignment: &mut [u32],
    targets: [u64; 2],
    max_weight: [u64; 2],
    max_passes: usize,
) -> u64 {
    let mut total = 0;
    for _ in 0..max_passes {
        let improved = fm_pass(g, assignment, targets, max_weight);
        total += improved;
        if improved == 0 {
            break;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two K4s plus a bridge; start from a deliberately bad split.
    fn two_cliques() -> Graph {
        let mut edges = Vec::new();
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                edges.push((i, j));
                edges.push((i + 4, j + 4));
            }
        }
        edges.push((0, 4));
        Graph::from_edges(8, &edges)
    }

    #[test]
    fn fm_recovers_optimal_clique_split() {
        let g = two_cliques();
        // interleaved split: cut = lots
        let mut a = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let before = g.edge_cut(&a);
        let improved = refine_bisection(&g, &mut a, [4, 4], [5, 5], 8);
        let after = g.edge_cut(&a);
        assert_eq!(before - improved, after);
        assert_eq!(after, 1, "should cut only the bridge, got {a:?}");
        assert_eq!(g.part_weights(&a, 2), vec![4, 4]);
    }

    #[test]
    fn fm_respects_balance_cap() {
        let g = two_cliques();
        let mut a = vec![0, 0, 0, 0, 1, 1, 1, 1];
        refine_bisection(&g, &mut a, [4, 4], [5, 5], 8);
        let w = g.part_weights(&a, 2);
        assert!(w[0] <= 5 && w[1] <= 5);
        assert_eq!(g.edge_cut(&a), 1); // already optimal, must not degrade
    }

    #[test]
    fn fm_never_worsens_the_cut() {
        let g = two_cliques();
        for start in [
            vec![0u32, 0, 1, 1, 0, 0, 1, 1],
            vec![1, 0, 0, 0, 1, 1, 0, 1],
            vec![0, 1, 1, 0, 1, 0, 0, 1],
        ] {
            let mut a = start.clone();
            let before = g.edge_cut(&a);
            refine_bisection(&g, &mut a, [4, 4], [5, 5], 4);
            assert!(g.edge_cut(&a) <= before);
        }
    }

    #[test]
    fn weighted_vertices_respect_cap() {
        // a triangle with one heavy vertex
        let g = Graph::from_weighted(vec![10, 1, 1], &[(0, 1, 1), (1, 2, 1), (0, 2, 1)]);
        let mut a = vec![0u32, 1, 1];
        refine_bisection(&g, &mut a, [10, 2], [10, 2], 4);
        let w = g.part_weights(&a, 2);
        assert!(w[0] <= 10 && w[1] <= 2);
    }

    #[test]
    fn ring_interleaved_start_improves() {
        let edges: Vec<(u32, u32)> = (0..8u32).map(|i| (i, (i + 1) % 8)).collect();
        let g = Graph::from_edges(8, &edges);
        let mut a = vec![0, 1, 0, 1, 0, 1, 0, 1];
        assert_eq!(g.edge_cut(&a), 8);
        refine_bisection(&g, &mut a, [4, 4], [5, 5], 8);
        assert_eq!(g.edge_cut(&a), 2, "{a:?}");
    }
}
