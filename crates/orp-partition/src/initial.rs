//! Initial bisection by greedy graph growing (GGP): grow a BFS region
//! from a random seed until it reaches the target weight, preferring the
//! frontier vertex with the highest gain.

use crate::csr::Graph;
use rand::Rng;

/// Bisects `g` into parts 0/1 with part-0 target weight `target0`.
/// Returns the assignment. Runs `trials` seeded growths, keeping the best
/// cut among balanced results.
pub fn greedy_bisection<R: Rng>(g: &Graph, target0: u64, trials: usize, rng: &mut R) -> Vec<u32> {
    let n = g.len();
    if n == 0 {
        return Vec::new();
    }
    let mut best: Option<(u64, Vec<u32>)> = None;
    for _ in 0..trials.max(1) {
        let seed = rng.gen_range(0..n as u32);
        let assignment = grow_from(g, seed, target0);
        let cut = g.edge_cut(&assignment);
        if best.as_ref().map(|(c, _)| cut < *c).unwrap_or(true) {
            best = Some((cut, assignment));
        }
    }
    best.expect("at least one trial").1
}

/// Grows part 0 from `seed` until its weight reaches `target0`; everything
/// else is part 1. Frontier selection maximises
/// `gain = (edges into part 0) − (edges to the outside)`.
fn grow_from(g: &Graph, seed: u32, target0: u64) -> Vec<u32> {
    let n = g.len();
    let mut assignment = vec![1u32; n];
    if target0 == 0 {
        return assignment;
    }
    let mut in0 = vec![false; n];
    let mut gain = vec![0i64; n];
    let mut frontier: Vec<u32> = Vec::new();
    let mut weight0 = 0u64;

    let add = |v: u32,
               assignment: &mut Vec<u32>,
               in0: &mut Vec<bool>,
               gain: &mut Vec<i64>,
               frontier: &mut Vec<u32>,
               weight0: &mut u64| {
        assignment[v as usize] = 0;
        in0[v as usize] = true;
        *weight0 += g.vertex_weight(v);
        for (u, w) in g.neighbors(v) {
            if !in0[u as usize] {
                if !frontier.contains(&u) {
                    frontier.push(u);
                    // initial gain: edges into 0 minus edges elsewhere
                    let mut into0 = 0i64;
                    let mut out = 0i64;
                    for (x, wx) in g.neighbors(u) {
                        if in0[x as usize] {
                            into0 += wx as i64;
                        } else {
                            out += wx as i64;
                        }
                    }
                    gain[u as usize] = into0 - out;
                } else {
                    gain[u as usize] += 2 * w as i64;
                }
            }
        }
    };

    add(
        seed,
        &mut assignment,
        &mut in0,
        &mut gain,
        &mut frontier,
        &mut weight0,
    );
    while weight0 < target0 {
        // pick max-gain frontier vertex; fall back to any unassigned vertex
        // when the region's component is exhausted
        let next = if let Some((idx, _)) = frontier
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| gain[v as usize])
        {
            frontier.swap_remove(idx)
        } else if let Some(v) = (0..n as u32).find(|&v| !in0[v as usize]) {
            v
        } else {
            break;
        };
        add(
            next,
            &mut assignment,
            &mut in0,
            &mut gain,
            &mut frontier,
            &mut weight0,
        );
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn bisects_two_cliques_at_the_bridge() {
        // K4 — bridge — K4: optimal bisection cuts exactly the bridge.
        let mut edges = Vec::new();
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                edges.push((i, j));
                edges.push((i + 4, j + 4));
            }
        }
        edges.push((3, 4));
        let g = Graph::from_edges(8, &edges);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = greedy_bisection(&g, 4, 8, &mut rng);
        assert_eq!(g.edge_cut(&a), 1);
        assert_eq!(g.part_weights(&a, 2), vec![4, 4]);
    }

    #[test]
    fn respects_target_weight() {
        let edges: Vec<(u32, u32)> = (0..9u32).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(10, &edges); // path of 10
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = greedy_bisection(&g, 3, 4, &mut rng);
        let w = g.part_weights(&a, 2);
        assert_eq!(w[0], 3);
        // path bisection cut of contiguous region = 1 or 2
        assert!(g.edge_cut(&a) <= 2);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (4, 5)]);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let a = greedy_bisection(&g, 3, 4, &mut rng);
        assert_eq!(g.part_weights(&a, 2)[0], 3);
    }

    #[test]
    fn zero_target_keeps_everything_in_part_one() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let a = greedy_bisection(&g, 0, 2, &mut rng);
        assert_eq!(a, vec![1, 1, 1]);
    }
}
