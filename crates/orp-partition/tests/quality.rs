//! Partition quality checks against exact flow bounds: any bisection
//! separating vertices `s` and `t` is an s-t cut, so its weight is lower-
//! bounded by `maxflow(s, t)` — the §6.2.2 max-flow min-cut argument,
//! checked here on random instances.

use orp_partition::maxflow::from_edges;
use orp_partition::{partition, Graph, PartitionConfig};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A connected random graph: ring + extra random chords.
fn random_graph(n: usize, extra: usize, seed: u64) -> (Graph, Vec<(u32, u32)>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
    let mut added = 0;
    while added < extra {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
            edges.push((a, b));
            added += 1;
        }
    }
    (Graph::from_edges(n, &edges), edges)
}

#[test]
fn bisection_respects_maxflow_lower_bound() {
    for seed in [1u64, 2, 3, 4] {
        let (g, edges) = random_graph(40, 40, seed);
        let p = partition(
            &g,
            2,
            &PartitionConfig {
                seed,
                ..Default::default()
            },
        );
        // pick a vertex from each side and bound the cut by maxflow
        let s = p.assignment.iter().position(|&x| x == 0).unwrap() as u32;
        let t = p.assignment.iter().position(|&x| x == 1).unwrap() as u32;
        let mut fl = from_edges(40, &edges);
        let bound = fl.max_flow(s, t);
        // the bisection IS an s-t cut, so max-flow min-cut bounds it
        assert!(
            p.cut >= bound,
            "seed {seed}: cut {} below its flow witness {bound}",
            p.cut
        );
        // and the cut is an actual edge count over the assignment
        assert_eq!(p.cut, g.edge_cut(&p.assignment));
    }
}

#[test]
fn min_cut_side_matches_flow_value() {
    // flow/cut duality on the two-clique bridge instance
    let mut edges = Vec::new();
    for i in 0..6u32 {
        for j in (i + 1)..6 {
            edges.push((i, j));
            edges.push((i + 6, j + 6));
        }
    }
    edges.push((0, 6));
    let mut fl = from_edges(12, &edges);
    let flow = fl.max_flow(1, 7);
    assert_eq!(flow, 1);
    let side = fl.min_cut_side(1);
    // the residual-reachable side is exactly the first clique
    let cut_edges = edges
        .iter()
        .filter(|&&(a, b)| side[a as usize] != side[b as usize])
        .count();
    assert_eq!(cut_edges as u64, flow);
}

#[test]
fn partitioner_matches_exact_min_bisection_on_small_instances() {
    // brute-force the optimal balanced bisection on 12 vertices and
    // compare; the multilevel heuristic should be within 1.5×
    for seed in [5u64, 6] {
        let (g, _) = random_graph(12, 8, seed);
        // allow the same 5..7 imbalance the heuristic's eps allows
        let mut best = u64::MAX;
        for mask in 0u32..(1 << 12) {
            if (5..=7).contains(&mask.count_ones()) {
                let assignment: Vec<u32> = (0..12).map(|v| (mask >> v) & 1).collect();
                best = best.min(g.edge_cut(&assignment));
            }
        }
        let p = partition(
            &g,
            2,
            &PartitionConfig {
                seed,
                ..Default::default()
            },
        );
        assert!(
            p.cut <= best * 3 / 2 + 1,
            "seed {seed}: heuristic {} vs optimal {best}",
            p.cut
        );
        assert!(p.cut >= best, "heuristic cannot beat the optimum");
    }
}
