//! Property tests pinning [`Histogram`] quantiles to the documented
//! log-linear error bound: every estimate is the lower boundary of the
//! bucket holding the exact rank-`⌈q·n⌉` order statistic, so it never
//! exceeds the exact answer and trails it by at most one bucket width
//! (≤ 1/32 of the value's magnitude — the "~3% relative error" the
//! crate docs promise).

use orp_obs::Histogram;
use proptest::prelude::*;

/// Deterministic value stream (splitmix64) so a failing case replays
/// from the shrunk `(seed, …)` tuple alone.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The reference answer: quantile `q` over the raw values with the same
/// rank convention as `Histogram::quantile` (`⌈q·n⌉`, at least 1).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantile_is_within_one_log_linear_bucket(
        (len, seed, q_mil, scale) in (1usize..300, any::<u64>(), 0u64..=1000, 1u32..48)
    ) {
        let mask = (1u64 << scale) - 1;
        let mut state = seed;
        let mut h = Histogram::new();
        let mut values: Vec<u64> = (0..len)
            .map(|_| splitmix(&mut state) & mask)
            .collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();

        let q = q_mil as f64 / 1000.0;
        let exact = exact_quantile(&values, q);
        let est = h.quantile(q).expect("non-empty histogram");

        // never above the exact order statistic …
        prop_assert!(
            est <= exact,
            "q={q}: estimate {est} above exact {exact}"
        );
        // … and within one bucket width below it (width ≤ value/32,
        // and exact buckets below 32 make the error zero there).
        prop_assert!(
            exact - est <= exact / 32 + 1,
            "q={q}: estimate {est} misses exact {exact} by {} (> {} allowed)",
            exact - est,
            exact / 32 + 1
        );
    }

    #[test]
    fn quantile_extremes_hit_min_and_max(
        (len, seed, scale) in (1usize..200, any::<u64>(), 1u32..40)
    ) {
        let mask = (1u64 << scale) - 1;
        let mut state = seed;
        let mut h = Histogram::new();
        for _ in 0..len {
            h.record(splitmix(&mut state) & mask);
        }
        // q = 0 resolves rank 1 and clamps up to the observed minimum;
        // q = 1 must land in the last non-empty bucket, clamped to max.
        prop_assert_eq!(h.quantile(0.0), h.min());
        let p100 = h.quantile(1.0).expect("non-empty");
        let max = h.max().expect("non-empty");
        prop_assert!(p100 <= max && max - p100 <= max / 32 + 1);
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        (len, seed, scale) in (2usize..200, any::<u64>(), 1u32..40)
    ) {
        let mask = (1u64 << scale) - 1;
        let mut state = seed;
        let mut h = Histogram::new();
        for _ in 0..len {
            h.record(splitmix(&mut state) & mask);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        for w in qs.windows(2) {
            let lo = h.quantile(w[0]).unwrap();
            let hi = h.quantile(w[1]).unwrap();
            prop_assert!(lo <= hi, "q={} gave {lo} > q={} gave {hi}", w[0], w[1]);
        }
    }
}
