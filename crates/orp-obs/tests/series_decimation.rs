//! Property tests pinning the recorder's bounded-series decimation
//! (keep-every-k doubling): memory stays O(cap) for any run length,
//! the kept points are a subset of the pushed points in timestamp
//! order, and the envelope — first, last, earliest argmin, earliest
//! argmax — always survives.

use orp_obs::{ObsConfig, Recorder};
use proptest::prelude::*;

/// Deterministic value stream (splitmix64) so a failing case replays
/// from the shrunk `(seed, …)` tuple alone.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn record_series(cap: usize, ys: &[f64]) -> Vec<(f64, f64)> {
    let rec = Recorder::with_config(ObsConfig {
        max_series_points: cap,
        ..ObsConfig::default()
    });
    for (i, &y) in ys.iter().enumerate() {
        rec.series("s", i as f64, y);
    }
    rec.snapshot()
        .unwrap()
        .series("s")
        .map(|pts| pts.iter().map(|p| (p.x, p.y)).collect())
        .unwrap_or_default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn decimation_preserves_endpoints_and_extrema(
        (len, seed, cap) in (1usize..5000, any::<u64>(), 2usize..64)
    ) {
        let mut state = seed;
        let ys: Vec<f64> = (0..len)
            .map(|_| (splitmix(&mut state) % 10_000) as f64 / 10.0)
            .collect();
        let kept = record_series(cap, &ys);

        // bounded: the retained vector never exceeds the (effective)
        // cap, and collect() adds at most min/max/last on top
        prop_assert!(
            kept.len() <= cap.max(4) + 3,
            "{} points kept for cap {cap}",
            kept.len()
        );
        // subset of the input, in x (== push) order
        for w in kept.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "out of order: {w:?}");
        }
        for &(x, y) in &kept {
            prop_assert!(ys[x as usize] == y, "point ({x}, {y}) not from the input");
        }
        // the envelope survives any decimation
        prop_assert!(kept.iter().any(|&(x, _)| x == 0.0), "first point lost");
        prop_assert!(
            kept.iter().any(|&(x, _)| x == (len - 1) as f64),
            "last point lost"
        );
        let min = ys.iter().cloned().fold(f64::MAX, f64::min);
        let max = ys.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(kept.iter().any(|&(_, y)| y == min), "argmin lost");
        prop_assert!(kept.iter().any(|&(_, y)| y == max), "argmax lost");
    }

    #[test]
    fn decimation_is_a_pure_function_of_the_push_sequence(
        (len, seed, cap) in (1usize..2000, any::<u64>(), 2usize..32)
    ) {
        let mut state = seed;
        let ys: Vec<f64> = (0..len)
            .map(|_| (splitmix(&mut state) % 1000) as f64)
            .collect();
        prop_assert_eq!(record_series(cap, &ys), record_series(cap, &ys));
    }
}
