//! The typed event taxonomy recorded into the [`crate::Journal`].
//!
//! Events are small `Copy` records — the journal is a ring buffer in the
//! hot path of the simulator, so an event must never allocate. Each
//! event renders to a dotted name (stable across PRs; sinks and tests
//! key on it) plus a list of numeric arguments.

/// Lifecycle stage of a simulated network flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowStage {
    /// The flow was created by a send (route resolved, latency pending).
    Created,
    /// The flow started streaming after its activation delay.
    Activated,
    /// The flow drained and its message was delivered.
    Completed,
    /// A mid-run fault forced the flow onto a new route.
    Rerouted,
}

impl FlowStage {
    fn name(self) -> &'static str {
        match self {
            Self::Created => "flow.created",
            Self::Activated => "flow.activated",
            Self::Completed => "flow.completed",
            Self::Rerouted => "flow.rerouted",
        }
    }
}

/// Which network element a fault event killed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A switch died (with every incident link and attached host).
    SwitchDown,
    /// An undirected switch–switch link died (both directions).
    LinkDown,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            Self::SwitchDown => "fault.switch_down",
            Self::LinkDown => "fault.link_down",
        }
    }
}

/// One recorded occurrence. See DESIGN.md §4d for the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// Annealer phase boundary: schedule position and phase-local stats.
    Phase {
        /// Phase index (0-based).
        index: u32,
        /// Temperature at the phase boundary.
        temperature: f64,
        /// Moves proposed within the phase.
        proposed: u64,
        /// Moves accepted within the phase.
        accepted: u64,
        /// Best h-ASPL so far.
        best: f64,
    },
    /// The annealer found a new global best.
    Best {
        /// Iteration at which it was found.
        iter: u64,
        /// The new best h-ASPL.
        value: f64,
    },
    /// A simulated flow changed lifecycle stage.
    Flow {
        /// Stage entered.
        stage: FlowStage,
        /// Flow id (per-simulation sequence number).
        id: u64,
        /// Source rank.
        src: u32,
        /// Destination rank.
        dst: u32,
        /// Payload size in bytes.
        bytes: f64,
    },
    /// A network element died (static or mid-run fault).
    Fault {
        /// What kind of element died.
        kind: FaultKind,
        /// The switch (for [`FaultKind::SwitchDown`]) or one endpoint.
        a: u32,
        /// The other link endpoint (0 for switch deaths).
        b: u32,
    },
    /// Routes were rebuilt after a fault.
    Reroute {
        /// Unfinished flows that were moved onto new routes.
        flows: u64,
    },
    /// Freeform named marker with one numeric payload.
    Mark {
        /// Marker name (dotted, like all taxonomy names).
        name: &'static str,
        /// Payload value.
        value: f64,
    },
}

impl Event {
    /// The event's stable dotted name (e.g. `"flow.created"`).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Phase { .. } => "anneal.phase",
            Self::Best { .. } => "anneal.best",
            Self::Flow { stage, .. } => stage.name(),
            Self::Fault { kind, .. } => kind.name(),
            Self::Reroute { .. } => "fault.reroute",
            Self::Mark { name, .. } => name,
        }
    }

    /// The event's numeric arguments as `(key, value)` pairs, in a
    /// stable order — what the sinks serialize.
    pub fn args(&self) -> Vec<(&'static str, f64)> {
        match *self {
            Self::Phase {
                index,
                temperature,
                proposed,
                accepted,
                best,
            } => vec![
                ("index", index as f64),
                ("temperature", temperature),
                ("proposed", proposed as f64),
                ("accepted", accepted as f64),
                ("best", best),
            ],
            Self::Best { iter, value } => vec![("iter", iter as f64), ("value", value)],
            Self::Flow {
                id,
                src,
                dst,
                bytes,
                ..
            } => vec![
                ("id", id as f64),
                ("src", src as f64),
                ("dst", dst as f64),
                ("bytes", bytes),
            ],
            Self::Fault { a, b, .. } => vec![("a", a as f64), ("b", b as f64)],
            Self::Reroute { flows } => vec![("flows", flows as f64)],
            Self::Mark { value, .. } => vec![("value", value)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_dotted_and_stable() {
        let e = Event::Flow {
            stage: FlowStage::Created,
            id: 1,
            src: 0,
            dst: 2,
            bytes: 10.0,
        };
        assert_eq!(e.name(), "flow.created");
        assert_eq!(
            Event::Fault {
                kind: FaultKind::LinkDown,
                a: 1,
                b: 2
            }
            .name(),
            "fault.link_down"
        );
        assert_eq!(
            Event::Mark {
                name: "custom.thing",
                value: 0.0
            }
            .name(),
            "custom.thing"
        );
    }

    #[test]
    fn args_carry_the_payload() {
        let e = Event::Best {
            iter: 42,
            value: 3.5,
        };
        assert_eq!(e.args(), vec![("iter", 42.0), ("value", 3.5)]);
    }
}
