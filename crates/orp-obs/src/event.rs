//! The typed event taxonomy recorded into the [`crate::Journal`].
//!
//! Events are small `Copy` records — the journal is a ring buffer in the
//! hot path of the simulator, so an event must never allocate. Each
//! event renders to a dotted name (stable across PRs; sinks and tests
//! key on it) plus a list of numeric arguments.

/// Lifecycle stage of a simulated network flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowStage {
    /// The flow was created by a send (route resolved, latency pending).
    Created,
    /// The flow started streaming after its activation delay.
    Activated,
    /// The flow drained and its message was delivered.
    Completed,
    /// A mid-run fault forced the flow onto a new route.
    Rerouted,
}

impl FlowStage {
    fn name(self) -> &'static str {
        match self {
            Self::Created => "flow.created",
            Self::Activated => "flow.activated",
            Self::Completed => "flow.completed",
            Self::Rerouted => "flow.rerouted",
        }
    }
}

/// Which network element a fault event killed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A switch died (with every incident link and attached host).
    SwitchDown,
    /// An undirected switch–switch link died (both directions).
    LinkDown,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            Self::SwitchDown => "fault.switch_down",
            Self::LinkDown => "fault.link_down",
        }
    }
}

/// One recorded occurrence. See DESIGN.md §4d for the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// Annealer phase boundary: schedule position and phase-local stats.
    Phase {
        /// Phase index (0-based).
        index: u32,
        /// Temperature at the phase boundary.
        temperature: f64,
        /// Moves proposed within the phase.
        proposed: u64,
        /// Moves accepted within the phase.
        accepted: u64,
        /// Best h-ASPL so far.
        best: f64,
    },
    /// The annealer found a new global best.
    Best {
        /// Iteration at which it was found.
        iter: u64,
        /// The new best h-ASPL.
        value: f64,
    },
    /// A simulated flow changed lifecycle stage.
    Flow {
        /// Stage entered.
        stage: FlowStage,
        /// Flow id (per-simulation sequence number).
        id: u64,
        /// Source rank.
        src: u32,
        /// Destination rank.
        dst: u32,
        /// Payload size in bytes.
        bytes: f64,
    },
    /// A network element died (static or mid-run fault).
    Fault {
        /// What kind of element died.
        kind: FaultKind,
        /// The switch (for [`FaultKind::SwitchDown`]) or one endpoint.
        a: u32,
        /// The other link endpoint (0 for switch deaths).
        b: u32,
    },
    /// Routes were rebuilt after a fault.
    Reroute {
        /// Unfinished flows that were moved onto new routes.
        flows: u64,
    },
    /// Freeform named marker with one numeric payload.
    Mark {
        /// Marker name (dotted, like all taxonomy names).
        name: &'static str,
        /// Payload value.
        value: f64,
    },
    /// Per-flow latency decomposition, emitted once when a flow
    /// completes. All times are **simulated seconds** (deterministic,
    /// unlike the wall-clock journal timestamp), and the four
    /// components sum to exactly `completed - created` — the invariant
    /// the `orp_obs::analyze` attribution engine builds on.
    FlowDone {
        /// Flow id (per-simulation sequence number).
        id: u64,
        /// Source rank.
        src: u32,
        /// Destination rank.
        dst: u32,
        /// Payload size in bytes.
        bytes: f64,
        /// Links on the final route (host up/down links included).
        hops: u32,
        /// Simulated time the flow was created (send issued).
        created: f64,
        /// Simulated time the message was delivered.
        completed: f64,
        /// First-route activation delay (software overhead + per-hop
        /// wire/switch latency).
        propagation: f64,
        /// `bytes / bandwidth` — the time the payload would need on an
        /// uncontended link.
        serialization: f64,
        /// Streaming time beyond serialization: contention on shared
        /// links under max-min fair sharing.
        queueing: f64,
        /// Non-streaming time beyond the first activation delay —
        /// reroute/re-issue penalties after mid-run faults.
        stall: f64,
    },
    /// Flow-dependency edge: `flow`'s issuing rank was last unblocked
    /// by the delivery of `parent`. The edges span the DAG that
    /// critical-path extraction walks.
    FlowDep {
        /// The dependent (later) flow.
        flow: u64,
        /// The flow whose delivery gated it.
        parent: u64,
    },
    /// One fabric (switch→switch) hop of a completed flow's route, with
    /// the modelled head-arrival (enqueue) and tail-departure (drain)
    /// times in simulated seconds.
    Hop {
        /// The flow this hop belongs to.
        flow: u64,
        /// Position of the link on the route (0-based, counting host
        /// up/down links too).
        index: u32,
        /// Source switch of the directed link.
        from: u32,
        /// Destination switch of the directed link.
        to: u32,
        /// Simulated time the message head reached this link.
        enqueue: f64,
        /// Simulated time the message tail left this link.
        drain: f64,
    },
    /// A watchdog detected stalled progress: the monitored worker made
    /// no progress (no accepted move, no processed event) within its
    /// wall-clock window. Emitted just before the run force-checkpoints
    /// and exits with a resumable error.
    Stalled {
        /// What stalled: 0 = annealer, 1 = simulator, 2 = restart
        /// worker.
        source: u32,
        /// Worker / restart index (0 for single-worker runs).
        worker: u32,
        /// The watchdog window in wall-clock seconds.
        window_secs: f64,
        /// Progress ticks the worker had reported before stalling
        /// (iterations or processed events).
        progress: u64,
    },
    /// Whole-run load rollup for one directed link, emitted at the end
    /// of a simulation for every link that carried bytes.
    LinkLoad {
        /// Directed link id.
        link: u32,
        /// Source endpoint (host for uplinks, switch otherwise).
        a: u32,
        /// Destination endpoint (host for downlinks, switch otherwise).
        b: u32,
        /// 0 = host uplink, 1 = host downlink, 2 = switch→switch.
        kind: u32,
        /// Bytes moved over the link during the run.
        bytes: f64,
        /// Utilization in parts-per-million of `bandwidth × makespan`.
        util_ppm: f64,
        /// Time-averaged number of flows sharing the link.
        avg_flows: f64,
        /// Peak number of flows sharing the link.
        peak_flows: u32,
    },
}

impl Event {
    /// The event's stable dotted name (e.g. `"flow.created"`).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Phase { .. } => "anneal.phase",
            Self::Best { .. } => "anneal.best",
            Self::Flow { stage, .. } => stage.name(),
            Self::Fault { kind, .. } => kind.name(),
            Self::Reroute { .. } => "fault.reroute",
            Self::Mark { name, .. } => name,
            Self::FlowDone { .. } => "flow.done",
            Self::FlowDep { .. } => "flow.dep",
            Self::Hop { .. } => "flow.hop",
            Self::Stalled { .. } => "watchdog.stalled",
            Self::LinkLoad { .. } => "link.load",
        }
    }

    /// The event's numeric arguments as `(key, value)` pairs, in a
    /// stable order — what the sinks serialize.
    pub fn args(&self) -> Vec<(&'static str, f64)> {
        match *self {
            Self::Phase {
                index,
                temperature,
                proposed,
                accepted,
                best,
            } => vec![
                ("index", index as f64),
                ("temperature", temperature),
                ("proposed", proposed as f64),
                ("accepted", accepted as f64),
                ("best", best),
            ],
            Self::Best { iter, value } => vec![("iter", iter as f64), ("value", value)],
            Self::Flow {
                id,
                src,
                dst,
                bytes,
                ..
            } => vec![
                ("id", id as f64),
                ("src", src as f64),
                ("dst", dst as f64),
                ("bytes", bytes),
            ],
            Self::Fault { a, b, .. } => vec![("a", a as f64), ("b", b as f64)],
            Self::Reroute { flows } => vec![("flows", flows as f64)],
            Self::Mark { value, .. } => vec![("value", value)],
            Self::FlowDone {
                id,
                src,
                dst,
                bytes,
                hops,
                created,
                completed,
                propagation,
                serialization,
                queueing,
                stall,
            } => vec![
                ("id", id as f64),
                ("src", src as f64),
                ("dst", dst as f64),
                ("bytes", bytes),
                ("hops", hops as f64),
                ("created", created),
                ("completed", completed),
                ("propagation", propagation),
                ("serialization", serialization),
                ("queueing", queueing),
                ("stall", stall),
            ],
            Self::FlowDep { flow, parent } => {
                vec![("flow", flow as f64), ("parent", parent as f64)]
            }
            Self::Hop {
                flow,
                index,
                from,
                to,
                enqueue,
                drain,
            } => vec![
                ("flow", flow as f64),
                ("index", index as f64),
                ("from", from as f64),
                ("to", to as f64),
                ("enqueue", enqueue),
                ("drain", drain),
            ],
            Self::Stalled {
                source,
                worker,
                window_secs,
                progress,
            } => vec![
                ("source", source as f64),
                ("worker", worker as f64),
                ("window_secs", window_secs),
                ("progress", progress as f64),
            ],
            Self::LinkLoad {
                link,
                a,
                b,
                kind,
                bytes,
                util_ppm,
                avg_flows,
                peak_flows,
            } => vec![
                ("link", link as f64),
                ("a", a as f64),
                ("b", b as f64),
                ("kind", kind as f64),
                ("bytes", bytes),
                ("util_ppm", util_ppm),
                ("avg_flows", avg_flows),
                ("peak_flows", peak_flows as f64),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_dotted_and_stable() {
        let e = Event::Flow {
            stage: FlowStage::Created,
            id: 1,
            src: 0,
            dst: 2,
            bytes: 10.0,
        };
        assert_eq!(e.name(), "flow.created");
        assert_eq!(
            Event::Fault {
                kind: FaultKind::LinkDown,
                a: 1,
                b: 2
            }
            .name(),
            "fault.link_down"
        );
        assert_eq!(
            Event::Mark {
                name: "custom.thing",
                value: 0.0
            }
            .name(),
            "custom.thing"
        );
    }

    #[test]
    fn analysis_event_names_and_args_are_stable() {
        let done = Event::FlowDone {
            id: 7,
            src: 1,
            dst: 2,
            bytes: 100.0,
            hops: 4,
            created: 0.5,
            completed: 1.5,
            propagation: 0.1,
            serialization: 0.2,
            queueing: 0.3,
            stall: 0.4,
        };
        assert_eq!(done.name(), "flow.done");
        let args = done.args();
        assert_eq!(args.len(), 11);
        assert_eq!(args[0], ("id", 7.0));
        assert_eq!(args[10], ("stall", 0.4));
        assert_eq!(Event::FlowDep { flow: 3, parent: 1 }.name(), "flow.dep");
        assert_eq!(
            Event::Hop {
                flow: 3,
                index: 1,
                from: 0,
                to: 5,
                enqueue: 0.0,
                drain: 1.0
            }
            .name(),
            "flow.hop"
        );
        assert_eq!(
            Event::LinkLoad {
                link: 9,
                a: 0,
                b: 1,
                kind: 2,
                bytes: 5.0,
                util_ppm: 100.0,
                avg_flows: 1.5,
                peak_flows: 3
            }
            .name(),
            "link.load"
        );
    }

    #[test]
    fn args_carry_the_payload() {
        let e = Event::Best {
            iter: 42,
            value: 3.5,
        };
        assert_eq!(e.args(), vec![("iter", 42.0), ("value", 3.5)]);
    }
}
