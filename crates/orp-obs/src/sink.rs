//! Pluggable snapshot renderers.
//!
//! A [`Sink`] turns a [`Snapshot`] into text; the recorder knows nothing
//! about formats. Three sinks ship here:
//!
//! * [`JsonSummary`] — machine-readable rollup (counters, histogram
//!   digests, series, journal) for `results/` artifacts,
//! * [`ChromeTrace`] — the Chrome `trace_event` JSON array format;
//!   open the file in `chrome://tracing` or <https://ui.perfetto.dev>,
//! * [`TextProgress`] — a human-readable one-screen report.
//!
//! JSON is emitted by hand (no serde dependency): the snapshot model is
//! flat and the writer below escapes strings and normalises non-finite
//! floats to `null`, which keeps every emitted artifact parseable.

use crate::snapshot::Snapshot;
use std::fmt::Write as _;

/// Renders a [`Snapshot`] to text.
pub trait Sink {
    /// Produce the sink's textual artifact.
    fn render(&self, snap: &Snapshot) -> String;
}

pub(crate) fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn num(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// JSON rollup of everything in the snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonSummary;

impl Sink for JsonSummary {
    fn render(&self, snap: &Snapshot) -> String {
        let mut o = String::with_capacity(4096);
        o.push_str("{\n  \"elapsed_us\": ");
        let _ = write!(o, "{}", snap.elapsed_us);
        o.push_str(",\n  \"counters\": {");
        for (i, (name, v)) in snap.counters.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            esc(name, &mut o);
            let _ = write!(o, ": {v}");
        }
        o.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in snap.gauges.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            esc(name, &mut o);
            o.push_str(": ");
            num(*v, &mut o);
        }
        o.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in snap.histograms.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            esc(name, &mut o);
            let _ = write!(
                o,
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": ",
                h.count, h.sum, h.min, h.max
            );
            num(h.mean, &mut o);
            let _ = write!(
                o,
                ", \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                h.p50, h.p90, h.p99
            );
        }
        o.push_str("\n  },\n  \"series\": {");
        for (i, (name, pts)) in snap.series.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            esc(name, &mut o);
            o.push_str(": [");
            for (j, p) in pts.iter().enumerate() {
                if j > 0 {
                    o.push_str(", ");
                }
                o.push('[');
                num(p.x, &mut o);
                o.push_str(", ");
                num(p.y, &mut o);
                o.push(']');
            }
            o.push(']');
        }
        let _ = write!(
            o,
            "\n  }},\n  \"dropped_events\": {},\n  \"dropped_spans\": {},\n  \"events\": [",
            snap.dropped_events, snap.dropped_spans
        );
        for (i, e) in snap.events.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            let _ = write!(o, "{{\"ts_us\": {}, \"name\": ", e.ts_us);
            esc(e.event.name(), &mut o);
            o.push_str(", \"args\": {");
            for (j, (k, v)) in e.event.args().iter().enumerate() {
                if j > 0 {
                    o.push_str(", ");
                }
                esc(k, &mut o);
                o.push_str(": ");
                num(*v, &mut o);
            }
            o.push_str("}}");
        }
        o.push_str("\n  ]\n}\n");
        o
    }
}

/// Chrome `trace_event` export. Spans become complete (`"X"`) events,
/// journal entries become instants (`"i"`), and series become counter
/// (`"C"`) tracks.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChromeTrace;

impl Sink for ChromeTrace {
    fn render(&self, snap: &Snapshot) -> String {
        let mut o = String::with_capacity(8192);
        o.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
        let mut first = true;
        let mut sep = |o: &mut String| {
            o.push_str(if std::mem::take(&mut first) {
                "\n"
            } else {
                ",\n"
            });
        };
        for s in &snap.spans {
            sep(&mut o);
            o.push_str("{\"ph\": \"X\", \"pid\": 1, \"tid\": ");
            let _ = write!(o, "{}", s.tid);
            o.push_str(", \"name\": ");
            esc(s.name, &mut o);
            let _ = write!(
                o,
                ", \"ts\": {}, \"dur\": {}}}",
                s.start_us,
                s.dur_us.max(1)
            );
        }
        for e in &snap.events {
            sep(&mut o);
            o.push_str("{\"ph\": \"i\", \"pid\": 1, \"tid\": 0, \"s\": \"p\", \"name\": ");
            esc(e.event.name(), &mut o);
            let _ = write!(o, ", \"ts\": {}, \"args\": {{", e.ts_us);
            for (j, (k, v)) in e.event.args().iter().enumerate() {
                if j > 0 {
                    o.push_str(", ");
                }
                esc(k, &mut o);
                o.push_str(": ");
                num(*v, &mut o);
            }
            o.push_str("}}");
        }
        for (name, pts) in &snap.series {
            for p in pts {
                sep(&mut o);
                o.push_str("{\"ph\": \"C\", \"pid\": 1, \"name\": ");
                esc(name, &mut o);
                let _ = write!(o, ", \"ts\": {}, \"args\": {{\"value\": ", p.ts_us);
                num(p.y, &mut o);
                o.push_str("}}");
            }
        }
        // final counter values as one closing sample per counter
        for (name, v) in &snap.counters {
            sep(&mut o);
            o.push_str("{\"ph\": \"C\", \"pid\": 1, \"name\": ");
            esc(name, &mut o);
            let _ = write!(
                o,
                ", \"ts\": {}, \"args\": {{\"value\": {v}}}}}",
                snap.elapsed_us
            );
        }
        // journal truncation marker so trace consumers can tell a
        // complete export from a clipped one
        if snap.dropped_events > 0 {
            sep(&mut o);
            let _ = write!(
                o,
                "{{\"ph\": \"C\", \"pid\": 1, \"name\": \"obs.dropped_events\", \
                 \"ts\": {}, \"args\": {{\"value\": {}}}}}",
                snap.elapsed_us, snap.dropped_events
            );
        }
        o.push_str("\n]}\n");
        o
    }
}

/// Plain-text progress/summary report for terminals and logs.
#[derive(Debug, Clone, Copy, Default)]
pub struct TextProgress;

impl Sink for TextProgress {
    fn render(&self, snap: &Snapshot) -> String {
        let mut o = String::with_capacity(1024);
        let _ = writeln!(
            o,
            "== observability after {:.3} s ==",
            snap.elapsed_us as f64 / 1e6
        );
        if !snap.counters.is_empty() {
            let _ = writeln!(o, "counters:");
            for (name, v) in &snap.counters {
                let _ = writeln!(o, "  {name:<32} {v}");
            }
        }
        if !snap.gauges.is_empty() {
            let _ = writeln!(o, "gauges:");
            for (name, v) in &snap.gauges {
                let _ = writeln!(o, "  {name:<32} {v}");
            }
        }
        if !snap.histograms.is_empty() {
            let _ = writeln!(
                o,
                "histograms:                        {:>10} {:>12} {:>12} {:>12} {:>12}",
                "count", "mean", "p50", "p99", "max"
            );
            for (name, h) in &snap.histograms {
                let _ = writeln!(
                    o,
                    "  {name:<32} {:>10} {:>12.1} {:>12} {:>12} {:>12}",
                    h.count, h.mean, h.p50, h.p99, h.max
                );
            }
        }
        if snap.dropped_events > 0 || snap.dropped_spans > 0 {
            let _ = writeln!(
                o,
                "WARNING: journal truncated — dropped {} events, {} spans; \
                 analysis over this snapshot is incomplete (raise \
                 ObsConfig::journal_capacity)",
                snap.dropped_events, snap.dropped_spans
            );
        }
        let _ = writeln!(
            o,
            "{} journal events, {} spans, {} series",
            snap.events.len(),
            snap.spans.len(),
            snap.series.len()
        );
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::recorder::Recorder;

    fn populated() -> Snapshot {
        let rec = Recorder::enabled();
        rec.incr("flows", 3);
        rec.gauge("cache.resident_bytes", 4096.0);
        rec.record("eval_ns", 1_500);
        rec.record("eval_ns", 2_500);
        rec.series("best", 0.0, 3.5);
        rec.series("best", 100.0, 3.25);
        rec.emit(Event::Best {
            iter: 10,
            value: 3.25,
        });
        drop(rec.span("phase \"zero\"")); // exercises escaping
        rec.snapshot().unwrap()
    }

    #[test]
    fn json_summary_parses() {
        let text = JsonSummary.render(&populated());
        let v: serde::Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(
            v.get_field("counters").unwrap().get_field("flows").unwrap(),
            &serde::Value::Int(3)
        );
        let h = v
            .get_field("histograms")
            .unwrap()
            .get_field("eval_ns")
            .unwrap();
        assert_eq!(h.get_field("count").unwrap(), &serde::Value::Int(2));
        let g = v
            .get_field("gauges")
            .unwrap()
            .get_field("cache.resident_bytes")
            .unwrap();
        assert!(matches!(
            g,
            serde::Value::Int(4096) | serde::Value::Float(_)
        ));
    }

    #[test]
    fn chrome_trace_parses_and_has_all_phases() {
        let text = ChromeTrace.render(&populated());
        let v: serde::Value = serde_json::from_str(&text).expect("valid JSON");
        let serde::Value::Array(events) = v.get_field("traceEvents").unwrap() else {
            panic!("traceEvents must be an array");
        };
        assert!(!events.is_empty());
        let phases: Vec<&serde::Value> =
            events.iter().map(|e| e.get_field("ph").unwrap()).collect();
        for ph in ["X", "i", "C"] {
            assert!(
                phases.iter().any(|p| **p == serde::Value::Str(ph.into())),
                "missing phase {ph}"
            );
        }
    }

    #[test]
    fn empty_snapshot_renders_valid_json() {
        let snap = Snapshot::default();
        for text in [JsonSummary.render(&snap), ChromeTrace.render(&snap)] {
            let _: serde::Value = serde_json::from_str(&text).expect("valid JSON");
        }
    }

    #[test]
    fn text_progress_mentions_counters() {
        let text = TextProgress.render(&populated());
        assert!(text.contains("flows"));
        assert!(text.contains("eval_ns"));
    }

    #[test]
    fn non_finite_series_values_become_null() {
        let rec = Recorder::enabled();
        rec.series("s", 0.0, f64::NAN);
        let text = JsonSummary.render(&rec.snapshot().unwrap());
        let _: serde::Value = serde_json::from_str(&text).expect("valid JSON");
        assert!(text.contains("null"));
    }
}
