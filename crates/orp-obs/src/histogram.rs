//! Log-linear histograms, HdrHistogram-style but tiny: each power of two
//! is split into [`SUB_BUCKETS`] linear sub-buckets, so any recorded
//! value lands in a bucket whose width is at most `1/32` of its
//! magnitude (~3% relative error on quantiles) while the whole table
//! stays under 2k buckets for the full `u64` range.

/// Linear sub-buckets per power of two (2^5 = 32).
pub(crate) const SUB_BITS: u32 = 5;
/// Number of linear sub-divisions of each octave.
pub(crate) const SUB_BUCKETS: u64 = 1 << SUB_BITS;

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as u64; // >= SUB_BITS
    let offset = (v >> (exp - SUB_BITS as u64)) - SUB_BUCKETS;
    ((exp - SUB_BITS as u64 + 1) * SUB_BUCKETS + offset) as usize
}

/// Lowest value mapping to bucket `idx` (inverse of `bucket_index`).
#[inline]
fn bucket_low(idx: usize) -> u64 {
    if idx < SUB_BUCKETS as usize {
        return idx as u64;
    }
    let block = (idx as u64) >> SUB_BITS; // >= 1
    let offset = (idx as u64) & (SUB_BUCKETS - 1);
    (SUB_BUCKETS + offset) << (block - 1)
}

/// A log-linear histogram of `u64` values (latencies in nanoseconds,
/// queue depths, utilization in parts-per-million, …).
///
/// Recording is `O(1)`; the bucket table grows lazily to the largest
/// value seen. Quantiles are answered from bucket boundaries, so they
/// carry the bucket's ~3% relative error.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The value at quantile `q` in `[0, 1]`, resolved to the lower
    /// boundary of the containing bucket and clamped to the observed
    /// min/max. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_low(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, &b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Condenses the histogram into the fixed summary the sinks emit.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            mean: self.mean().unwrap_or(0.0),
            p50: self.quantile(0.50).unwrap_or(0),
            p90: self.quantile(0.90).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
        }
    }
}

/// Fixed-size digest of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Recorded values.
    pub count: u64,
    /// Saturating sum.
    pub sum: u64,
    /// Smallest value (0 when empty).
    pub min: u64,
    /// Largest value (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median (bucket-resolved).
    pub p50: u64,
    /// 90th percentile (bucket-resolved).
    pub p90: u64,
    /// 99th percentile (bucket-resolved).
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_BUCKETS);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(SUB_BUCKETS - 1));
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(SUB_BUCKETS - 1));
    }

    #[test]
    fn bucket_roundtrip_low_bound() {
        for idx in 0..1000 {
            let low = bucket_low(idx);
            assert_eq!(bucket_index(low), idx, "idx {idx} low {low}");
        }
        // extremes
        assert_eq!(bucket_index(0), 0);
        let top = bucket_index(u64::MAX);
        assert!(bucket_low(top) <= u64::MAX);
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap() as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.04, "p50 = {p50}");
        let p99 = h.quantile(0.99).unwrap() as f64;
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.04, "p99 = {p99}");
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in [1u64, 40, 1000, 65_536, 12] {
            a.record(v);
            c.record(v);
        }
        for v in [7u64, 7_000_000, 3] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn summary_of_empty_is_zeroed() {
        let s = Histogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(u64::MAX));
        assert!(h.quantile(0.5).unwrap() > u64::MAX / 2);
    }
}
