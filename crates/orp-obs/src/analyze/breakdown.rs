//! End-to-end makespan attribution.
//!
//! Walks the critical path and charges every simulated second of the
//! run to a named component. Because each flow's four latency
//! components sum exactly to its lifetime, and consecutive path steps
//! tile the timeline (gaps are rank-local compute / blocked time), the
//! attribution telescopes: `propagation + serialization + queueing +
//! stall + compute + tail + residual = makespan` with `residual ≈ 0`
//! up to float rounding.

use super::critical_path::{critical_path, CpNode};
use super::{FlowRecord, TraceData};
use std::collections::HashMap;

/// Latency component sums over a set of flows (simulated seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Breakdown {
    /// Activation-delay seconds.
    pub propagation: f64,
    /// Uncontended streaming seconds.
    pub serialization: f64,
    /// Contention seconds.
    pub queueing: f64,
    /// Reroute/re-issue seconds.
    pub stall: f64,
}

impl Breakdown {
    /// Adds one flow's components.
    pub fn add(&mut self, f: &FlowRecord) {
        self.propagation += f.propagation;
        self.serialization += f.serialization;
        self.queueing += f.queueing;
        self.stall += f.stall;
    }

    /// Sum of the four components.
    pub fn total(&self) -> f64 {
        self.propagation + self.serialization + self.queueing + self.stall
    }
}

/// A full makespan attribution for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// The run's simulated makespan.
    pub makespan: f64,
    /// Flows on the critical path.
    pub path_flows: usize,
    /// Component sums over the critical-path flows only.
    pub on_path: Breakdown,
    /// Rank-local seconds between path flows (compute or blocking on
    /// other channels), including the lead-in before the first flow.
    pub compute: f64,
    /// Seconds between the last path flow's delivery and the end of
    /// the run (drain of off-path work).
    pub tail: f64,
    /// Unattributed remainder — `≈ 0` for well-formed traces.
    pub residual: f64,
    /// Component sums over *all* completed flows, for context.
    pub all: Breakdown,
}

/// Attributes the makespan of `data` to named components, or `None`
/// when the trace carries no `flow.done` records (nothing to explain).
pub fn attribute(data: &TraceData) -> Option<Attribution> {
    if data.flows.is_empty() {
        return None;
    }
    let nodes: Vec<CpNode> = data
        .flows
        .iter()
        .map(|f| CpNode {
            id: f.id,
            start: f.created,
            end: f.completed,
        })
        .collect();
    let cp = critical_path(&nodes, &data.deps);
    let by_id: HashMap<u64, &FlowRecord> = data.flows.iter().map(|f| (f.id, f)).collect();
    let mut on_path = Breakdown::default();
    for step in &cp.steps {
        if let Some(f) = by_id.get(&step.id) {
            on_path.add(f);
        }
    }
    let mut all = Breakdown::default();
    for f in &data.flows {
        all.add(f);
    }
    let makespan = data.makespan();
    let compute = cp.total_gap();
    let tail = makespan - cp.makespan;
    let residual = makespan - on_path.total() - compute - tail;
    Some(Attribution {
        makespan,
        path_flows: cp.steps.len(),
        on_path,
        compute,
        tail,
        residual,
        all,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(id: u64, created: f64, completed: f64) -> FlowRecord {
        let total = completed - created;
        FlowRecord {
            id,
            src: 0,
            dst: 1,
            bytes: 1.0,
            hops: 2,
            created,
            completed,
            propagation: total * 0.25,
            serialization: total * 0.5,
            queueing: total * 0.125,
            stall: total * 0.125,
        }
    }

    #[test]
    fn empty_trace_has_no_attribution() {
        assert!(attribute(&TraceData::default()).is_none());
    }

    #[test]
    fn attribution_telescopes_to_the_makespan() {
        let mut data = TraceData::default();
        data.flows = vec![flow(0, 0.0, 10.0), flow(1, 12.0, 20.0), flow(2, 0.0, 5.0)];
        data.deps = vec![(1, 0)];
        data.completed_time = Some(21.0);
        let a = attribute(&data).unwrap();
        assert_eq!(a.path_flows, 2);
        assert_eq!(a.makespan, 21.0);
        assert!((a.compute - 2.0).abs() < 1e-12); // 12.0 start − 10.0 end
        assert!((a.tail - 1.0).abs() < 1e-12);
        assert!((a.on_path.total() - 18.0).abs() < 1e-12);
        assert!(a.residual.abs() < 1e-9);
        assert!((a.all.total() - 23.0).abs() < 1e-12);
    }
}
