//! Link hotspot ranking.
//!
//! A link is "hot" when it is both highly utilized *and* shared — a
//! saturated link carrying one flow delays nobody else, and an idle
//! link shared by many delays nothing. The score multiplies
//! utilization by the time-averaged sharing, i.e. utilization-weighted
//! queueing pressure.

use super::LinkRecord;

/// One ranked link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hotspot {
    /// The underlying load record.
    pub link: LinkRecord,
    /// `utilization × avg_flows`; higher is hotter.
    pub score: f64,
}

/// Ranks `links` by utilization-weighted queueing and returns the top
/// `k` (fewer when the trace has fewer loaded links). Deterministic:
/// score ties break toward the smaller link id.
pub fn hotspots(links: &[LinkRecord], k: usize) -> Vec<Hotspot> {
    let mut ranked: Vec<Hotspot> = links
        .iter()
        .map(|l| Hotspot {
            link: *l,
            score: l.util_ppm / 1e6 * l.avg_flows,
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.link.link.cmp(&b.link.link))
    });
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(id: u32, util_ppm: f64, avg_flows: f64) -> LinkRecord {
        LinkRecord {
            link: id,
            a: 0,
            b: 1,
            kind: 2,
            bytes: 1.0,
            util_ppm,
            avg_flows,
            peak_flows: 1,
        }
    }

    #[test]
    fn ranks_by_utilization_weighted_sharing() {
        let links = [
            link(0, 900_000.0, 1.0), // saturated but unshared: 0.9
            link(1, 500_000.0, 4.0), // busy and contended: 2.0
            link(2, 100_000.0, 9.0), // shared but idle: 0.9
        ];
        let top = hotspots(&links, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].link.link, 1);
        assert!((top[0].score - 2.0).abs() < 1e-12);
        // 0 and 2 tie at 0.9; the smaller id wins the remaining slot
        assert_eq!(top[1].link.link, 0);
    }

    #[test]
    fn k_larger_than_input_returns_everything() {
        assert_eq!(hotspots(&[link(3, 1.0, 1.0)], 10).len(), 1);
        assert!(hotspots(&[], 10).is_empty());
    }
}
