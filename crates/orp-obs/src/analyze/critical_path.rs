//! Critical-path extraction over the flow-dependency DAG.
//!
//! Nodes are completed flows (intervals `[start, end]` in simulated
//! time); edges say "this flow's issuing rank was last unblocked by
//! that flow's delivery". The critical path is found backwards from
//! the latest-finishing flow: at each step the *gating* parent is the
//! dependency with the latest end time — the one that actually held
//! the child back. The gap between a parent's end and its child's
//! start is rank-local time (compute, or blocking on a different
//! channel), reported as per-edge slack.

use std::collections::HashMap;

/// One schedulable unit: a flow's lifetime in simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpNode {
    /// Flow id.
    pub id: u64,
    /// Creation time.
    pub start: f64,
    /// Completion time.
    pub end: f64,
}

/// One step of the extracted path, in execution order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStep {
    /// Flow id.
    pub id: u64,
    /// Creation time.
    pub start: f64,
    /// Completion time.
    pub end: f64,
    /// Slack before this step: time between the previous step's end
    /// (or zero, for the first step) and this step's start.
    pub gap: f64,
}

/// The chain of flows gating completion.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CriticalPath {
    /// Path steps, earliest first.
    pub steps: Vec<PathStep>,
    /// End time of the final step.
    pub makespan: f64,
}

impl CriticalPath {
    /// Total slack along the path (the first step's lead-in included):
    /// rank-local compute and blocked time between the path's flows.
    pub fn total_gap(&self) -> f64 {
        self.steps.iter().map(|s| s.gap).sum()
    }
}

/// Extracts the critical path from `nodes` and dependency `edges`
/// (`(child, parent)` pairs; edges naming unknown ids are ignored).
///
/// Ties — several nodes sharing the latest end — break toward the
/// smallest id so the result is deterministic. Cycles (impossible in
/// simulator output, possible in hand-built inputs) are cut by
/// refusing to revisit a node.
pub fn critical_path(nodes: &[CpNode], edges: &[(u64, u64)]) -> CriticalPath {
    let by_id: HashMap<u64, CpNode> = nodes.iter().map(|n| (n.id, *n)).collect();
    let mut parents: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(child, parent) in edges {
        if by_id.contains_key(&child) && by_id.contains_key(&parent) {
            parents.entry(child).or_default().push(parent);
        }
    }
    // sink: latest end, smallest id on ties
    let Some(sink) = nodes
        .iter()
        .copied()
        .max_by(|a, b| a.end.total_cmp(&b.end).then_with(|| b.id.cmp(&a.id)))
    else {
        return CriticalPath::default();
    };
    let mut rev = vec![sink];
    let mut visited: std::collections::HashSet<u64> = [sink.id].into();
    let mut cur = sink;
    while let Some(ps) = parents.get(&cur.id) {
        let Some(gate) = ps
            .iter()
            .filter(|p| !visited.contains(p))
            .filter_map(|p| by_id.get(p))
            .copied()
            .max_by(|a, b| a.end.total_cmp(&b.end).then_with(|| b.id.cmp(&a.id)))
        else {
            break;
        };
        visited.insert(gate.id);
        rev.push(gate);
        cur = gate;
    }
    rev.reverse();
    let mut steps = Vec::with_capacity(rev.len());
    let mut prev_end = 0.0;
    for n in rev {
        steps.push(PathStep {
            id: n.id,
            start: n.start,
            end: n.end,
            gap: n.start - prev_end,
        });
        prev_end = n.end;
    }
    CriticalPath {
        steps,
        makespan: sink.end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: u64, start: f64, end: f64) -> CpNode {
        CpNode { id, start, end }
    }

    #[test]
    fn empty_input_yields_empty_path() {
        let cp = critical_path(&[], &[]);
        assert!(cp.steps.is_empty());
        assert_eq!(cp.makespan, 0.0);
    }

    #[test]
    fn single_chain_is_the_path() {
        let nodes = [n(0, 0.0, 10.0), n(1, 10.0, 20.0), n(2, 21.0, 30.0)];
        let edges = [(1, 0), (2, 1)];
        let cp = critical_path(&nodes, &edges);
        assert_eq!(
            cp.steps.iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(cp.makespan, 30.0);
        assert_eq!(cp.steps[0].gap, 0.0);
        assert_eq!(cp.steps[1].gap, 0.0);
        assert_eq!(cp.steps[2].gap, 1.0); // rank-local second between 1 and 2
        assert_eq!(cp.total_gap(), 1.0);
    }

    #[test]
    fn diamond_follows_the_slow_branch() {
        // A forks to B (slow) and C (fast); D joins both.
        let nodes = [
            n(0, 0.0, 10.0),  // A
            n(1, 10.0, 20.0), // B — slow branch
            n(2, 10.0, 15.0), // C — fast branch, has slack
            n(3, 20.0, 30.0), // D
        ];
        let edges = [(1, 0), (2, 0), (3, 1), (3, 2)];
        let cp = critical_path(&nodes, &edges);
        assert_eq!(
            cp.steps.iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![0, 1, 3]
        );
        assert_eq!(cp.makespan, 30.0);
        assert_eq!(cp.total_gap(), 0.0);
    }

    #[test]
    fn parallel_independent_flows_pick_the_latest_finisher() {
        let nodes = [n(0, 0.0, 5.0), n(1, 0.0, 9.0), n(2, 1.0, 4.0)];
        let cp = critical_path(&nodes, &[]);
        assert_eq!(cp.steps.len(), 1);
        assert_eq!(cp.steps[0].id, 1);
        assert_eq!(cp.makespan, 9.0);
    }

    #[test]
    fn end_ties_break_to_the_smallest_id() {
        let nodes = [n(5, 0.0, 10.0), n(2, 0.0, 10.0), n(7, 0.0, 10.0)];
        let cp = critical_path(&nodes, &[]);
        assert_eq!(cp.steps[0].id, 2);
    }

    #[test]
    fn cycles_terminate() {
        let nodes = [n(0, 0.0, 10.0), n(1, 5.0, 12.0)];
        let edges = [(1, 0), (0, 1)]; // impossible in real traces
        let cp = critical_path(&nodes, &edges);
        assert_eq!(
            cp.steps.iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn edges_to_unknown_nodes_are_ignored() {
        let nodes = [n(0, 0.0, 10.0), n(1, 10.0, 20.0)];
        let edges = [(1, 0), (1, 99), (98, 0)];
        let cp = critical_path(&nodes, &edges);
        assert_eq!(
            cp.steps.iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }
}
