//! Span-tree self/total aggregation and folded-stack export.
//!
//! Spans are recorded flat (name, start, duration, thread); nesting is
//! reconstructed per thread by interval containment — a span is a
//! child of the innermost span that encloses it. Aggregation keys on
//! the full call path (`parent;child;...`), flamegraph style, and
//! splits each path's time into *total* (including children) and
//! *self* (excluding them).

use super::SpanInfo;
use std::collections::BTreeMap;

/// Aggregated timing for one call path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanAgg {
    /// `;`-joined path from the thread root to this span.
    pub path: String,
    /// Leaf span name.
    pub name: String,
    /// Occurrences.
    pub count: u64,
    /// Microseconds including children.
    pub total_us: u64,
    /// Microseconds excluding children.
    pub self_us: u64,
}

/// Rebuilds span nesting and aggregates by call path, sorted by path.
pub fn aggregate_spans(spans: &[SpanInfo]) -> Vec<SpanAgg> {
    struct Instance {
        path: String,
        name: String,
        end_us: u64,
        dur_us: u64,
        child_us: u64,
    }
    let mut tids: Vec<u32> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    let mut aggs: BTreeMap<String, SpanAgg> = BTreeMap::new();
    for tid in tids {
        let mut group: Vec<&SpanInfo> = spans.iter().filter(|s| s.tid == tid).collect();
        // parents sort before children: earlier start, longer duration
        group.sort_by(|a, b| {
            a.start_us
                .cmp(&b.start_us)
                .then_with(|| b.dur_us.cmp(&a.dur_us))
        });
        let mut instances: Vec<Instance> = Vec::with_capacity(group.len());
        let mut stack: Vec<usize> = Vec::new();
        for s in group {
            while let Some(&top) = stack.last() {
                if s.start_us >= instances[top].end_us {
                    stack.pop();
                } else {
                    break;
                }
            }
            let path = match stack.last() {
                Some(&top) => format!("{};{}", instances[top].path, s.name),
                None => s.name.clone(),
            };
            if let Some(&top) = stack.last() {
                instances[top].child_us += s.dur_us;
            }
            instances.push(Instance {
                path,
                name: s.name.clone(),
                end_us: s.start_us + s.dur_us,
                dur_us: s.dur_us,
                child_us: 0,
            });
            stack.push(instances.len() - 1);
        }
        for inst in instances {
            let agg = aggs.entry(inst.path.clone()).or_insert_with(|| SpanAgg {
                path: inst.path,
                name: inst.name,
                count: 0,
                total_us: 0,
                self_us: 0,
            });
            agg.count += 1;
            agg.total_us += inst.dur_us;
            agg.self_us += inst.dur_us.saturating_sub(inst.child_us);
        }
    }
    aggs.into_values().collect()
}

/// Renders aggregated spans in the folded-stack format flamegraph
/// tooling consumes: one `path self_us` line per call path.
pub fn collapsed_stacks(aggs: &[SpanAgg]) -> String {
    let mut out = String::new();
    for a in aggs {
        out.push_str(&a.path);
        out.push(' ');
        out.push_str(&a.self_us.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, start_us: u64, dur_us: u64, tid: u32) -> SpanInfo {
        SpanInfo {
            name: name.into(),
            start_us,
            dur_us,
            tid,
        }
    }

    #[test]
    fn nesting_is_rebuilt_from_containment() {
        let spans = [
            span("child_b", 60, 30, 0),
            span("root", 0, 100, 0),
            span("child_a", 10, 40, 0),
            span("grandchild", 15, 10, 0),
        ];
        let aggs = aggregate_spans(&spans);
        let by_path: BTreeMap<&str, &SpanAgg> = aggs.iter().map(|a| (a.path.as_str(), a)).collect();
        assert_eq!(by_path["root"].total_us, 100);
        assert_eq!(by_path["root"].self_us, 30); // 100 − 40 − 30
        assert_eq!(by_path["root;child_a"].self_us, 30); // 40 − 10
        assert_eq!(by_path["root;child_a;grandchild"].total_us, 10);
        assert_eq!(by_path["root;child_b"].self_us, 30);
    }

    #[test]
    fn repeated_paths_accumulate() {
        let spans = [
            span("root", 0, 50, 0),
            span("step", 0, 20, 0),
            span("step", 25, 20, 0),
        ];
        let aggs = aggregate_spans(&spans);
        let step = aggs.iter().find(|a| a.path == "root;step").unwrap();
        assert_eq!(step.count, 2);
        assert_eq!(step.total_us, 40);
        assert_eq!(step.self_us, 40);
    }

    #[test]
    fn threads_do_not_nest_into_each_other() {
        let spans = [span("a", 0, 100, 0), span("b", 10, 10, 1)];
        let aggs = aggregate_spans(&spans);
        assert!(aggs.iter().any(|a| a.path == "a"));
        assert!(aggs.iter().any(|a| a.path == "b"));
    }

    #[test]
    fn folded_output_is_one_line_per_path() {
        let spans = [span("root", 0, 50, 0), span("leaf", 5, 10, 0)];
        let folded = collapsed_stacks(&aggregate_spans(&spans));
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.contains(&"root 40"));
        assert!(lines.contains(&"root;leaf 10"));
    }
}
