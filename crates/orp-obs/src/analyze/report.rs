//! Human-readable faces of the analysis engine: the text reports
//! behind `orp report` and `orp diff`.

use super::breakdown::attribute;
use super::diff::TraceDiff;
use super::hotspot::hotspots;
use super::spans::aggregate_spans;
use super::TraceData;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Formats simulated seconds with a readable unit.
fn t(secs: f64) -> String {
    let a = secs.abs();
    if a >= 1.0 || a == 0.0 {
        format!("{secs:.4} s")
    } else if a >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else {
        format!("{:.4} µs", secs * 1e6)
    }
}

fn pct(part: f64, whole: f64) -> String {
    if whole.abs() < 1e-300 {
        "    –".into()
    } else {
        format!("{:5.1}%", part / whole * 100.0)
    }
}

/// Renders the full single-trace report: makespan attribution,
/// critical path, link hotspots, span rollup, and counters. Always
/// non-empty; sections without data explain their absence instead of
/// vanishing.
pub fn render_report(data: &TraceData, top_k: usize) -> String {
    let mut o = String::with_capacity(4096);
    let _ = writeln!(o, "== latency attribution report ==");
    let _ = writeln!(
        o,
        "{} flows, {} dependency edges, {} hop records, {} loaded links, {} spans",
        data.flows.len(),
        data.deps.len(),
        data.hops.len(),
        data.links.len(),
        data.spans.len()
    );
    if data.dropped_events > 0 {
        let _ = writeln!(
            o,
            "WARNING: the journal dropped {} events — this analysis is \
             incomplete (raise ObsConfig::journal_capacity when recording)",
            data.dropped_events
        );
    }
    match attribute(data) {
        Some(a) => {
            let _ = writeln!(o, "\nmakespan: {}", t(a.makespan));
            let _ = writeln!(
                o,
                "critical path: {} flows, attribution (share of makespan):",
                a.path_flows
            );
            let rows = [
                ("propagation", a.on_path.propagation),
                ("serialization", a.on_path.serialization),
                ("queueing", a.on_path.queueing),
                ("reroute stall", a.on_path.stall),
                ("compute/blocked", a.compute),
                ("tail drain", a.tail),
                ("residual", a.residual),
            ];
            for (name, v) in rows {
                let _ = writeln!(o, "  {name:<16} {:>14} {}", t(v), pct(v, a.makespan));
            }
            let _ = writeln!(
                o,
                "all {} flows combined: prop {} · ser {} · queue {} · stall {}",
                data.flows.len(),
                t(a.all.propagation),
                t(a.all.serialization),
                t(a.all.queueing),
                t(a.all.stall)
            );
            render_path(&mut o, data);
        }
        None => {
            let _ = writeln!(
                o,
                "\nno flow.done records — makespan attribution unavailable \
                 (anneal-only trace, or an export from an older build)"
            );
        }
    }
    if !data.links.is_empty() {
        let _ = writeln!(o, "\ntop {top_k} link hotspots (util × sharing):");
        let _ = writeln!(
            o,
            "  {:<6} {:<8} {:>11} {:>7} {:>10} {:>6} {:>8}",
            "link", "kind", "endpoints", "util", "avg_flows", "peak", "score"
        );
        for h in hotspots(&data.links, top_k) {
            let kind = match h.link.kind {
                0 => "host-up",
                1 => "host-dn",
                _ => "fabric",
            };
            let _ = writeln!(
                o,
                "  {:<6} {:<8} {:>5}→{:<5} {:>6.1}% {:>10.2} {:>6} {:>8.3}",
                h.link.link,
                kind,
                h.link.a,
                h.link.b,
                h.link.util_ppm / 1e4,
                h.link.avg_flows,
                h.link.peak_flows,
                h.score
            );
        }
    }
    let aggs = aggregate_spans(&data.spans);
    if !aggs.is_empty() {
        let _ = writeln!(o, "\nspans (self/total, µs wall):");
        for a in &aggs {
            let _ = writeln!(
                o,
                "  {:<40} ×{:<5} self {:>10} total {:>10}",
                a.path, a.count, a.self_us, a.total_us
            );
        }
    }
    {
        let counter = |n: &str| {
            data.counters
                .iter()
                .find(|(name, _)| name == n)
                .map(|&(_, v)| v as u64)
        };
        let mut extra = String::new();
        crate::stream::render_eval_mix(&mut extra, counter);
        crate::stream::render_watchdog(
            &mut extra,
            0,
            counter("watchdog.stalls"),
            None,
            data.event_counts
                .iter()
                .find(|(n, _)| n.as_str() == "watchdog.stalled")
                .map_or(0, |(_, c)| *c as u64),
        );
        if !extra.is_empty() {
            let _ = writeln!(o, "\nsearch engine:");
            for line in extra.lines() {
                let _ = writeln!(o, "  {line}");
            }
        }
    }
    if !data.counters.is_empty() {
        let _ = writeln!(o, "\ncounters:");
        for (name, v) in &data.counters {
            let _ = writeln!(o, "  {name:<32} {v}");
        }
    }
    if !data.event_counts.is_empty() {
        let _ = writeln!(o, "\njournal events by name:");
        for (name, n) in &data.event_counts {
            let _ = writeln!(o, "  {name:<32} {n}");
        }
    }
    o
}

fn render_path(o: &mut String, data: &TraceData) {
    use super::critical_path::{critical_path, CpNode};
    let nodes: Vec<CpNode> = data
        .flows
        .iter()
        .map(|f| CpNode {
            id: f.id,
            start: f.created,
            end: f.completed,
        })
        .collect();
    let cp = critical_path(&nodes, &data.deps);
    let by_id: HashMap<u64, (u32, u32)> =
        data.flows.iter().map(|f| (f.id, (f.src, f.dst))).collect();
    const SHOWN: usize = 20;
    let _ = writeln!(
        o,
        "\ncritical path ({} steps{}):",
        cp.steps.len(),
        if cp.steps.len() > SHOWN {
            format!(", last {SHOWN} shown")
        } else {
            String::new()
        }
    );
    let skip = cp.steps.len().saturating_sub(SHOWN);
    for s in &cp.steps[skip..] {
        let (src, dst) = by_id.get(&s.id).copied().unwrap_or((0, 0));
        let _ = writeln!(
            o,
            "  flow {:>6} rank {:>4}→{:<4} [{} .. {}] gap {}",
            s.id,
            src,
            dst,
            t(s.start),
            t(s.end),
            t(s.gap)
        );
    }
}

/// Renders the two-run diff: per-component contributions to the
/// makespan delta plus the attribution coverage line the acceptance
/// bar keys on.
pub fn render_diff(a_label: &str, b_label: &str, d: &TraceDiff) -> String {
    let mut o = String::with_capacity(1024);
    let _ = writeln!(o, "== trace diff ==");
    let _ = writeln!(o, "A: {a_label}  makespan {}", t(d.a_makespan));
    let _ = writeln!(o, "B: {b_label}  makespan {}", t(d.b_makespan));
    let _ = writeln!(
        o,
        "Δ makespan (B − A): {}   critical-path flows: {} vs {}",
        t(d.delta()),
        d.path_flows.0,
        d.path_flows.1
    );
    let _ = writeln!(
        o,
        "\n  {:<16} {:>14} {:>14} {:>14} {:>8}",
        "component", "A", "B", "Δ", "share"
    );
    for c in &d.components {
        let _ = writeln!(
            o,
            "  {:<16} {:>14} {:>14} {:>14} {:>8}",
            c.name,
            t(c.a),
            t(c.b),
            t(c.delta()),
            pct(c.delta(), d.delta())
        );
    }
    let _ = writeln!(
        o,
        "  {:<16} {:>14} {:>14} {:>14} {:>8}",
        "residual",
        "",
        "",
        t(d.residual),
        pct(d.residual, d.delta())
    );
    let _ = writeln!(
        o,
        "\nnamed components explain {:.2}% of the makespan delta",
        d.coverage * 100.0
    );
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::diff::diff;
    use crate::analyze::{FlowRecord, LinkRecord, SpanInfo};

    fn populated() -> TraceData {
        let mut data = TraceData::default();
        data.flows = vec![FlowRecord {
            id: 0,
            src: 0,
            dst: 1,
            bytes: 64.0,
            hops: 3,
            created: 0.0,
            completed: 0.01,
            propagation: 0.004,
            serialization: 0.003,
            queueing: 0.002,
            stall: 0.001,
        }];
        data.links = vec![LinkRecord {
            link: 4,
            a: 0,
            b: 1,
            kind: 2,
            bytes: 64.0,
            util_ppm: 500_000.0,
            avg_flows: 1.5,
            peak_flows: 2,
        }];
        data.spans = vec![SpanInfo {
            name: "sim.run".into(),
            start_us: 0,
            dur_us: 120,
            tid: 0,
        }];
        data.counters = vec![("sim.flows".into(), 1.0)];
        data.completed_time = Some(0.01);
        data
    }

    #[test]
    fn report_covers_every_section() {
        let text = render_report(&populated(), 5);
        for needle in [
            "makespan",
            "propagation",
            "critical path",
            "hotspots",
            "fabric",
            "sim.run",
            "sim.flows",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        assert!(!text.contains("WARNING"));
    }

    #[test]
    fn report_surfaces_eval_mix_and_watchdog() {
        let mut data = populated();
        data.counters.push(("eval.full".into(), 5.0));
        data.counters.push(("eval.incremental".into(), 90.0));
        data.counters.push(("eval.early_reject".into(), 5.0));
        data.counters.push(("watchdog.stalls".into(), 2.0));
        let text = render_report(&data, 5);
        assert!(text.contains("eval path mix"), "missing eval mix:\n{text}");
        assert!(text.contains("incremental 90 (90.0%)"), "{text}");
        assert!(text.contains("watchdog: 2 stalls"), "{text}");
        // absent telemetry leaves the section out entirely
        let bare = render_report(&populated(), 5);
        assert!(!bare.contains("search engine:"));
    }

    #[test]
    fn flowless_report_is_still_non_empty() {
        let mut data = TraceData::default();
        data.dropped_events = 3;
        let text = render_report(&data, 5);
        assert!(text.contains("no flow.done records"));
        assert!(text.contains("WARNING"));
    }

    #[test]
    fn diff_report_prints_coverage() {
        let a = populated();
        let mut b = populated();
        for f in &mut b.flows {
            f.completed *= 2.0;
            f.queueing += 0.01;
        }
        b.completed_time = Some(0.02);
        let d = diff(&a, &b).unwrap();
        let text = render_diff("a.json", "b.json", &d);
        assert!(text.contains("a.json"));
        assert!(text.contains("queueing"));
        assert!(text.contains("explain"));
    }
}
