//! Trace diffing: attribute the completion-time delta between two runs.
//!
//! Both runs are attributed independently ([`super::attribute`]); the
//! per-component deltas then explain the makespan difference. Because
//! each attribution telescopes to its own makespan with residual ≈ 0,
//! the component deltas sum to the makespan delta with the same tiny
//! residual — the ≥ 95 % attribution the acceptance bar asks for falls
//! out by construction rather than by curve fitting.

use super::breakdown::attribute;
use super::TraceData;

/// One attributed component in both runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffComponent {
    /// Component name (stable: `propagation`, `serialization`,
    /// `queueing`, `stall`, `compute`, `tail`).
    pub name: &'static str,
    /// Seconds charged in run A.
    pub a: f64,
    /// Seconds charged in run B.
    pub b: f64,
}

impl DiffComponent {
    /// `b − a`: the component's contribution to the makespan delta.
    pub fn delta(&self) -> f64 {
        self.b - self.a
    }
}

/// The aligned attribution of two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiff {
    /// Run A's makespan (simulated seconds).
    pub a_makespan: f64,
    /// Run B's makespan (simulated seconds).
    pub b_makespan: f64,
    /// Critical-path flow counts `(a, b)`.
    pub path_flows: (usize, usize),
    /// Per-component seconds in both runs, stable order.
    pub components: Vec<DiffComponent>,
    /// Makespan delta not explained by any component.
    pub residual: f64,
    /// Fraction of `|Δ makespan|` the named components explain, in
    /// `[0, 1]`; `1.0` when the makespans are (nearly) equal.
    pub coverage: f64,
}

impl TraceDiff {
    /// `b_makespan − a_makespan`.
    pub fn delta(&self) -> f64 {
        self.b_makespan - self.a_makespan
    }
}

/// Diffs two traces.
///
/// # Errors
/// A message naming the offending side when either trace carries no
/// `flow.done` records (old exports, or anneal-only traces).
pub fn diff(a: &TraceData, b: &TraceData) -> Result<TraceDiff, String> {
    let aa = attribute(a).ok_or_else(|| no_flows("first"))?;
    let ab = attribute(b).ok_or_else(|| no_flows("second"))?;
    let components = vec![
        DiffComponent {
            name: "propagation",
            a: aa.on_path.propagation,
            b: ab.on_path.propagation,
        },
        DiffComponent {
            name: "serialization",
            a: aa.on_path.serialization,
            b: ab.on_path.serialization,
        },
        DiffComponent {
            name: "queueing",
            a: aa.on_path.queueing,
            b: ab.on_path.queueing,
        },
        DiffComponent {
            name: "stall",
            a: aa.on_path.stall,
            b: ab.on_path.stall,
        },
        DiffComponent {
            name: "compute",
            a: aa.compute,
            b: ab.compute,
        },
        DiffComponent {
            name: "tail",
            a: aa.tail,
            b: ab.tail,
        },
    ];
    let total_delta = ab.makespan - aa.makespan;
    let explained: f64 = components.iter().map(DiffComponent::delta).sum();
    let residual = total_delta - explained;
    let coverage = if total_delta.abs() <= f64::EPSILON * aa.makespan.abs().max(1.0) {
        1.0
    } else {
        (1.0 - residual.abs() / total_delta.abs()).max(0.0)
    };
    Ok(TraceDiff {
        a_makespan: aa.makespan,
        b_makespan: ab.makespan,
        path_flows: (aa.path_flows, ab.path_flows),
        components,
        residual,
        coverage,
    })
}

fn no_flows(which: &str) -> String {
    format!(
        "the {which} trace has no flow.done records — re-export it with a \
         current build (anneal-only traces cannot be diffed)"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::FlowRecord;

    fn trace(scale: f64) -> TraceData {
        let mut data = TraceData::default();
        data.flows = vec![
            FlowRecord {
                id: 0,
                src: 0,
                dst: 1,
                bytes: 1.0,
                hops: 2,
                created: 0.0,
                completed: 10.0 * scale,
                propagation: 2.0 * scale,
                serialization: 5.0 * scale,
                queueing: 2.0 * scale,
                stall: 1.0 * scale,
            },
            FlowRecord {
                id: 1,
                src: 1,
                dst: 0,
                bytes: 1.0,
                hops: 2,
                created: 11.0 * scale,
                completed: 20.0 * scale,
                propagation: 2.0 * scale,
                serialization: 5.0 * scale,
                queueing: 1.0 * scale,
                stall: 1.0 * scale,
            },
        ];
        data.deps = vec![(1, 0)];
        data.completed_time = Some(20.0 * scale);
        data
    }

    #[test]
    fn identical_traces_diff_to_zero_with_full_coverage() {
        let d = diff(&trace(1.0), &trace(1.0)).unwrap();
        assert_eq!(d.delta(), 0.0);
        assert_eq!(d.coverage, 1.0);
        assert!(d.components.iter().all(|c| c.delta() == 0.0));
    }

    #[test]
    fn scaled_trace_attributes_the_full_delta() {
        let d = diff(&trace(1.0), &trace(1.5)).unwrap();
        assert!((d.delta() - 10.0).abs() < 1e-12);
        assert!(d.coverage >= 0.95, "coverage {}", d.coverage);
        assert!(d.residual.abs() < 1e-9);
        let ser = d
            .components
            .iter()
            .find(|c| c.name == "serialization")
            .unwrap();
        assert!((ser.delta() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn flowless_traces_are_rejected_with_the_side_named() {
        let empty = TraceData::default();
        let full = trace(1.0);
        assert!(diff(&empty, &full).unwrap_err().contains("first"));
        assert!(diff(&full, &empty).unwrap_err().contains("second"));
    }
}
