//! Latency-attribution analysis over recorded telemetry.
//!
//! PR 3 taught the toolkit to *record* — flow lifecycles, per-link
//! histograms, span trees — and this module family teaches it to
//! *explain*. The entry point is [`TraceData`]: a normalized view of a
//! run's telemetry built either live from a [`Snapshot`]
//! ([`TraceData::from_snapshot`]) or offline from an exported Chrome
//! trace ([`TraceData::parse_chrome`]). On top of it sit:
//!
//! * [`critical_path`] — which chain of flows gated completion, with
//!   per-edge slack,
//! * [`attribute`] — the end-to-end makespan split into propagation /
//!   serialization / queueing / reroute-stall / compute / tail,
//! * [`hotspots`] — top-k links by utilization-weighted queueing,
//! * [`aggregate_spans`] / [`collapsed_stacks`] — self/total span-tree
//!   rollup and a flamegraph-style folded-stack export,
//! * [`diff`] — align two runs and attribute the completion-time delta,
//! * [`render_report`] / [`render_diff`] — the text faces behind
//!   `orp report` and `orp diff`.
//!
//! Everything leans on one invariant the simulator upholds: for every
//! `flow.done` record the four latency components sum *exactly* to
//! `completed - created`, so attributions telescope with no unexplained
//! remainder.

mod breakdown;
mod critical_path;
mod diff;
mod hotspot;
mod report;
mod spans;

pub use breakdown::{attribute, Attribution, Breakdown};
pub use critical_path::{critical_path, CpNode, CriticalPath, PathStep};
pub use diff::{diff, DiffComponent, TraceDiff};
pub use hotspot::{hotspots, Hotspot};
pub use report::{render_diff, render_report};
pub use spans::{aggregate_spans, collapsed_stacks, SpanAgg};

use crate::event::Event;
use crate::snapshot::Snapshot;
use serde::Value;
use std::collections::BTreeMap;

/// One completed flow's latency decomposition (mirrors
/// [`Event::FlowDone`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowRecord {
    /// Flow id (per-simulation sequence number).
    pub id: u64,
    /// Source rank.
    pub src: u32,
    /// Destination rank.
    pub dst: u32,
    /// Payload bytes.
    pub bytes: f64,
    /// Links on the final route.
    pub hops: u32,
    /// Simulated creation time.
    pub created: f64,
    /// Simulated delivery time.
    pub completed: f64,
    /// Activation-delay component.
    pub propagation: f64,
    /// Uncontended streaming component.
    pub serialization: f64,
    /// Contention component.
    pub queueing: f64,
    /// Reroute/re-issue component.
    pub stall: f64,
}

/// One fabric hop of a flow's route (mirrors [`Event::Hop`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopRecord {
    /// Owning flow.
    pub flow: u64,
    /// Route position (0-based).
    pub index: u32,
    /// Source switch.
    pub from: u32,
    /// Destination switch.
    pub to: u32,
    /// Head-arrival time (simulated seconds).
    pub enqueue: f64,
    /// Tail-departure time (simulated seconds).
    pub drain: f64,
}

/// Whole-run load rollup for one directed link (mirrors
/// [`Event::LinkLoad`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkRecord {
    /// Directed link id.
    pub link: u32,
    /// Source endpoint.
    pub a: u32,
    /// Destination endpoint.
    pub b: u32,
    /// 0 = host uplink, 1 = host downlink, 2 = switch→switch.
    pub kind: u32,
    /// Bytes moved over the run.
    pub bytes: f64,
    /// Utilization in ppm of capacity × makespan.
    pub util_ppm: f64,
    /// Time-averaged flows sharing the link.
    pub avg_flows: f64,
    /// Peak flows sharing the link.
    pub peak_flows: u32,
}

/// One completed span with an owned name (parsed traces cannot borrow
/// `&'static str` like [`crate::SpanRecord`] does).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanInfo {
    /// Span name.
    pub name: String,
    /// Start, microseconds since recorder creation.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Recording thread id.
    pub tid: u32,
}

/// A normalized, analysis-ready view of one run's telemetry.
#[derive(Debug, Clone, Default)]
pub struct TraceData {
    /// Per-flow latency decompositions.
    pub flows: Vec<FlowRecord>,
    /// Flow-dependency edges as `(flow, parent)`.
    pub deps: Vec<(u64, u64)>,
    /// Per-fabric-hop timings.
    pub hops: Vec<HopRecord>,
    /// Per-link load rollups.
    pub links: Vec<LinkRecord>,
    /// Completed spans.
    pub spans: Vec<SpanInfo>,
    /// Final counter values, sorted by name.
    pub counters: Vec<(String, f64)>,
    /// Journal event multiplicities by name.
    pub event_counts: BTreeMap<String, usize>,
    /// Simulated makespan from the `sim.completed` mark, if present.
    pub completed_time: Option<f64>,
    /// Events the bounded journal evicted before export.
    pub dropped_events: u64,
}

impl TraceData {
    /// Builds the analysis view from a live [`Snapshot`].
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        let mut data = TraceData {
            counters: snap
                .counters
                .iter()
                .map(|(n, v)| (n.clone(), *v as f64))
                .collect(),
            spans: snap
                .spans
                .iter()
                .map(|s| SpanInfo {
                    name: s.name.to_string(),
                    start_us: s.start_us,
                    dur_us: s.dur_us,
                    tid: s.tid,
                })
                .collect(),
            dropped_events: snap.dropped_events,
            ..TraceData::default()
        };
        for te in &snap.events {
            *data
                .event_counts
                .entry(te.event.name().to_string())
                .or_insert(0) += 1;
            match te.event {
                Event::FlowDone {
                    id,
                    src,
                    dst,
                    bytes,
                    hops,
                    created,
                    completed,
                    propagation,
                    serialization,
                    queueing,
                    stall,
                } => data.flows.push(FlowRecord {
                    id,
                    src,
                    dst,
                    bytes,
                    hops,
                    created,
                    completed,
                    propagation,
                    serialization,
                    queueing,
                    stall,
                }),
                Event::FlowDep { flow, parent } => data.deps.push((flow, parent)),
                Event::Hop {
                    flow,
                    index,
                    from,
                    to,
                    enqueue,
                    drain,
                } => data.hops.push(HopRecord {
                    flow,
                    index,
                    from,
                    to,
                    enqueue,
                    drain,
                }),
                Event::LinkLoad {
                    link,
                    a,
                    b,
                    kind,
                    bytes,
                    util_ppm,
                    avg_flows,
                    peak_flows,
                } => data.links.push(LinkRecord {
                    link,
                    a,
                    b,
                    kind,
                    bytes,
                    util_ppm,
                    avg_flows,
                    peak_flows,
                }),
                Event::Mark {
                    name: "sim.completed",
                    value,
                } => data.completed_time = Some(value),
                _ => {}
            }
        }
        data
    }

    /// Parses an exported Chrome `trace_event` JSON file (the
    /// [`crate::ChromeTrace`] sink's output) back into the analysis
    /// view.
    ///
    /// # Errors
    /// A human-readable message when the text is not valid JSON or not
    /// shaped like a Chrome trace (`traceEvents` array of objects).
    pub fn parse_chrome(text: &str) -> Result<Self, String> {
        let root: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let events = root
            .get_field("traceEvents")
            .map_err(|e| format!("not a Chrome trace: {e}"))?;
        let Value::Array(events) = events else {
            return Err("not a Chrome trace: traceEvents is not an array".into());
        };
        let mut data = TraceData::default();
        let mut counters: BTreeMap<String, f64> = BTreeMap::new();
        for ev in events {
            let Ok(Value::Str(ph)) = ev.get_field("ph") else {
                continue;
            };
            let name = match ev.get_field("name") {
                Ok(Value::Str(s)) => s.clone(),
                _ => continue,
            };
            match ph.as_str() {
                "X" => {
                    let tid = num_field(ev, "tid").unwrap_or(0.0);
                    let ts = num_field(ev, "ts").unwrap_or(0.0);
                    let dur = num_field(ev, "dur").unwrap_or(0.0);
                    data.spans.push(SpanInfo {
                        name,
                        start_us: ts.max(0.0) as u64,
                        dur_us: dur.max(0.0) as u64,
                        tid: tid.max(0.0) as u32,
                    });
                }
                "i" => {
                    *data.event_counts.entry(name.clone()).or_insert(0) += 1;
                    let args = ev.get_field("args").ok();
                    data.parse_instant(&name, args);
                }
                "C" => {
                    let v = ev
                        .get_field("args")
                        .ok()
                        .and_then(|a| a.get_field("value").ok())
                        .and_then(as_num)
                        .unwrap_or(0.0);
                    // counter tracks sample over time; keep the last value
                    counters.insert(name, v);
                }
                _ => {}
            }
        }
        if let Some(d) = counters.remove("obs.dropped_events") {
            data.dropped_events = d.max(0.0) as u64;
        }
        data.counters = counters.into_iter().collect();
        Ok(data)
    }

    fn parse_instant(&mut self, name: &str, args: Option<&Value>) {
        let get = |field: &str| -> f64 {
            args.and_then(|a| a.get_field(field).ok())
                .and_then(as_num)
                .unwrap_or(0.0)
        };
        match name {
            "flow.done" => self.flows.push(FlowRecord {
                id: get("id") as u64,
                src: get("src") as u32,
                dst: get("dst") as u32,
                bytes: get("bytes"),
                hops: get("hops") as u32,
                created: get("created"),
                completed: get("completed"),
                propagation: get("propagation"),
                serialization: get("serialization"),
                queueing: get("queueing"),
                stall: get("stall"),
            }),
            "flow.dep" => self.deps.push((get("flow") as u64, get("parent") as u64)),
            "flow.hop" => self.hops.push(HopRecord {
                flow: get("flow") as u64,
                index: get("index") as u32,
                from: get("from") as u32,
                to: get("to") as u32,
                enqueue: get("enqueue"),
                drain: get("drain"),
            }),
            "link.load" => self.links.push(LinkRecord {
                link: get("link") as u32,
                a: get("a") as u32,
                b: get("b") as u32,
                kind: get("kind") as u32,
                bytes: get("bytes"),
                util_ppm: get("util_ppm"),
                avg_flows: get("avg_flows"),
                peak_flows: get("peak_flows") as u32,
            }),
            "sim.completed" => self.completed_time = Some(get("value")),
            _ => {}
        }
    }

    /// The run's simulated makespan: the `sim.completed` mark when
    /// present, otherwise the latest flow completion.
    pub fn makespan(&self) -> f64 {
        self.completed_time
            .unwrap_or_else(|| self.flows.iter().map(|f| f.completed).fold(0.0, f64::max))
    }
}

fn as_num(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn num_field(obj: &Value, field: &str) -> Option<f64> {
    obj.get_field(field).ok().and_then(as_num)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::sink::{ChromeTrace, Sink};

    fn sample_recorder() -> Recorder {
        let rec = Recorder::enabled();
        rec.incr("sim.flows", 2);
        drop(rec.span("sim.run"));
        rec.emit(Event::FlowDone {
            id: 0,
            src: 0,
            dst: 1,
            bytes: 100.0,
            hops: 3,
            created: 0.0,
            completed: 2.0,
            propagation: 0.5,
            serialization: 1.0,
            queueing: 0.25,
            stall: 0.25,
        });
        rec.emit(Event::FlowDep { flow: 1, parent: 0 });
        rec.emit(Event::Hop {
            flow: 0,
            index: 1,
            from: 0,
            to: 1,
            enqueue: 0.5,
            drain: 1.9,
        });
        rec.emit(Event::LinkLoad {
            link: 8,
            a: 0,
            b: 1,
            kind: 2,
            bytes: 100.0,
            util_ppm: 250_000.0,
            avg_flows: 1.25,
            peak_flows: 2,
        });
        rec.emit(Event::Mark {
            name: "sim.completed",
            value: 2.0,
        });
        rec
    }

    #[test]
    fn snapshot_and_chrome_parse_agree() {
        let rec = sample_recorder();
        let snap = rec.snapshot().unwrap();
        let live = TraceData::from_snapshot(&snap);
        let parsed = TraceData::parse_chrome(&ChromeTrace.render(&snap)).unwrap();
        assert_eq!(live.flows, parsed.flows);
        assert_eq!(live.deps, parsed.deps);
        assert_eq!(live.hops, parsed.hops);
        assert_eq!(live.links, parsed.links);
        assert_eq!(live.completed_time, Some(2.0));
        assert_eq!(parsed.completed_time, Some(2.0));
        assert_eq!(live.makespan(), 2.0);
        assert_eq!(live.event_counts.get("flow.done"), Some(&1));
        assert_eq!(parsed.event_counts.get("flow.done"), Some(&1));
        assert!(parsed.spans.iter().any(|s| s.name == "sim.run"));
        assert!(parsed
            .counters
            .iter()
            .any(|(n, v)| n == "sim.flows" && *v == 2.0));
    }

    #[test]
    fn parse_chrome_rejects_garbage() {
        assert!(TraceData::parse_chrome("not json").is_err());
        assert!(TraceData::parse_chrome("{\"other\": 1}").is_err());
        assert!(TraceData::parse_chrome("{\"traceEvents\": 3}").is_err());
    }

    #[test]
    fn dropped_counter_round_trips() {
        let mut snap = sample_recorder().snapshot().unwrap();
        snap.dropped_events = 7;
        let parsed = TraceData::parse_chrome(&ChromeTrace.render(&snap)).unwrap();
        assert_eq!(parsed.dropped_events, 7);
        assert!(!parsed
            .counters
            .iter()
            .any(|(n, _)| n == "obs.dropped_events"));
    }
}
