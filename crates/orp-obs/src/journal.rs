//! A fixed-capacity ring buffer of timestamped [`Event`]s.
//!
//! The journal bounds observability memory: a simulation can emit
//! millions of flow events, and keeping the *latest* window (plus a
//! count of what was dropped) is the right trade for a post-mortem
//! artifact. Pushing is `O(1)` amortized with no allocation once the
//! ring is warm.

use crate::event::Event;
use std::collections::VecDeque;

/// One journal entry: an [`Event`] plus its record time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    /// Microseconds since the recorder was created.
    pub ts_us: u64,
    /// The event.
    pub event: Event,
}

/// The ring buffer. Oldest entries are evicted (and counted) once
/// capacity is reached.
#[derive(Debug, Clone)]
pub struct Journal {
    ring: VecDeque<TimedEvent>,
    capacity: usize,
    dropped: u64,
}

impl Journal {
    /// A journal keeping at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, ts_us: u64, event: Event) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TimedEvent { ts_us, event });
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_latest_when_overflowing() {
        let mut j = Journal::with_capacity(3);
        for i in 0..5u64 {
            j.push(
                i,
                Event::Mark {
                    name: "m",
                    value: i as f64,
                },
            );
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        let ts: Vec<u64> = j.events().map(|e| e.ts_us).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut j = Journal::with_capacity(0);
        j.push(
            0,
            Event::Mark {
                name: "m",
                value: 0.0,
            },
        );
        assert_eq!(j.len(), 1);
        assert_eq!(j.capacity(), 1);
    }
}
