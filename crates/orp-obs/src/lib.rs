//! # orp-obs — observability for the ORP toolkit
//!
//! A lightweight, **zero-cost-when-disabled** instrumentation layer used
//! by the annealer (`orp-core`) and the network simulator (`orp-netsim`):
//!
//! * [`Recorder`] — the cheap-to-clone handle every instrumented
//!   subsystem accepts. The default ([`Recorder::disabled`]) is a no-op:
//!   each call sites costs one branch on a `None` check, nothing is
//!   allocated, and no time is read.
//! * [`Histogram`] — log-linear value histograms (~3% relative error)
//!   for latencies, utilizations, and queue depths.
//! * monotonic **counters**, named **time series**, and scoped
//!   [`Span`]s measured with a monotonic clock.
//! * [`Journal`] — a fixed-capacity ring buffer of typed [`Event`]s (the
//!   flow-lifecycle / anneal-phase / fault taxonomy of DESIGN.md §4d).
//! * pluggable [`Sink`]s turning a [`Snapshot`] into artifacts:
//!   [`JsonSummary`], [`ChromeTrace`] (load in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev)), and [`TextProgress`].
//! * [`analyze`] — the latency-attribution engine over recorded
//!   telemetry: critical paths, makespan breakdowns, link hotspots,
//!   span flamegraphs, and two-run trace diffing.
//!
//! Instrumentation must never change results: a [`Recorder`] only
//! *observes* — it holds no RNG, and nothing in the toolkit reads it
//! back. The `obs_equivalence` property suite pins this down by
//! comparing recorded and unrecorded runs bit for bit.
//!
//! ## Example
//!
//! ```
//! use orp_obs::{ChromeTrace, Event, Recorder, Sink};
//!
//! let rec = Recorder::enabled();
//! {
//!     let _span = rec.span("setup");
//!     rec.incr("widgets", 3);
//!     rec.record("latency_ns", 1_250);
//!     rec.emit(Event::Mark { name: "ready", value: 1.0 });
//! }
//! let snap = rec.snapshot().unwrap();
//! assert_eq!(snap.counter("widgets"), Some(3));
//! let trace = ChromeTrace.render(&snap);
//! assert!(trace.contains("traceEvents"));
//! ```

#![warn(missing_docs)]

pub mod analyze;
mod event;
mod histogram;
mod journal;
mod recorder;
mod sink;
mod snapshot;
pub mod stream;

pub use event::{Event, FaultKind, FlowStage};
pub use histogram::{Histogram, HistogramSummary};
pub use journal::{Journal, TimedEvent};
pub use recorder::{ObsConfig, Recorder, Span};
pub use sink::{ChromeTrace, JsonSummary, Sink, TextProgress};
pub use snapshot::{SeriesPoint, Snapshot, SpanRecord};
pub use stream::{
    is_stream, parse_stream, read_stream, render_dashboard, render_stream_report, StreamEvent,
    StreamFollower, StreamSink, StreamState, STREAM_VERSION,
};
