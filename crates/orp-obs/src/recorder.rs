//! The [`Recorder`] handle and its RAII [`Span`] guard.
//!
//! A `Recorder` is the one observability argument threaded through the
//! toolkit. It is a cheap clone (an `Option<Arc<…>>`): clones share one
//! store, and the disabled default makes every record call a single
//! branch — the hot paths stay allocation- and syscall-free unless the
//! caller opted in.
//!
//! Interior state sits behind one `Mutex`. That is deliberate: when
//! recording is *on*, correctness and simplicity beat shaving
//! nanoseconds (the instrumented paths take micro- to milliseconds per
//! recorded unit), and when it is *off* the mutex is never touched.

use crate::event::Event;
use crate::histogram::Histogram;
use crate::journal::Journal;
use crate::sink::Sink;
use crate::snapshot::{SeriesPoint, Snapshot, SpanRecord};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// Capacity knobs for an enabled recorder.
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Ring-buffer capacity of the event journal.
    pub journal_capacity: usize,
    /// Maximum completed spans kept (further spans are counted, not
    /// stored).
    pub max_spans: usize,
    /// Maximum points kept per named series (further points are
    /// dropped silently; record sparsely via a stride instead).
    pub max_series_points: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            journal_capacity: 65_536,
            max_spans: 65_536,
            max_series_points: 65_536,
        }
    }
}

#[derive(Debug)]
struct State {
    cfg: ObsConfig,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
    series: BTreeMap<&'static str, Vec<SeriesPoint>>,
    journal: Journal,
    spans: Vec<SpanRecord>,
    dropped_spans: u64,
    threads: Vec<ThreadId>,
}

#[derive(Debug)]
struct Inner {
    origin: Instant,
    state: Mutex<State>,
}

impl Inner {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    fn tid(state: &mut State) -> u32 {
        let id = std::thread::current().id();
        match state.threads.iter().position(|&t| t == id) {
            Some(i) => i as u32,
            None => {
                state.threads.push(id);
                (state.threads.len() - 1) as u32
            }
        }
    }
}

/// The instrumentation handle. See the crate docs for the model.
///
/// `Recorder::default()` is disabled; [`Recorder::enabled`] turns
/// recording on. All methods are safe to call from multiple threads.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// The no-op recorder: every call is a branch and nothing else.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recording recorder with default capacities.
    pub fn enabled() -> Self {
        Self::with_config(ObsConfig::default())
    }

    /// A recording recorder with explicit capacities.
    pub fn with_config(cfg: ObsConfig) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                origin: Instant::now(),
                state: Mutex::new(State {
                    cfg,
                    counters: BTreeMap::new(),
                    hists: BTreeMap::new(),
                    series: BTreeMap::new(),
                    journal: Journal::with_capacity(cfg.journal_capacity),
                    spans: Vec::new(),
                    dropped_spans: 0,
                    threads: Vec::new(),
                }),
            })),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `by` to the named monotonic counter.
    #[inline]
    pub fn incr(&self, name: &'static str, by: u64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().expect("recorder poisoned");
            *st.counters.entry(name).or_insert(0) += by;
        }
    }

    /// Records `value` into the named log-linear histogram.
    #[inline]
    pub fn record(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().expect("recorder poisoned");
            st.hists.entry(name).or_default().record(value);
        }
    }

    /// Runs `f`, recording its wall time in nanoseconds into the named
    /// histogram when enabled. When disabled no clock is read.
    #[inline]
    pub fn time<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        match &self.inner {
            None => f(),
            Some(inner) => {
                let t = Instant::now();
                let out = f();
                let ns = t.elapsed().as_nanos() as u64;
                let mut st = inner.state.lock().expect("recorder poisoned");
                st.hists.entry(name).or_default().record(ns);
                out
            }
        }
    }

    /// Appends a point to the named time series (bounded by
    /// [`ObsConfig::max_series_points`]).
    #[inline]
    pub fn series(&self, name: &'static str, x: f64, y: f64) {
        if let Some(inner) = &self.inner {
            let ts_us = inner.now_us();
            let mut st = inner.state.lock().expect("recorder poisoned");
            let cap = st.cfg.max_series_points;
            let s = st.series.entry(name).or_default();
            if s.len() < cap {
                s.push(SeriesPoint { ts_us, x, y });
            }
        }
    }

    /// Appends a typed event to the ring-buffer journal.
    #[inline]
    pub fn emit(&self, event: Event) {
        if let Some(inner) = &self.inner {
            let ts_us = inner.now_us();
            let mut st = inner.state.lock().expect("recorder poisoned");
            st.journal.push(ts_us, event);
        }
    }

    /// Opens a scoped span; the returned guard records `name` with the
    /// elapsed wall time when dropped. Disabled recorders return an
    /// inert guard.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            active: self.inner.as_ref().map(|inner| SpanActive {
                inner: Arc::clone(inner),
                name,
                start: Instant::now(),
            }),
        }
    }

    /// Copies out everything recorded so far (`None` when disabled).
    pub fn snapshot(&self) -> Option<Snapshot> {
        let inner = self.inner.as_ref()?;
        let elapsed_us = inner.now_us();
        let st = inner.state.lock().expect("recorder poisoned");
        Some(Snapshot {
            elapsed_us,
            counters: st
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            histograms: st
                .hists
                .iter()
                .map(|(&k, h)| (k.to_string(), h.summary()))
                .collect(),
            series: st
                .series
                .iter()
                .map(|(&k, s)| (k.to_string(), s.clone()))
                .collect(),
            events: st.journal.events().copied().collect(),
            dropped_events: st.journal.dropped(),
            spans: st.spans.clone(),
            dropped_spans: st.dropped_spans,
        })
    }

    /// Renders the current snapshot through `sink` (`None` when
    /// disabled).
    pub fn export(&self, sink: &dyn Sink) -> Option<String> {
        self.snapshot().map(|s| sink.render(&s))
    }

    /// Renders the current snapshot through `sink` and writes it to
    /// `path`. Returns `Ok(false)` without touching the filesystem when
    /// disabled. The write is atomic — a sibling temp file renamed into
    /// place — so a crash mid-export never leaves a truncated trace.
    pub fn export_to(
        &self,
        sink: &dyn Sink,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<bool> {
        match self.export(sink) {
            None => Ok(false),
            Some(text) => {
                if let Some(dir) = path.as_ref().parent() {
                    if !dir.as_os_str().is_empty() {
                        std::fs::create_dir_all(dir)?;
                    }
                }
                atomic_write(path.as_ref(), text.as_bytes())?;
                Ok(true)
            }
        }
    }
}

/// Crash-safe file write: stage in a sibling `.tmp`, fsync, rename.
/// (A local copy of `orp_core::ckpt::atomic_write` — this crate sits
/// below `orp-core` in the dependency graph and cannot call it.)
fn atomic_write(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[derive(Debug)]
struct SpanActive {
    inner: Arc<Inner>,
    name: &'static str,
    start: Instant,
}

/// RAII guard returned by [`Recorder::span`]; records on drop.
#[derive(Debug)]
#[must_use = "a span measures the scope it is alive in"]
pub struct Span {
    active: Option<SpanActive>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else {
            return;
        };
        let dur_us = a.start.elapsed().as_micros() as u64;
        let start_us = a.start.duration_since(a.inner.origin).as_micros() as u64;
        let mut st = a.inner.state.lock().expect("recorder poisoned");
        if st.spans.len() < st.cfg.max_spans {
            let tid = Inner::tid(&mut st);
            st.spans.push(SpanRecord {
                name: a.name,
                start_us,
                dur_us,
                tid,
            });
        } else {
            st.dropped_spans += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_observes_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.incr("c", 5);
        rec.record("h", 1);
        rec.series("s", 0.0, 1.0);
        rec.emit(Event::Mark {
            name: "m",
            value: 1.0,
        });
        drop(rec.span("sp"));
        assert_eq!(rec.time("t", || 7), 7);
        assert!(rec.snapshot().is_none());
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let rec = Recorder::enabled();
        rec.incr("c", 2);
        rec.incr("c", 3);
        rec.record("h", 10);
        rec.record("h", 20);
        let s = rec.snapshot().unwrap();
        assert_eq!(s.counter("c"), Some(5));
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 30);
    }

    #[test]
    fn clones_share_one_store() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        clone.incr("c", 1);
        rec.incr("c", 1);
        assert_eq!(rec.snapshot().unwrap().counter("c"), Some(2));
    }

    #[test]
    fn spans_record_duration_and_thread() {
        let rec = Recorder::enabled();
        {
            let _outer = rec.span("outer");
            let _inner = rec.span("inner");
        }
        let s = rec.snapshot().unwrap();
        assert_eq!(s.spans.len(), 2);
        // inner drops first
        assert_eq!(s.spans[0].name, "inner");
        assert_eq!(s.spans[1].name, "outer");
        assert_eq!(s.spans[0].tid, 0);
    }

    #[test]
    fn span_cap_counts_overflow() {
        let rec = Recorder::with_config(ObsConfig {
            max_spans: 1,
            ..ObsConfig::default()
        });
        drop(rec.span("a"));
        drop(rec.span("b"));
        let s = rec.snapshot().unwrap();
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.dropped_spans, 1);
    }

    #[test]
    fn series_is_bounded() {
        let rec = Recorder::with_config(ObsConfig {
            max_series_points: 2,
            ..ObsConfig::default()
        });
        for i in 0..5 {
            rec.series("s", i as f64, 0.0);
        }
        assert_eq!(rec.snapshot().unwrap().series("s").unwrap().len(), 2);
    }

    #[test]
    fn time_returns_the_closure_value() {
        let rec = Recorder::enabled();
        let v = rec.time("work_ns", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(
            rec.snapshot().unwrap().histogram("work_ns").unwrap().count,
            1
        );
    }

    #[test]
    fn recorder_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Recorder>();
    }
}
