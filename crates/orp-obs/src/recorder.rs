//! The [`Recorder`] handle and its RAII [`Span`] guard.
//!
//! A `Recorder` is the one observability argument threaded through the
//! toolkit. It is a cheap clone (an `Option<Arc<…>>`): clones share one
//! store, and the disabled default makes every record call a single
//! branch — the hot paths stay allocation- and syscall-free unless the
//! caller opted in.
//!
//! Interior state sits behind one `Mutex`. That is deliberate: when
//! recording is *on*, correctness and simplicity beat shaving
//! nanoseconds (the instrumented paths take micro- to milliseconds per
//! recorded unit), and when it is *off* the mutex is never touched.

use crate::event::Event;
use crate::histogram::Histogram;
use crate::journal::Journal;
use crate::sink::Sink;
use crate::snapshot::{SeriesPoint, Snapshot, SpanRecord};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// Metric names are `&'static str` on the hot paths (no allocation) but
/// may be owned for dynamically shaped metrics — per-worker lanes
/// (`pool.w3.steals`), per-replica rungs (`temper.r2.temp`) — via the
/// `*_dyn` recording methods.
type Name = Cow<'static, str>;

/// Capacity knobs for an enabled recorder.
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Ring-buffer capacity of the event journal.
    pub journal_capacity: usize,
    /// Maximum completed spans kept (further spans are counted, not
    /// stored).
    pub max_spans: usize,
    /// Maximum points kept per named series. Reaching the cap does not
    /// drop the tail: the series is decimated in place (every other
    /// retained point removed, acceptance stride doubled), so memory
    /// stays bounded while first/last/extrema points survive.
    pub max_series_points: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            journal_capacity: 65_536,
            max_spans: 65_536,
            max_series_points: 65_536,
        }
    }
}

/// A bounded series store: keep-every-`stride` doubling decimation.
///
/// Every incoming point updates the tracked extrema/last; a point is
/// *retained* only when its ordinal is a multiple of the current
/// stride. When the retained vector hits the cap, every odd-positioned
/// point is dropped and the stride doubles, so memory is O(cap) for
/// any run length while the kept points stay evenly spaced. The
/// process is deterministic — a function of the push sequence and the
/// cap alone — and [`SeriesBuf::collect`] re-inserts the argmin,
/// argmax, and final points so decimation never erases the envelope.
#[derive(Debug, Default)]
struct SeriesBuf {
    pts: Vec<SeriesPoint>,
    stride: u64,
    seen: u64,
    min: Option<SeriesPoint>,
    max: Option<SeriesPoint>,
    last: Option<SeriesPoint>,
}

impl SeriesBuf {
    fn push(&mut self, p: SeriesPoint, cap: usize) {
        if self.stride == 0 {
            self.stride = 1;
        }
        // Strict comparisons keep the *earliest* extremum on ties.
        if self.min.is_none_or(|m| p.y < m.y) {
            self.min = Some(p);
        }
        if self.max.is_none_or(|m| p.y > m.y) {
            self.max = Some(p);
        }
        self.last = Some(p);
        if self.seen.is_multiple_of(self.stride) {
            self.pts.push(p);
            if self.pts.len() >= cap.max(4) {
                let mut i = 0usize;
                self.pts.retain(|_| {
                    let keep = i.is_multiple_of(2);
                    i += 1;
                    keep
                });
                self.stride *= 2;
            }
        }
        self.seen += 1;
    }

    /// The decimated points plus the extrema/final points (if elided),
    /// sorted by timestamp.
    fn collect(&self) -> Vec<SeriesPoint> {
        let mut out = self.pts.clone();
        for p in [self.min, self.max, self.last].into_iter().flatten() {
            if !out
                .iter()
                .any(|q| q.ts_us == p.ts_us && q.x == p.x && q.y == p.y)
            {
                out.push(p);
            }
        }
        out.sort_by(|a, b| a.ts_us.cmp(&b.ts_us).then(a.x.total_cmp(&b.x)));
        out
    }
}

#[derive(Debug)]
struct State {
    cfg: ObsConfig,
    counters: BTreeMap<Name, u64>,
    gauges: BTreeMap<Name, f64>,
    hists: BTreeMap<Name, Histogram>,
    series: BTreeMap<Name, SeriesBuf>,
    journal: Journal,
    spans: Vec<SpanRecord>,
    dropped_spans: u64,
    threads: Vec<ThreadId>,
}

#[derive(Debug)]
struct Inner {
    origin: Instant,
    state: Mutex<State>,
}

impl Inner {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    fn tid(state: &mut State) -> u32 {
        let id = std::thread::current().id();
        match state.threads.iter().position(|&t| t == id) {
            Some(i) => i as u32,
            None => {
                state.threads.push(id);
                (state.threads.len() - 1) as u32
            }
        }
    }
}

/// The instrumentation handle. See the crate docs for the model.
///
/// `Recorder::default()` is disabled; [`Recorder::enabled`] turns
/// recording on. All methods are safe to call from multiple threads.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// The no-op recorder: every call is a branch and nothing else.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recording recorder with default capacities.
    pub fn enabled() -> Self {
        Self::with_config(ObsConfig::default())
    }

    /// A recording recorder with explicit capacities.
    pub fn with_config(cfg: ObsConfig) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                origin: Instant::now(),
                state: Mutex::new(State {
                    cfg,
                    counters: BTreeMap::new(),
                    gauges: BTreeMap::new(),
                    hists: BTreeMap::new(),
                    series: BTreeMap::new(),
                    journal: Journal::with_capacity(cfg.journal_capacity),
                    spans: Vec::new(),
                    dropped_spans: 0,
                    threads: Vec::new(),
                }),
            })),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since this recorder was created (0 when disabled).
    /// Lets callers stamp gauges — e.g. a watchdog heartbeat — on the
    /// same clock every snapshot and stream record uses.
    #[inline]
    pub fn elapsed_us(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| inner.now_us())
    }

    /// Adds `by` to the named monotonic counter.
    #[inline]
    pub fn incr(&self, name: &'static str, by: u64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().expect("recorder poisoned");
            *st.counters.entry(Cow::Borrowed(name)).or_insert(0) += by;
        }
    }

    /// [`Recorder::incr`] for dynamically shaped names (per-worker,
    /// per-replica). Allocates only on the first sight of a name.
    #[inline]
    pub fn incr_dyn(&self, name: &str, by: u64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().expect("recorder poisoned");
            match st.counters.get_mut(name) {
                Some(v) => *v += by,
                None => {
                    st.counters.insert(Cow::Owned(name.to_string()), by);
                }
            }
        }
    }

    /// Sets the named gauge (last write wins). Gauges report a current
    /// level — resident bytes, a replica temperature, a heartbeat —
    /// where a monotonic counter would be the wrong shape.
    #[inline]
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().expect("recorder poisoned");
            st.gauges.insert(Cow::Borrowed(name), value);
        }
    }

    /// [`Recorder::gauge`] for dynamically shaped names.
    #[inline]
    pub fn gauge_dyn(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().expect("recorder poisoned");
            match st.gauges.get_mut(name) {
                Some(v) => *v = value,
                None => {
                    st.gauges.insert(Cow::Owned(name.to_string()), value);
                }
            }
        }
    }

    /// Records `value` into the named log-linear histogram.
    #[inline]
    pub fn record(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().expect("recorder poisoned");
            st.hists
                .entry(Cow::Borrowed(name))
                .or_default()
                .record(value);
        }
    }

    /// Runs `f`, recording its wall time in nanoseconds into the named
    /// histogram when enabled. When disabled no clock is read.
    #[inline]
    pub fn time<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        match &self.inner {
            None => f(),
            Some(inner) => {
                let t = Instant::now();
                let out = f();
                let ns = t.elapsed().as_nanos() as u64;
                let mut st = inner.state.lock().expect("recorder poisoned");
                st.hists.entry(Cow::Borrowed(name)).or_default().record(ns);
                out
            }
        }
    }

    /// Appends a point to the named time series. Memory is bounded by
    /// [`ObsConfig::max_series_points`] via deterministic decimation;
    /// endpoints and extrema are always preserved.
    #[inline]
    pub fn series(&self, name: &'static str, x: f64, y: f64) {
        if let Some(inner) = &self.inner {
            let ts_us = inner.now_us();
            let mut st = inner.state.lock().expect("recorder poisoned");
            let cap = st.cfg.max_series_points;
            st.series
                .entry(Cow::Borrowed(name))
                .or_default()
                .push(SeriesPoint { ts_us, x, y }, cap);
        }
    }

    /// [`Recorder::series`] for dynamically shaped names.
    #[inline]
    pub fn series_dyn(&self, name: &str, x: f64, y: f64) {
        if let Some(inner) = &self.inner {
            let ts_us = inner.now_us();
            let mut st = inner.state.lock().expect("recorder poisoned");
            let cap = st.cfg.max_series_points;
            let p = SeriesPoint { ts_us, x, y };
            match st.series.get_mut(name) {
                Some(s) => s.push(p, cap),
                None => {
                    let mut s = SeriesBuf::default();
                    s.push(p, cap);
                    st.series.insert(Cow::Owned(name.to_string()), s);
                }
            }
        }
    }

    /// Appends a typed event to the ring-buffer journal.
    #[inline]
    pub fn emit(&self, event: Event) {
        if let Some(inner) = &self.inner {
            let ts_us = inner.now_us();
            let mut st = inner.state.lock().expect("recorder poisoned");
            st.journal.push(ts_us, event);
        }
    }

    /// Opens a scoped span; the returned guard records `name` with the
    /// elapsed wall time when dropped. Disabled recorders return an
    /// inert guard.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            active: self.inner.as_ref().map(|inner| SpanActive {
                inner: Arc::clone(inner),
                name,
                start: Instant::now(),
            }),
        }
    }

    /// Copies out everything recorded so far (`None` when disabled).
    pub fn snapshot(&self) -> Option<Snapshot> {
        let inner = self.inner.as_ref()?;
        let elapsed_us = inner.now_us();
        let st = inner.state.lock().expect("recorder poisoned");
        Some(Snapshot {
            elapsed_us,
            counters: st
                .counters
                .iter()
                .map(|(k, &v)| (k.clone().into_owned(), v))
                .collect(),
            gauges: st
                .gauges
                .iter()
                .map(|(k, &v)| (k.clone().into_owned(), v))
                .collect(),
            histograms: st
                .hists
                .iter()
                .map(|(k, h)| (k.clone().into_owned(), h.summary()))
                .collect(),
            series: st
                .series
                .iter()
                .map(|(k, s)| (k.clone().into_owned(), s.collect()))
                .collect(),
            events: st.journal.events().copied().collect(),
            dropped_events: st.journal.dropped(),
            spans: st.spans.clone(),
            dropped_spans: st.dropped_spans,
        })
    }

    /// Renders the current snapshot through `sink` (`None` when
    /// disabled).
    pub fn export(&self, sink: &dyn Sink) -> Option<String> {
        self.snapshot().map(|s| sink.render(&s))
    }

    /// Renders the current snapshot through `sink` and writes it to
    /// `path`. Returns `Ok(false)` without touching the filesystem when
    /// disabled. The write is atomic — a sibling temp file renamed into
    /// place — so a crash mid-export never leaves a truncated trace.
    pub fn export_to(
        &self,
        sink: &dyn Sink,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<bool> {
        match self.export(sink) {
            None => Ok(false),
            Some(text) => {
                if let Some(dir) = path.as_ref().parent() {
                    if !dir.as_os_str().is_empty() {
                        std::fs::create_dir_all(dir)?;
                    }
                }
                atomic_write(path.as_ref(), text.as_bytes())?;
                Ok(true)
            }
        }
    }
}

/// Crash-safe file write: stage in a sibling `.tmp`, fsync, rename.
/// (A local copy of `orp_core::ckpt::atomic_write` — this crate sits
/// below `orp-core` in the dependency graph and cannot call it.)
fn atomic_write(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[derive(Debug)]
struct SpanActive {
    inner: Arc<Inner>,
    name: &'static str,
    start: Instant,
}

/// RAII guard returned by [`Recorder::span`]; records on drop.
#[derive(Debug)]
#[must_use = "a span measures the scope it is alive in"]
pub struct Span {
    active: Option<SpanActive>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else {
            return;
        };
        let dur_us = a.start.elapsed().as_micros() as u64;
        let start_us = a.start.duration_since(a.inner.origin).as_micros() as u64;
        let mut st = a.inner.state.lock().expect("recorder poisoned");
        if st.spans.len() < st.cfg.max_spans {
            let tid = Inner::tid(&mut st);
            st.spans.push(SpanRecord {
                name: a.name,
                start_us,
                dur_us,
                tid,
            });
        } else {
            st.dropped_spans += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_observes_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.incr("c", 5);
        rec.record("h", 1);
        rec.series("s", 0.0, 1.0);
        rec.emit(Event::Mark {
            name: "m",
            value: 1.0,
        });
        drop(rec.span("sp"));
        assert_eq!(rec.time("t", || 7), 7);
        assert!(rec.snapshot().is_none());
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let rec = Recorder::enabled();
        rec.incr("c", 2);
        rec.incr("c", 3);
        rec.record("h", 10);
        rec.record("h", 20);
        let s = rec.snapshot().unwrap();
        assert_eq!(s.counter("c"), Some(5));
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 30);
    }

    #[test]
    fn clones_share_one_store() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        clone.incr("c", 1);
        rec.incr("c", 1);
        assert_eq!(rec.snapshot().unwrap().counter("c"), Some(2));
    }

    #[test]
    fn spans_record_duration_and_thread() {
        let rec = Recorder::enabled();
        {
            let _outer = rec.span("outer");
            let _inner = rec.span("inner");
        }
        let s = rec.snapshot().unwrap();
        assert_eq!(s.spans.len(), 2);
        // inner drops first
        assert_eq!(s.spans[0].name, "inner");
        assert_eq!(s.spans[1].name, "outer");
        assert_eq!(s.spans[0].tid, 0);
    }

    #[test]
    fn span_cap_counts_overflow() {
        let rec = Recorder::with_config(ObsConfig {
            max_spans: 1,
            ..ObsConfig::default()
        });
        drop(rec.span("a"));
        drop(rec.span("b"));
        let s = rec.snapshot().unwrap();
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.dropped_spans, 1);
    }

    #[test]
    fn series_is_bounded_but_keeps_endpoints_and_extrema() {
        let cap = 8usize;
        let rec = Recorder::with_config(ObsConfig {
            max_series_points: cap,
            ..ObsConfig::default()
        });
        let n = 10_000;
        for i in 0..n {
            // a vee: minimum in the middle, maximum at the end
            let y = (i as f64 - 6000.0).abs();
            rec.series("s", i as f64, y);
        }
        let s = rec.snapshot().unwrap();
        let pts = s.series("s").unwrap();
        assert!(pts.len() <= cap + 3, "len {} > cap+3", pts.len());
        assert!(pts.iter().any(|p| p.x == 0.0), "first point lost");
        assert!(pts.iter().any(|p| p.x == (n - 1) as f64), "last point lost");
        assert!(pts.iter().any(|p| p.y == 0.0), "argmin lost");
        assert!(pts.iter().any(|p| p.y == 6000.0), "argmax lost");
        // sorted by timestamp
        assert!(pts.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn decimation_is_deterministic() {
        let run = || {
            let mut b = SeriesBuf::default();
            for i in 0..1000u64 {
                let p = SeriesPoint {
                    ts_us: i,
                    x: i as f64,
                    y: (i % 37) as f64,
                };
                b.push(p, 16);
            }
            b.collect()
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(b.iter())
            .all(|(p, q)| p.ts_us == q.ts_us && p.x == q.x && p.y == q.y));
    }

    #[test]
    fn gauges_last_write_wins() {
        let rec = Recorder::enabled();
        rec.gauge("g", 1.0);
        rec.gauge("g", 2.5);
        rec.gauge_dyn("pool.w0.busy", 7.0);
        let s = rec.snapshot().unwrap();
        assert_eq!(s.gauge("g"), Some(2.5));
        assert_eq!(s.gauge("pool.w0.busy"), Some(7.0));
        assert_eq!(s.gauge("missing"), None);
    }

    #[test]
    fn dyn_names_share_the_store_with_static_names() {
        let rec = Recorder::enabled();
        rec.incr("c", 1);
        rec.incr_dyn("c", 2);
        rec.incr_dyn("pool.w1.steals", 3);
        rec.series_dyn("temper.r0.temp", 0.0, 0.9);
        rec.series_dyn("temper.r0.temp", 1.0, 0.8);
        let s = rec.snapshot().unwrap();
        assert_eq!(s.counter("c"), Some(3));
        assert_eq!(s.counter("pool.w1.steals"), Some(3));
        assert_eq!(s.series("temper.r0.temp").unwrap().len(), 2);
    }

    #[test]
    fn time_returns_the_closure_value() {
        let rec = Recorder::enabled();
        let v = rec.time("work_ns", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(
            rec.snapshot().unwrap().histogram("work_ns").unwrap().count,
            1
        );
    }

    #[test]
    fn recorder_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Recorder>();
    }
}
