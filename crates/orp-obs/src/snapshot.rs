//! An owned, immutable copy of everything a [`crate::Recorder`]
//! accumulated — the unit the [`crate::Sink`]s consume.

use crate::histogram::HistogramSummary;
use crate::journal::TimedEvent;

/// One completed span, Chrome-trace-shaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name.
    pub name: &'static str,
    /// Start, microseconds since recorder creation.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Small integer id of the recording thread (0-based, in order of
    /// first appearance).
    pub tid: u32,
}

/// One point of a named time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Record time, microseconds since recorder creation.
    pub ts_us: u64,
    /// Domain coordinate chosen by the caller (e.g. iteration number).
    pub x: f64,
    /// The tracked value.
    pub y: f64,
}

/// A point-in-time copy of a recorder's state.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Microseconds elapsed since the recorder was created.
    pub elapsed_us: u64,
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram digests, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Named time series, sorted by name.
    pub series: Vec<(String, Vec<SeriesPoint>)>,
    /// Retained journal events, oldest first.
    pub events: Vec<TimedEvent>,
    /// Journal events evicted by the ring buffer.
    pub dropped_events: u64,
    /// Completed spans in completion order.
    pub spans: Vec<SpanRecord>,
    /// Spans discarded after the span cap was hit.
    pub dropped_spans: u64,
}

impl Snapshot {
    /// Value of a counter, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a gauge, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Digest of a histogram, if it ever recorded a value.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// A named series, if it has any points.
    pub fn series(&self, name: &str) -> Option<&[SeriesPoint]> {
        self.series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.as_slice())
    }

    /// Count of journal events whose name matches `name` exactly.
    pub fn event_count(&self, name: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.event.name() == name)
            .count()
    }
}
