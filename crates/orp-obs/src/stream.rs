//! Live telemetry streaming — periodic JSONL snapshot deltas.
//!
//! A post-hoc [`Snapshot`] is useless for a solve that runs for hours:
//! nothing exists until the run ends cleanly. A [`StreamSink`] fixes
//! that by appending small, self-describing JSONL records to a metrics
//! file on a wall-clock cadence, cheap enough to hook into the
//! annealer iteration loop, the tempering round loop, and the netsim
//! event loop:
//!
//! * one line per record, each tagged with a `"k"` kind —
//!   `open`, `meta`, `counters`, `gauges`, `hists`, `series`,
//!   `events`, `done`;
//! * `counters`/`gauges`/`hists` are *absolute* (each flush replaces
//!   the previous view, so a reader needs no history);
//! * `series` and `events` are *deltas* (only points/events not yet
//!   streamed), with a `reset` escape hatch for the rare case where
//!   in-memory decimation rewrote a series under the writer;
//! * writes are appends of whole batches; no fsync on the hot path.
//!   A crash can therefore tear at most the final line, and the reader
//!   ([`StreamState::apply_line`] / [`read_stream`]) tolerates exactly
//!   that: a partial last line is skipped, everything before it loads.
//!
//! [`StreamFollower`] tails a growing file incrementally (byte offset
//! plus partial-line carry), [`render_stream_report`] renders a static
//! text report for `orp report`, and [`render_dashboard`] renders the
//! refreshing `orp watch` terminal dashboard.

use crate::histogram::HistogramSummary;
use crate::recorder::Recorder;
use crate::sink::{esc, num};
use crate::snapshot::{SeriesPoint, Snapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{Read as _, Seek as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Format version written in the `open` record.
pub const STREAM_VERSION: u64 = 1;

/// Default wall-clock cadence between flushes.
pub const DEFAULT_STREAM_INTERVAL: Duration = Duration::from_millis(500);

#[derive(Debug)]
struct SeriesCursor {
    /// Points already streamed.
    sent: usize,
    /// First streamed point — if it changes, decimation rewrote the
    /// series and the next record must `reset`.
    first: Option<(u64, f64, f64)>,
}

#[derive(Debug)]
struct StreamInner {
    file: std::fs::File,
    seq: u64,
    last_flush: Instant,
    interval: Duration,
    series_sent: BTreeMap<String, SeriesCursor>,
    /// Total journal events already accounted for (including ones the
    /// ring buffer dropped before we saw them).
    events_sent: u64,
    done: bool,
}

/// Append-only JSONL metrics stream writer. Cheap to clone; clones
/// share the file and cursor state.
#[derive(Debug, Clone)]
pub struct StreamSink {
    inner: Arc<Mutex<StreamInner>>,
    path: PathBuf,
}

impl StreamSink {
    /// Creates (truncates) `path` and writes the `open` record.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::with_interval(path, DEFAULT_STREAM_INTERVAL)
    }

    /// [`StreamSink::create`] with an explicit flush cadence.
    pub fn with_interval(path: impl AsRef<Path>, interval: Duration) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut file = std::fs::File::create(&path)?;
        let mut line = String::new();
        let _ = writeln!(line, "{{\"k\":\"open\",\"v\":{STREAM_VERSION}}}");
        file.write_all(line.as_bytes())?;
        Ok(Self {
            inner: Arc::new(Mutex::new(StreamInner {
                file,
                seq: 0,
                last_flush: Instant::now(),
                interval,
                series_sent: BTreeMap::new(),
                events_sent: 0,
                done: false,
            })),
            path,
        })
    }

    /// The file this sink appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a `meta` record: string tags (run kind, labels) and
    /// numeric facts (n, r, iteration budget, worker count).
    pub fn meta(&self, tags: &[(&str, &str)], vals: &[(&str, f64)]) {
        let mut g = self.inner.lock().expect("stream poisoned");
        let mut o = String::with_capacity(256);
        let _ = write!(
            o,
            "{{\"k\":\"meta\",\"seq\":{},\"t_us\":0,\"tags\":{{",
            g.seq
        );
        for (i, (k, v)) in tags.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            esc(k, &mut o);
            o.push(':');
            esc(v, &mut o);
        }
        o.push_str("},\"data\":{");
        for (i, (k, v)) in vals.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            esc(k, &mut o);
            o.push(':');
            num(*v, &mut o);
        }
        o.push_str("}}\n");
        let _ = g.file.write_all(o.as_bytes());
    }

    /// Whether the flush interval has elapsed. One mutex lock and one
    /// clock read — safe to call every iteration of a µs-scale loop,
    /// but event-rate loops should gate it by a pass counter.
    pub fn due(&self) -> bool {
        let g = self.inner.lock().expect("stream poisoned");
        !g.done && g.last_flush.elapsed() >= g.interval
    }

    /// If the cadence interval elapsed: runs `publish` (the caller's
    /// chance to push fresh gauges into `rec`), snapshots, and appends
    /// one flush batch. Returns whether a flush happened. Concurrent
    /// callers race on a claimed timestamp, so at most one flushes.
    pub fn maybe_flush(&self, rec: &Recorder, publish: impl FnOnce()) -> bool {
        if !rec.is_enabled() {
            return false;
        }
        {
            let mut g = self.inner.lock().expect("stream poisoned");
            if g.done || g.last_flush.elapsed() < g.interval {
                return false;
            }
            g.last_flush = Instant::now(); // claim before the snapshot work
        }
        publish();
        if let Some(snap) = rec.snapshot() {
            self.write_batch(&snap, false);
        }
        true
    }

    /// Unconditional flush (ignores the cadence).
    pub fn flush_now(&self, rec: &Recorder, publish: impl FnOnce()) {
        if !rec.is_enabled() {
            return;
        }
        publish();
        if let Some(snap) = rec.snapshot() {
            self.write_batch(&snap, false);
            let mut g = self.inner.lock().expect("stream poisoned");
            g.last_flush = Instant::now();
        }
    }

    /// Final flush plus the `done` record, fsynced. Idempotent: the
    /// stream refuses further writes afterwards.
    pub fn finish(&self, rec: &Recorder, publish: impl FnOnce()) {
        if !rec.is_enabled() {
            return;
        }
        publish();
        if let Some(snap) = rec.snapshot() {
            self.write_batch(&snap, true);
        }
    }

    fn write_batch(&self, snap: &Snapshot, done: bool) {
        let mut g = self.inner.lock().expect("stream poisoned");
        if g.done {
            return;
        }
        g.seq += 1;
        let seq = g.seq;
        let t = snap.elapsed_us;
        let mut o = String::with_capacity(2048);

        if !snap.counters.is_empty() {
            let _ = write!(
                o,
                "{{\"k\":\"counters\",\"seq\":{seq},\"t_us\":{t},\"data\":{{"
            );
            for (i, (name, v)) in snap.counters.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                esc(name, &mut o);
                let _ = write!(o, ":{v}");
            }
            o.push_str("}}\n");
        }
        if !snap.gauges.is_empty() {
            let _ = write!(
                o,
                "{{\"k\":\"gauges\",\"seq\":{seq},\"t_us\":{t},\"data\":{{"
            );
            for (i, (name, v)) in snap.gauges.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                esc(name, &mut o);
                o.push(':');
                num(*v, &mut o);
            }
            o.push_str("}}\n");
        }
        if !snap.histograms.is_empty() {
            let _ = write!(
                o,
                "{{\"k\":\"hists\",\"seq\":{seq},\"t_us\":{t},\"data\":{{"
            );
            for (i, (name, h)) in snap.histograms.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                esc(name, &mut o);
                let _ = write!(
                    o,
                    ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":",
                    h.count, h.sum, h.min, h.max
                );
                num(h.mean, &mut o);
                let _ = write!(
                    o,
                    ",\"p50\":{},\"p90\":{},\"p99\":{}}}",
                    h.p50, h.p90, h.p99
                );
            }
            o.push_str("}}\n");
        }
        for (name, pts) in &snap.series {
            let cur_first = pts.first().map(|p| (p.ts_us, p.x, p.y));
            let cursor = g.series_sent.get(name.as_str());
            let (reset, from) = match cursor {
                Some(c) if c.first == cur_first && pts.len() >= c.sent => (false, c.sent),
                Some(_) => (true, 0),
                None => (false, 0),
            };
            if from >= pts.len() && !reset {
                continue; // nothing new
            }
            let _ = write!(o, "{{\"k\":\"series\",\"seq\":{seq},\"t_us\":{t},\"name\":");
            esc(name, &mut o);
            let _ = write!(o, ",\"reset\":{reset},\"pts\":[");
            for (j, p) in pts[from..].iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                let _ = write!(o, "[{},", p.ts_us);
                num(p.x, &mut o);
                o.push(',');
                num(p.y, &mut o);
                o.push(']');
            }
            o.push_str("]}\n");
            g.series_sent.insert(
                name.clone(),
                SeriesCursor {
                    sent: pts.len(),
                    first: cur_first,
                },
            );
        }
        let total_events = snap.dropped_events + snap.events.len() as u64;
        if total_events > g.events_sent {
            let fresh = (total_events - g.events_sent) as usize;
            // The newest `fresh` events sit at the tail of the retained
            // ring; cap the batch so one flush line stays small.
            let take = fresh.min(snap.events.len()).min(64);
            let tail = &snap.events[snap.events.len() - take..];
            let _ = write!(
                o,
                "{{\"k\":\"events\",\"seq\":{seq},\"t_us\":{t},\"data\":["
            );
            for (i, e) in tail.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                let _ = write!(o, "{{\"ts_us\":{},\"name\":", e.ts_us);
                esc(e.event.name(), &mut o);
                o.push_str(",\"args\":{");
                for (j, (k, v)) in e.event.args().iter().enumerate() {
                    if j > 0 {
                        o.push(',');
                    }
                    esc(k, &mut o);
                    o.push(':');
                    num(*v, &mut o);
                }
                o.push_str("}}");
            }
            o.push_str("]}\n");
            g.events_sent = total_events;
        }
        if done {
            let _ = writeln!(o, "{{\"k\":\"done\",\"seq\":{seq},\"t_us\":{t}}}");
        }
        let _ = g.file.write_all(o.as_bytes());
        if done {
            let _ = g.file.sync_all();
            g.done = true;
        }
    }
}

/// One journal event as read back from a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamEvent {
    /// Microseconds since the recorder origin.
    pub ts_us: u64,
    /// Event name (e.g. `anneal.best`, `watchdog.stalled`).
    pub name: String,
    /// Numeric event arguments.
    pub args: Vec<(String, f64)>,
}

/// Maximum journal events a reader retains (newest win).
const MAX_STATE_EVENTS: usize = 256;

/// Accumulated state of a metrics stream after applying its records in
/// order. All collections are sorted by name.
#[derive(Debug, Clone, Default)]
pub struct StreamState {
    /// Stream format version from the `open` record.
    pub version: u64,
    /// String tags from `meta` records.
    pub tags: Vec<(String, String)>,
    /// Numeric facts from `meta` records.
    pub meta: Vec<(String, f64)>,
    /// Latest absolute counter values.
    pub counters: Vec<(String, u64)>,
    /// Latest absolute gauge values.
    pub gauges: Vec<(String, f64)>,
    /// Latest histogram digests.
    pub hists: Vec<(String, HistogramSummary)>,
    /// Accumulated series points per name.
    pub series: Vec<(String, Vec<SeriesPoint>)>,
    /// Most recent journal events (bounded; newest last).
    pub events: Vec<StreamEvent>,
    /// Highest record sequence number seen.
    pub seq: u64,
    /// Records applied.
    pub records: u64,
    /// Timestamp of the newest record, µs since recorder origin.
    pub t_us: u64,
    /// Whether a `done` record closed the stream.
    pub done: bool,
    /// Whether a torn (crash-truncated) final line was skipped.
    pub truncated: bool,
}

fn vf(v: &serde::Value) -> Option<f64> {
    match v {
        serde::Value::Int(i) => Some(*i as f64),
        serde::Value::Float(f) => Some(*f),
        serde::Value::Null => Some(f64::NAN),
        _ => None,
    }
}

fn vu(v: &serde::Value) -> Option<u64> {
    match v {
        serde::Value::Int(i) if *i >= 0 => Some(*i as u64),
        serde::Value::Float(f) if *f >= 0.0 => Some(*f as u64),
        _ => None,
    }
}

fn fields(v: &serde::Value) -> Option<&[(String, serde::Value)]> {
    match v {
        serde::Value::Object(f) => Some(f),
        _ => None,
    }
}

fn upsert<T>(list: &mut Vec<(String, T)>, name: &str, value: T) {
    match list.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
        Ok(i) => list[i].1 = value,
        Err(i) => list.insert(i, (name.to_string(), value)),
    }
}

impl StreamState {
    /// Looks up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Sum of all gauges whose name is `suffix` or ends with
    /// `.{suffix}` — collapses per-replica labels (`r0.anneal.proposed`
    /// + `r1.anneal.proposed`).
    pub fn gauge_sum(&self, suffix: &str) -> Option<f64> {
        let mut hit = false;
        let mut sum = 0.0;
        for (n, v) in &self.gauges {
            if n == suffix || n.ends_with(&format!(".{suffix}")) {
                hit = true;
                sum += v;
            }
        }
        hit.then_some(sum)
    }

    /// Looks up a series by exact name.
    pub fn series(&self, name: &str) -> Option<&[SeriesPoint]> {
        self.series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.as_slice())
    }

    /// Applies one complete JSONL line. Unknown record kinds are
    /// ignored (forward compatibility); malformed JSON is an error the
    /// caller decides how to treat (tail tolerance vs corruption).
    pub fn apply_line(&mut self, line: &str) -> Result<(), String> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(());
        }
        let v: serde::Value =
            serde_json::from_str(line).map_err(|e| format!("bad stream line: {e}"))?;
        let kind = match v.get_field("k") {
            Ok(serde::Value::Str(s)) => s.clone(),
            _ => return Err("stream line without \"k\" kind".into()),
        };
        if let Some(seq) = v.get_field("seq").ok().and_then(vu) {
            self.seq = self.seq.max(seq);
        }
        if let Some(t) = v.get_field("t_us").ok().and_then(vu) {
            self.t_us = self.t_us.max(t);
        }
        self.records += 1;
        match kind.as_str() {
            "open" => {
                if let Some(ver) = v.get_field("v").ok().and_then(vu) {
                    self.version = ver;
                }
            }
            "meta" => {
                if let Some(tags) = v.get_field("tags").ok().and_then(fields) {
                    for (k, t) in tags {
                        if let serde::Value::Str(s) = t {
                            upsert(&mut self.tags, k, s.clone());
                        }
                    }
                }
                if let Some(data) = v.get_field("data").ok().and_then(fields) {
                    for (k, t) in data {
                        if let Some(f) = vf(t) {
                            upsert(&mut self.meta, k, f);
                        }
                    }
                }
            }
            "counters" => {
                if let Some(data) = v.get_field("data").ok().and_then(fields) {
                    for (k, t) in data {
                        if let Some(c) = vu(t) {
                            upsert(&mut self.counters, k, c);
                        }
                    }
                }
            }
            "gauges" => {
                if let Some(data) = v.get_field("data").ok().and_then(fields) {
                    for (k, t) in data {
                        if let Some(f) = vf(t) {
                            upsert(&mut self.gauges, k, f);
                        }
                    }
                }
            }
            "hists" => {
                if let Some(data) = v.get_field("data").ok().and_then(fields) {
                    for (k, t) in data {
                        let get = |f: &str| t.get_field(f).ok().and_then(vu).unwrap_or(0);
                        let mean = t.get_field("mean").ok().and_then(vf).unwrap_or(f64::NAN);
                        upsert(
                            &mut self.hists,
                            k,
                            HistogramSummary {
                                count: get("count"),
                                sum: get("sum"),
                                min: get("min"),
                                max: get("max"),
                                mean,
                                p50: get("p50"),
                                p90: get("p90"),
                                p99: get("p99"),
                            },
                        );
                    }
                }
            }
            "series" => {
                let name = match v.get_field("name") {
                    Ok(serde::Value::Str(s)) => s.clone(),
                    _ => return Err("series record without name".into()),
                };
                let reset = matches!(v.get_field("reset"), Ok(serde::Value::Bool(true)));
                let mut pts = Vec::new();
                if let Ok(serde::Value::Array(raw)) = v.get_field("pts") {
                    for p in raw {
                        if let serde::Value::Array(t) = p {
                            if t.len() == 3 {
                                if let (Some(ts), Some(x), Some(y)) =
                                    (vu(&t[0]), vf(&t[1]), vf(&t[2]))
                                {
                                    pts.push(SeriesPoint { ts_us: ts, x, y });
                                }
                            }
                        }
                    }
                }
                match self
                    .series
                    .binary_search_by(|(n, _)| n.as_str().cmp(name.as_str()))
                {
                    Ok(i) => {
                        if reset {
                            self.series[i].1 = pts;
                        } else {
                            self.series[i].1.extend(pts);
                        }
                    }
                    Err(i) => self.series.insert(i, (name, pts)),
                }
            }
            "events" => {
                if let Ok(serde::Value::Array(raw)) = v.get_field("data") {
                    for e in raw {
                        let name = match e.get_field("name") {
                            Ok(serde::Value::Str(s)) => s.clone(),
                            _ => continue,
                        };
                        let ts_us = e.get_field("ts_us").ok().and_then(vu).unwrap_or(0);
                        let mut args = Vec::new();
                        if let Some(a) = e.get_field("args").ok().and_then(fields) {
                            for (k, t) in a {
                                if let Some(f) = vf(t) {
                                    args.push((k.clone(), f));
                                }
                            }
                        }
                        self.events.push(StreamEvent { ts_us, name, args });
                    }
                    if self.events.len() > MAX_STATE_EVENTS {
                        let cut = self.events.len() - MAX_STATE_EVENTS;
                        self.events.drain(..cut);
                    }
                }
            }
            "done" => self.done = true,
            _ => {} // unknown kind: skip
        }
        Ok(())
    }
}

/// Parses a whole stream text. A malformed *final* line is tolerated
/// (crash truncation) and flagged via [`StreamState::truncated`]; a
/// malformed earlier line is an error.
pub fn parse_stream(text: &str) -> Result<StreamState, String> {
    let mut state = StreamState::default();
    let lines: Vec<&str> = text.split('\n').collect();
    let last_nonempty = lines.iter().rposition(|l| !l.trim().is_empty());
    for (i, line) in lines.iter().enumerate() {
        if let Err(e) = state.apply_line(line) {
            if Some(i) == last_nonempty {
                state.truncated = true;
                break;
            }
            return Err(format!("line {}: {e}", i + 1));
        }
    }
    Ok(state)
}

/// Reads and parses a stream file in one shot.
pub fn read_stream(path: impl AsRef<Path>) -> Result<StreamState, String> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
    parse_stream(&text)
}

/// Sniffs whether `text` looks like a metrics stream (first line is an
/// `open` record) as opposed to a Chrome trace or JSON summary.
pub fn is_stream(text: &str) -> bool {
    text.lines()
        .next()
        .is_some_and(|l| l.trim_start().starts_with("{\"k\":\"open\""))
}

/// Incremental tail over a growing stream file: remembers the byte
/// offset and any partial trailing line between polls.
#[derive(Debug)]
pub struct StreamFollower {
    path: PathBuf,
    offset: u64,
    carry: String,
    /// The accumulated state; read after each [`StreamFollower::poll`].
    pub state: StreamState,
}

impl StreamFollower {
    /// A follower starting at the beginning of `path` (which need not
    /// exist yet).
    pub fn new(path: impl AsRef<Path>) -> Self {
        Self {
            path: path.as_ref().to_path_buf(),
            offset: 0,
            carry: String::new(),
            state: StreamState::default(),
        }
    }

    /// Reads newly appended bytes and applies all complete lines.
    /// Returns whether any record was applied. A shrunken file (the
    /// run restarted and truncated it) resets the follower.
    pub fn poll(&mut self) -> std::io::Result<bool> {
        let mut f = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(e),
        };
        let len = f.metadata()?.len();
        if len < self.offset {
            self.offset = 0;
            self.carry.clear();
            self.state = StreamState::default();
        }
        if len == self.offset {
            return Ok(false);
        }
        f.seek(std::io::SeekFrom::Start(self.offset))?;
        let mut buf = Vec::with_capacity((len - self.offset) as usize);
        f.read_to_end(&mut buf)?;
        self.offset = len;
        self.carry.push_str(&String::from_utf8_lossy(&buf));
        let before = self.state.records;
        while let Some(pos) = self.carry.find('\n') {
            let line: String = self.carry.drain(..=pos).collect();
            // A torn or corrupt line mid-stream is skipped rather than
            // fatal: a live tail must survive writer races.
            let _ = self.state.apply_line(&line);
        }
        Ok(self.state.records != before)
    }
}

// ---------------------------------------------------------------------
// rendering
// ---------------------------------------------------------------------

fn fmt_secs(s: f64) -> String {
    if !s.is_finite() || s < 0.0 {
        return "—".into();
    }
    if s < 90.0 {
        format!("{s:.1} s")
    } else if s < 5400.0 {
        format!("{:.0}m{:02.0}s", (s / 60.0).floor(), s % 60.0)
    } else {
        format!("{:.0}h{:02.0}m", (s / 3600.0).floor(), (s % 3600.0) / 60.0)
    }
}

fn fmt_bytes(b: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.2} {}", UNITS[u])
}

fn sparkline(pts: &[SeriesPoint], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if pts.is_empty() || width == 0 {
        return String::new();
    }
    // resample the series onto `width` buckets by x order
    let take = pts.len().min(width.max(1));
    let step = pts.len() as f64 / take as f64;
    let ys: Vec<f64> = (0..take)
        .map(|i| pts[((i as f64 * step) as usize).min(pts.len() - 1)].y)
        .collect();
    let (lo, hi) = ys
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &y| (lo.min(y), hi.max(y)));
    let span = (hi - lo).max(1e-12);
    ys.iter()
        .map(|&y| BARS[(((y - lo) / span) * 7.0).round() as usize & 7])
        .collect()
}

fn bar(frac: f64, width: usize) -> String {
    let frac = frac.clamp(0.0, 1.0);
    let full = (frac * width as f64).round() as usize;
    let mut s = String::with_capacity(width * 3);
    for i in 0..width {
        s.push(if i < full { '█' } else { '░' });
    }
    s
}

/// Per-worker scheduler stats extracted from `pool.w{i}.*` gauges.
#[derive(Debug, Clone, Default)]
struct WorkerRow {
    pushes: f64,
    pops: f64,
    steals: f64,
    steal_fails: f64,
    busy_ns: f64,
    idle_ns: f64,
    peak_depth: f64,
}

fn worker_rows(state: &StreamState) -> Vec<WorkerRow> {
    let mut rows: Vec<WorkerRow> = Vec::new();
    for (name, v) in &state.gauges {
        let Some(rest) = name
            .strip_prefix("pool.w")
            .or_else(|| name.find(".pool.w").map(|i| &name[i + 7..]))
        else {
            continue;
        };
        let Some(dot) = rest.find('.') else { continue };
        let Ok(idx) = rest[..dot].parse::<usize>() else {
            continue;
        };
        if rows.len() <= idx {
            rows.resize(idx + 1, WorkerRow::default());
        }
        let row = &mut rows[idx];
        // labeled replicas (`r0.pool.w3.steals`) sum into one view
        match &rest[dot + 1..] {
            "pushes" => row.pushes += v,
            "pops" => row.pops += v,
            "steals" => row.steals += v,
            "steal_fails" => row.steal_fails += v,
            "busy_ns" => row.busy_ns += v,
            "idle_ns" => row.idle_ns += v,
            "peak_depth" => row.peak_depth = row.peak_depth.max(*v),
            _ => {}
        }
    }
    rows
}

fn best_haspl(state: &StreamState) -> Option<(f64, &[SeriesPoint])> {
    let mut best: Option<(f64, &[SeriesPoint])> = None;
    for (name, pts) in &state.series {
        if !name.ends_with("anneal.best_haspl") || pts.is_empty() {
            continue;
        }
        let lo = pts.iter().map(|p| p.y).fold(f64::MAX, f64::min);
        if best.is_none_or(|(b, _)| lo < b) {
            best = Some((lo, pts.as_slice()));
        }
    }
    best
}

/// Exchange acceptance across all `temper.*` gauge pairs.
fn exchange_totals(state: &StreamState) -> Option<(f64, f64)> {
    let att = state.gauge_sum("temper.exchanges_attempted");
    let acc = state.gauge_sum("temper.exchanges_accepted");
    match (att, acc) {
        (Some(a), Some(c)) if a > 0.0 => Some((a, c)),
        _ => None,
    }
}

/// Static text report over a stream — the `orp report` view of a
/// solver metrics file.
pub fn render_stream_report(state: &StreamState) -> String {
    let mut o = String::with_capacity(4096);
    let _ = writeln!(o, "== telemetry stream report ==");
    if !state.tags.is_empty() {
        let tags: Vec<String> = state.tags.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let _ = writeln!(o, "run: {}", tags.join(" "));
    }
    if !state.meta.is_empty() {
        let meta: Vec<String> = state.meta.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let _ = writeln!(o, "params: {}", meta.join(" "));
    }
    let _ = writeln!(
        o,
        "status: {} · last update {} · {} records (seq {}){}",
        if state.done { "done" } else { "live" },
        fmt_secs(state.t_us as f64 / 1e6),
        state.records,
        state.seq,
        if state.truncated {
            " · TRUNCATED tail skipped"
        } else {
            ""
        },
    );
    if let Some((best, pts)) = best_haspl(state) {
        let _ = writeln!(
            o,
            "best h-ASPL: {best:.6} over {} recorded points  {}",
            pts.len(),
            sparkline(pts, 40)
        );
    }
    render_eval_mix(&mut o, |n| {
        state
            .counter(n)
            .or_else(|| state.gauge_sum(n).map(|g| g as u64))
    });
    let rows = worker_rows(state);
    if !rows.is_empty() {
        let _ = writeln!(
            o,
            "workers:   {:>12} {:>12} {:>12} {:>12} {:>9} {:>10}",
            "pops", "steals", "fail-steals", "peak-depth", "busy-s", "idle-s"
        );
        for (i, r) in rows.iter().enumerate() {
            let _ = writeln!(
                o,
                "  w{i:<7} {:>12} {:>12} {:>12} {:>12} {:>9.2} {:>10.2}",
                r.pops as u64,
                r.steals as u64,
                r.steal_fails as u64,
                r.peak_depth as u64,
                r.busy_ns / 1e9,
                r.idle_ns / 1e9
            );
        }
    }
    if let Some((att, acc)) = exchange_totals(state) {
        let _ = writeln!(
            o,
            "tempering: {:.0}/{:.0} exchanges accepted ({:.1}%)",
            acc,
            att,
            100.0 * acc / att
        );
    }
    render_watchdog(
        &mut o,
        state.t_us,
        state.counter("watchdog.stalls"),
        state.gauge("watchdog.heartbeat_us"),
        state
            .events
            .iter()
            .filter(|e| e.name == "watchdog.stalled")
            .count() as u64,
    );
    if !state.counters.is_empty() {
        let _ = writeln!(o, "counters:");
        for (name, v) in &state.counters {
            let _ = writeln!(o, "  {name:<36} {v}");
        }
    }
    if !state.gauges.is_empty() {
        let _ = writeln!(o, "gauges:");
        for (name, v) in &state.gauges {
            let _ = writeln!(o, "  {name:<36} {v}");
        }
    }
    if !state.hists.is_empty() {
        let _ = writeln!(
            o,
            "histograms:                        {:>10} {:>12} {:>12} {:>12}",
            "count", "mean", "p50", "p99"
        );
        for (name, h) in &state.hists {
            let _ = writeln!(
                o,
                "  {name:<32} {:>10} {:>12.1} {:>12} {:>12}",
                h.count, h.mean, h.p50, h.p99
            );
        }
    }
    if !state.events.is_empty() {
        let show = state.events.len().min(8);
        let _ = writeln!(o, "recent events:");
        for e in &state.events[state.events.len() - show..] {
            let args: Vec<String> = e.args.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(
                o,
                "  [{}] {} {}",
                fmt_secs(e.ts_us as f64 / 1e6),
                e.name,
                args.join(" ")
            );
        }
    }
    o
}

/// Renders the eval-path mix (full vs incremental vs early-reject) if
/// the counters are present. Shared by the stream report and the
/// snapshot report.
pub(crate) fn render_eval_mix(o: &mut String, get: impl Fn(&str) -> Option<u64>) {
    let full = get("eval.full").unwrap_or(0);
    let inc = get("eval.incremental").unwrap_or(0);
    let early = get("eval.early_reject").unwrap_or(0);
    let total = full + inc + early;
    if total == 0 {
        return;
    }
    let pct = |v: u64| 100.0 * v as f64 / total as f64;
    let _ = writeln!(
        o,
        "eval path mix: full {full} ({:.1}%) · incremental {inc} ({:.1}%) · \
         early-reject {early} ({:.1}%)",
        pct(full),
        pct(inc),
        pct(early)
    );
    if let Some(rep) = get("eval.repaired") {
        let _ = writeln!(o, "  cache rows repaired: {rep}");
    }
}

/// Renders watchdog liveness diagnostics if any watchdog telemetry is
/// present.
pub(crate) fn render_watchdog(
    o: &mut String,
    now_us: u64,
    stalls: Option<u64>,
    heartbeat_us: Option<f64>,
    stall_events: u64,
) {
    if stalls.is_none() && heartbeat_us.is_none() && stall_events == 0 {
        return;
    }
    let stalls = stalls.unwrap_or(stall_events);
    let hb = heartbeat_us
        .map(|h| {
            format!(
                "last heartbeat {} ago",
                fmt_secs((now_us as f64 - h).max(0.0) / 1e6)
            )
        })
        .unwrap_or_else(|| "no heartbeat recorded".into());
    let _ = writeln!(
        o,
        "watchdog: {stalls} stall{} · {hb}",
        if stalls == 1 { "" } else { "s" }
    );
}

/// Renders the refreshing `orp watch` dashboard. `prev` is the state
/// at the previous refresh; rates are derived from the delta when it
/// is present (falling back to whole-run averages).
pub fn render_dashboard(cur: &StreamState, prev: Option<&StreamState>) -> String {
    let mut o = String::with_capacity(4096);
    let elapsed = cur.t_us as f64 / 1e6;
    let mut title: Vec<String> = cur.tags.iter().map(|(k, v)| format!("{k}={v}")).collect();
    for key in ["n", "r", "workers", "replicas", "iters"] {
        if let Some(v) = cur.meta.iter().find(|(k, _)| k == key).map(|&(_, v)| v) {
            title.push(format!("{key}={v}"));
        }
    }
    let _ = writeln!(
        o,
        "orp watch · {} · {} · up {} · seq {}{}",
        if title.is_empty() {
            "metrics stream".to_string()
        } else {
            title.join(" ")
        },
        if cur.done { "DONE" } else { "LIVE" },
        fmt_secs(elapsed),
        cur.seq,
        if cur.truncated { " · torn tail" } else { "" },
    );

    // rate window
    let dt_us = prev.map_or(cur.t_us, |p| cur.t_us.saturating_sub(p.t_us));
    let dt_s = (dt_us as f64 / 1e6).max(1e-9);
    let delta = |suffix: &str| -> Option<f64> {
        let now = cur.gauge_sum(suffix)?;
        match prev.and_then(|p| p.gauge_sum(suffix)) {
            Some(was) => Some((now - was).max(0.0)),
            None => Some(now),
        }
    };

    if let Some((best, pts)) = best_haspl(cur) {
        let _ = writeln!(o, "best h-ASPL {best:.6}  {}", sparkline(pts, 48));
    }
    let proposed = cur.gauge_sum("anneal.proposed");
    if let (Some(total_prop), Some(dp)) = (proposed, delta("anneal.proposed")) {
        let rate = dp / dt_s;
        let mut line = format!("proposals {:.0} · {rate:.1}/s", total_prop);
        if let (Some(acc), Some(da)) = (cur.gauge_sum("anneal.accepted"), delta("anneal.accepted"))
        {
            let _ = write!(
                line,
                " · accepted {:.1}% (window {:.1}%)",
                100.0 * acc / total_prop.max(1.0),
                100.0 * da / dp.max(1.0)
            );
        }
        let _ = writeln!(o, "{line}");
    }
    // progress + ETA
    let iter = cur.gauge_sum("progress.iter");
    let total = cur.gauge_sum("progress.total");
    if let (Some(i), Some(t)) = (iter, total) {
        if t > 0.0 {
            let frac = (i / t).clamp(0.0, 1.0);
            let di = delta("progress.iter").unwrap_or(0.0);
            let eta = if di > 0.0 {
                fmt_secs((t - i) * dt_s / di)
            } else if i > 0.0 {
                fmt_secs((t - i) * elapsed / i)
            } else {
                "—".into()
            };
            let _ = writeln!(
                o,
                "progress [{}] {:.1}%  iter {:.0}/{:.0}  ETA {eta}",
                bar(frac, 32),
                100.0 * frac,
                i,
                t
            );
        }
    }
    render_eval_mix(&mut o, |n| {
        cur.counter(n)
            .or_else(|| cur.gauge_sum(n).map(|g| g as u64))
    });
    // cache line
    if let Some(bytes) = cur.gauge_sum("cache.resident_bytes") {
        let codec = match cur
            .gauge("cache.packed")
            .or_else(|| cur.gauge_sum("cache.packed"))
        {
            Some(v) if v > 0.0 => "packed",
            Some(_) => "dense",
            None => "?",
        };
        let mut line = format!("cache: {codec} · {} resident", fmt_bytes(bytes));
        if let Some(rep) = cur.gauge_sum("cache.rows_repaired") {
            let _ = write!(line, " · rows repaired {:.0}", rep);
        }
        if let Some(sw) = cur.gauge_sum("cache.rows_swept") {
            let _ = write!(line, " / swept {:.0}", sw);
        }
        let _ = writeln!(o, "{line}");
    }
    // workers
    let rows = worker_rows(cur);
    if !rows.is_empty() {
        let prev_rows = prev.map(worker_rows).unwrap_or_default();
        let _ = writeln!(o, "workers ({}):", rows.len());
        for (i, r) in rows.iter().enumerate() {
            let p = prev_rows.get(i).cloned().unwrap_or_default();
            let (db, di) = (r.busy_ns - p.busy_ns, r.idle_ns - p.idle_ns);
            let (tb, ti) = if db + di > 0.0 {
                (db, di)
            } else {
                (r.busy_ns, r.idle_ns)
            };
            let util = if tb + ti > 0.0 { tb / (tb + ti) } else { 0.0 };
            let _ = writeln!(
                o,
                "  w{i:<2} {} {:>5.1}%  pops {:>9}  steals {:>7} (fail {:>7})  peak {:>4}",
                bar(util, 20),
                100.0 * util,
                r.pops as u64,
                r.steals as u64,
                r.steal_fails as u64,
                r.peak_depth as u64
            );
        }
    }
    // tempering
    if let Some((att, acc)) = exchange_totals(cur) {
        let mut temps: Vec<(usize, f64)> = Vec::new();
        for (name, v) in &cur.gauges {
            if let Some(rest) = name.strip_prefix("temper.r") {
                if let Some(idx) = rest
                    .strip_suffix(".temp")
                    .and_then(|s| s.parse::<usize>().ok())
                {
                    temps.push((idx, *v));
                }
            }
        }
        temps.sort_by_key(|&(i, _)| i);
        let mut line = format!(
            "tempering: {:.0}/{:.0} exchanges accepted ({:.1}%)",
            acc,
            att,
            100.0 * acc / att
        );
        if let (Some(first), Some(last)) = (temps.first(), temps.last()) {
            let _ = write!(
                line,
                " · {} replicas · T {:.3e}…{:.3e}",
                temps.len(),
                first.1,
                last.1
            );
        }
        let _ = writeln!(o, "{line}");
    }
    render_watchdog(
        &mut o,
        cur.t_us,
        cur.counter("watchdog.stalls"),
        cur.gauge("watchdog.heartbeat_us"),
        cur.events
            .iter()
            .filter(|e| e.name == "watchdog.stalled")
            .count() as u64,
    );
    // netsim line (when watching a simulation stream)
    if let Some(depth) = cur.gauge("sim.event_queue_depth") {
        let mut line = format!("sim: queue depth {depth:.0}");
        if let (Some(ev), Some(de)) = (
            cur.gauge("sim.events_processed"),
            delta("sim.events_processed"),
        ) {
            let _ = write!(line, " · events {ev:.0} ({:.0}/s)", de / dt_s);
        }
        if let Some(fl) = cur.gauge("sim.flows_done") {
            let _ = write!(line, " · flows done {fl:.0}");
        }
        let _ = writeln!(o, "{line}");
        // queue health: live depth vs lazily-cancelled heap entries the
        // slab queue still carries, and what compaction reclaimed
        if let Some(tombs) = cur.gauge("sim.queue_tombstones") {
            let ratio = cur.gauge("sim.queue_tombstone_ratio").unwrap_or(0.0);
            let mut line = format!(
                "sim queue: live {depth:.0} · tombstones {tombs:.0} ({:.1}%)",
                100.0 * ratio
            );
            if let Some(c) = cur.gauge("sim.events_compacted") {
                let _ = write!(line, " · compacted {c:.0}");
            }
            let _ = writeln!(o, "{line}");
        }
        // parallel staging lanes (present when running with --workers)
        let mut lanes: Vec<(usize, f64, f64)> = Vec::new();
        for (name, v) in &cur.gauges {
            if let Some(rest) = name.strip_prefix("sim.w") {
                if let Some(k) = rest
                    .strip_suffix(".staged")
                    .and_then(|s| s.parse::<usize>().ok())
                {
                    let busy = cur.gauge(&format!("sim.w{k}.busy_ms")).unwrap_or(0.0);
                    lanes.push((k, *v, busy));
                }
            }
        }
        if !lanes.is_empty() {
            lanes.sort_by_key(|&(k, _, _)| k);
            let _ = writeln!(o, "sim workers ({}):", lanes.len());
            for (k, staged, busy) in lanes {
                let rate = delta(&format!("sim.w{k}.staged")).unwrap_or(0.0) / dt_s;
                let _ = writeln!(
                    o,
                    "  w{k:<2} staged {staged:>9.0} ({rate:>7.0}/s)  busy {busy:>8.1} ms"
                );
            }
        }
    }
    // recent events footer
    if !cur.events.is_empty() {
        let show = cur.events.len().min(4);
        for e in &cur.events[cur.events.len() - show..] {
            let args: Vec<String> = e
                .args
                .iter()
                .take(4)
                .map(|(k, v)| format!("{k}={v:.4}"))
                .collect();
            let _ = writeln!(
                o,
                "  [{:>9}] {} {}",
                fmt_secs(e.ts_us as f64 / 1e6),
                e.name,
                args.join(" ")
            );
        }
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::recorder::{ObsConfig, Recorder};

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("orp-obs-stream-{}-{name}", std::process::id()))
    }

    fn populated_recorder() -> Recorder {
        let rec = Recorder::enabled();
        rec.incr("eval.full", 2);
        rec.incr("eval.incremental", 90);
        rec.incr("eval.early_reject", 8);
        rec.gauge("anneal.proposed", 100.0);
        rec.gauge("anneal.accepted", 40.0);
        rec.gauge_dyn("pool.w0.busy_ns", 9e8);
        rec.gauge_dyn("pool.w0.idle_ns", 1e8);
        rec.gauge_dyn("pool.w0.steals", 17.0);
        rec.record("anneal.eval_ns", 52_000);
        rec.series("anneal.best_haspl", 0.0, 4.5);
        rec.series("anneal.best_haspl", 50.0, 4.25);
        rec.emit(Event::Best {
            iter: 50,
            value: 4.25,
        });
        rec
    }

    #[test]
    fn stream_roundtrips_every_record_kind() {
        let path = tmp("roundtrip.jsonl");
        let sink = StreamSink::with_interval(&path, Duration::from_secs(0)).unwrap();
        sink.meta(&[("cmd", "solve")], &[("n", 64.0), ("r", 4.0)]);
        let rec = populated_recorder();
        assert!(sink.maybe_flush(&rec, || {}));
        rec.series("anneal.best_haspl", 80.0, 4.0);
        rec.emit(Event::Mark {
            name: "round",
            value: 1.0,
        });
        sink.finish(&rec, || rec.gauge("progress.iter", 100.0));

        let text = std::fs::read_to_string(&path).unwrap();
        for kind in [
            "open", "meta", "counters", "gauges", "hists", "series", "events", "done",
        ] {
            assert!(
                text.contains(&format!("\"k\":\"{kind}\"")),
                "missing record kind {kind} in:\n{text}"
            );
        }
        let state = parse_stream(&text).expect("parses");
        assert!(state.done);
        assert!(!state.truncated);
        assert_eq!(state.version, STREAM_VERSION);
        assert_eq!(state.tags, vec![("cmd".to_string(), "solve".to_string())]);
        assert_eq!(state.counter("eval.incremental"), Some(90));
        assert_eq!(state.gauge("pool.w0.steals"), Some(17.0));
        assert_eq!(state.gauge("progress.iter"), Some(100.0));
        let h = state
            .hists
            .iter()
            .find(|(n, _)| n == "anneal.eval_ns")
            .map(|(_, h)| h)
            .unwrap();
        assert_eq!(h.count, 1);
        // series delta: 2 points in flush one, 1 more at finish
        assert_eq!(state.series("anneal.best_haspl").unwrap().len(), 3);
        assert!(state.events.iter().any(|e| e.name == "anneal.best"));
        assert!(state.events.iter().any(|e| e.name == "round"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_final_line_is_tolerated() {
        let path = tmp("torn.jsonl");
        let sink = StreamSink::with_interval(&path, Duration::from_secs(0)).unwrap();
        let rec = populated_recorder();
        assert!(sink.maybe_flush(&rec, || {}));
        let mut text = std::fs::read_to_string(&path).unwrap();
        let full = parse_stream(&text).unwrap();
        assert!(full.counter("eval.full").is_some());
        // simulate a crash mid-append: chop the file mid final line
        text.truncate(text.len() - 7);
        let state = parse_stream(&text).expect("torn tail tolerated");
        assert!(state.truncated);
        assert!(!state.done);
        // a torn line *before* the end is corruption, not truncation
        let mut lines: Vec<&str> = text.lines().collect();
        let torn = lines.len() - 1;
        lines.insert(torn - 1, "{\"k\":\"gau");
        assert!(parse_stream(&lines.join("\n")).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn follower_tails_incrementally_and_survives_partial_lines() {
        let path = tmp("follow.jsonl");
        let sink = StreamSink::with_interval(&path, Duration::from_secs(0)).unwrap();
        let rec = populated_recorder();
        let mut follower = StreamFollower::new(&path);
        assert!(follower.poll().unwrap()); // open record
        assert_eq!(follower.state.version, STREAM_VERSION);
        sink.maybe_flush(&rec, || {});
        assert!(follower.poll().unwrap());
        assert_eq!(follower.state.counter("eval.full"), Some(2));
        assert!(!follower.poll().unwrap()); // no growth
                                            // partial line: append half a record manually
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"{\"k\":\"gauges\",\"seq\":9,\"t_us\":5,\"da")
            .unwrap();
        drop(f);
        let before = follower.state.records;
        follower.poll().unwrap();
        assert_eq!(follower.state.records, before); // carry held, nothing applied
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"ta\":{\"x\":1.5}}\n").unwrap();
        drop(f);
        assert!(follower.poll().unwrap());
        assert_eq!(follower.state.gauge("x"), Some(1.5));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn series_decimation_mid_stream_resets_cleanly() {
        let path = tmp("reset.jsonl");
        let sink = StreamSink::with_interval(&path, Duration::from_secs(0)).unwrap();
        let rec = Recorder::with_config(ObsConfig {
            max_series_points: 8,
            ..ObsConfig::default()
        });
        for i in 0..6 {
            rec.series("s", i as f64, i as f64);
        }
        sink.maybe_flush(&rec, || {});
        for i in 6..100 {
            rec.series("s", i as f64, i as f64);
        }
        sink.finish(&rec, || {});
        let state = read_stream(&path).unwrap();
        let pts = state.series("s").unwrap();
        // decimated but endpoints survive, and no duplicated prefix
        assert!(pts.iter().any(|p| p.x == 0.0));
        assert!(pts.iter().any(|p| p.x == 99.0));
        assert!(pts.len() <= 8 + 3 + 6);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn is_stream_sniffs_first_line() {
        assert!(is_stream("{\"k\":\"open\",\"v\":1}\n"));
        assert!(!is_stream("{\"displayTimeUnit\": \"ms\"}"));
        assert!(!is_stream(""));
    }

    #[test]
    fn renderers_cover_populated_state() {
        let path = tmp("render.jsonl");
        let sink = StreamSink::with_interval(&path, Duration::from_secs(0)).unwrap();
        sink.meta(&[("cmd", "solve")], &[("n", 64.0)]);
        let rec = populated_recorder();
        rec.gauge("progress.iter", 40.0);
        rec.gauge("progress.total", 100.0);
        rec.gauge("temper.exchanges_attempted", 10.0);
        rec.gauge("temper.exchanges_accepted", 4.0);
        rec.gauge_dyn("temper.r0.temp", 0.9);
        rec.gauge_dyn("temper.r1.temp", 0.1);
        rec.gauge("cache.resident_bytes", 1.5e9);
        rec.gauge("cache.packed", 1.0);
        rec.gauge("watchdog.heartbeat_us", 1.0);
        rec.incr("watchdog.stalls", 1);
        sink.finish(&rec, || {});
        let state = read_stream(&path).unwrap();

        let report = render_stream_report(&state);
        for needle in [
            "telemetry stream report",
            "eval path mix",
            "workers",
            "tempering",
            "watchdog: 1 stall",
            "best h-ASPL",
        ] {
            assert!(
                report.contains(needle),
                "report missing {needle:?}:\n{report}"
            );
        }
        let dash = render_dashboard(&state, None);
        for needle in ["orp watch", "DONE", "w0", "progress", "exchanges accepted"] {
            assert!(
                dash.contains(needle),
                "dashboard missing {needle:?}:\n{dash}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disabled_recorder_streams_nothing() {
        let path = tmp("disabled.jsonl");
        let sink = StreamSink::with_interval(&path, Duration::from_secs(0)).unwrap();
        let rec = Recorder::disabled();
        assert!(!sink.maybe_flush(&rec, || panic!("publish must not run")));
        sink.finish(&rec, || panic!("publish must not run"));
        let state = read_stream(&path).unwrap();
        assert_eq!(state.records, 1); // just the open record
        let _ = std::fs::remove_file(&path);
    }
}
