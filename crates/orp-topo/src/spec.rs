//! The [`Topology`] trait: a family of switch fabrics that can be
//! instantiated as host-switch graphs and populated with hosts.

use crate::attach::{attach_hosts, AttachOrder};
use orp_core::error::GraphError;
use orp_core::graph::HostSwitchGraph;

/// A parametric interconnection topology (torus, dragonfly, fat-tree, …)
/// viewed as a host-switch graph generator.
pub trait Topology {
    /// Human-readable name including the key parameters.
    fn name(&self) -> String;

    /// Ports per switch.
    fn radix(&self) -> u32;

    /// Number of switches `m`.
    fn num_switches(&self) -> u32;

    /// Maximum number of connectable hosts.
    fn max_hosts(&self) -> u32;

    /// Builds the switch fabric (no hosts attached).
    fn build_fabric(&self) -> Result<HostSwitchGraph, GraphError>;

    /// Per-switch host capacity; defaults to the free ports of the fabric.
    /// Indirect networks (e.g. the fat-tree) override this to restrict
    /// hosts to specific layers.
    fn host_capacity(&self, fabric: &HostSwitchGraph) -> Vec<u32> {
        (0..fabric.num_switches())
            .map(|s| fabric.free_ports(s))
            .collect()
    }

    /// Builds the fabric and attaches `n` hosts in the given order
    /// (§6.2.1: conventional topologies attach sequentially).
    fn build_with_hosts(&self, n: u32, order: AttachOrder) -> Result<HostSwitchGraph, GraphError> {
        if n > self.max_hosts() {
            return Err(GraphError::InvalidParameters(format!(
                "{} holds at most {} hosts, asked {n}",
                self.name(),
                self.max_hosts()
            )));
        }
        let mut g = self.build_fabric()?;
        let cap = self.host_capacity(&g);
        attach_hosts(&mut g, &cap, n, order)?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::Torus;

    #[test]
    fn build_with_hosts_respects_max() {
        let t = Torus::paper_5d();
        assert!(t.build_with_hosts(1216, AttachOrder::Sequential).is_err());
        let g = t.build_with_hosts(1024, AttachOrder::Sequential).unwrap();
        assert_eq!(g.num_hosts(), 1024);
        g.validate().unwrap();
    }
}
