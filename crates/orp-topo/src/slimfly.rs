//! The Slim Fly (Besta & Hoefler, SC'14) — the paper's reference [2] and
//! the strongest low-diameter conventional design: a diameter-2
//! McKay–Miller–Širáň (MMS) graph used as the switch fabric.
//!
//! Construction (for prime `q ≡ 1 (mod 4)`): two groups of `q²` switches,
//! `(0, x, y)` and `(1, m, c)` with coordinates in `F_q`.
//!
//! * `(0, x, y) ~ (0, x, y')` iff `y − y'` is a nonzero quadratic
//!   residue,
//! * `(1, m, c) ~ (1, m, c')` iff `c − c'` is a non-residue,
//! * `(0, x, y) ~ (1, m, c)` iff `y = m·x + c`.
//!
//! Network radix `k = (3q − 1)/2`, `2q²` switches, diameter 2. With
//! `q = 5` this is the Hoffman–Singleton graph — a Moore graph, which
//! our tests exploit.

use crate::spec::Topology;
use orp_core::error::GraphError;
use orp_core::graph::{HostSwitchGraph, Switch};

/// A Slim Fly over the prime field `F_q` (`q` prime, `q ≡ 1 mod 4`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlimFly {
    /// The field size (5, 13, 17, 29, …).
    pub q: u32,
    /// Switch radix; must be at least the network degree `(3q − 1)/2`.
    pub radix: u32,
}

impl SlimFly {
    /// The MMS network degree `(3q − 1)/2`.
    pub fn network_degree(&self) -> u32 {
        (3 * self.q - 1) / 2
    }

    /// A Slim Fly with the Besta–Hoefler balanced host count: ⌈k/2⌉
    /// extra ports per switch for hosts.
    pub fn balanced(q: u32) -> Self {
        let k = (3 * q - 1) / 2;
        Self {
            q,
            radix: k + k.div_ceil(2),
        }
    }

    fn check(&self) -> Result<(), GraphError> {
        let q = self.q;
        if q < 5 || q % 4 != 1 || !is_prime(q) {
            return Err(GraphError::InvalidParameters(format!(
                "Slim Fly needs a prime q ≡ 1 (mod 4), got {q}"
            )));
        }
        if self.radix < self.network_degree() {
            return Err(GraphError::InvalidParameters(format!(
                "radix {} below the MMS degree {}",
                self.radix,
                self.network_degree()
            )));
        }
        Ok(())
    }

    /// Switch id of `(group, a, b)`.
    fn switch(&self, group: u32, a: u32, b: u32) -> Switch {
        group * self.q * self.q + a * self.q + b
    }
}

fn is_prime(n: u32) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2u32;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

impl Topology for SlimFly {
    fn name(&self) -> String {
        format!("slim fly (q={}, r={})", self.q, self.radix)
    }

    fn radix(&self) -> u32 {
        self.radix
    }

    fn num_switches(&self) -> u32 {
        2 * self.q * self.q
    }

    fn max_hosts(&self) -> u32 {
        (self.radix - self.network_degree()) * self.num_switches()
    }

    fn build_fabric(&self) -> Result<HostSwitchGraph, GraphError> {
        self.check()?;
        let q = self.q;
        let mut g = HostSwitchGraph::new(self.num_switches(), self.radix)?;
        // nonzero quadratic residues of F_q
        let mut residue = vec![false; q as usize];
        for v in 1..q {
            residue[((v * v) % q) as usize] = true;
        }
        // intra-group edges
        for x in 0..q {
            for y in 0..q {
                for y2 in (y + 1)..q {
                    let diff = ((y2 + q - y) % q) as usize;
                    // group 0 connects on residues, group 1 on non-residues
                    if residue[diff] {
                        g.add_link(self.switch(0, x, y), self.switch(0, x, y2))?;
                    } else {
                        g.add_link(self.switch(1, x, y), self.switch(1, x, y2))?;
                    }
                }
            }
        }
        // bipartite edges: y = m·x + c
        for x in 0..q {
            for y in 0..q {
                for m in 0..q {
                    let c = (y + q * q - (m * x) % q) % q;
                    g.add_link(self.switch(0, x, y), self.switch(1, m, c))?;
                }
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attach::AttachOrder;
    use orp_core::metrics::path_metrics;

    #[test]
    fn q5_is_the_hoffman_singleton_graph() {
        // 50 vertices, 7-regular, diameter 2, girth 5 — the unique Moore
        // graph of degree 7.
        let sf = SlimFly { q: 5, radix: 7 };
        let g = sf.build_fabric().unwrap();
        assert_eq!(g.num_switches(), 50);
        assert!((0..50).all(|s| g.neighbors(s).len() == 7));
        assert_eq!(g.num_links(), 50 * 7 / 2);
        for s in 0..50 {
            let d = g.switch_distances(s);
            assert_eq!(d.iter().copied().max().unwrap(), 2, "ecc from {s}");
            // Moore graph: exactly 7 at distance 1, 42 at distance 2
            assert_eq!(d.iter().filter(|&&x| x == 1).count(), 7);
            assert_eq!(d.iter().filter(|&&x| x == 2).count(), 42);
        }
    }

    #[test]
    fn q13_diameter_two() {
        let sf = SlimFly { q: 13, radix: 19 };
        let g = sf.build_fabric().unwrap();
        assert_eq!(g.num_switches(), 338);
        assert_eq!(sf.network_degree(), 19);
        assert!((0..338).all(|s| g.neighbors(s).len() == 19));
        let d = g.switch_distances(0);
        assert_eq!(d.iter().copied().max().unwrap(), 2);
    }

    #[test]
    fn balanced_instance_hosts() {
        let sf = SlimFly::balanced(5);
        // k = 7, hosts per switch = 4, radix 11
        assert_eq!(sf.radix, 11);
        assert_eq!(sf.max_hosts(), 200);
        let g = sf.build_with_hosts(100, AttachOrder::RoundRobin).unwrap();
        let pm = path_metrics(&g).unwrap();
        assert_eq!(pm.diameter, 4); // 2 switch hops + 2
        assert!(pm.haspl < 4.0);
    }

    #[test]
    fn rejects_bad_fields() {
        assert!(SlimFly { q: 7, radix: 20 }.build_fabric().is_err()); // 7 ≡ 3 mod 4
        assert!(SlimFly { q: 9, radix: 20 }.build_fabric().is_err()); // not prime
        assert!(SlimFly { q: 5, radix: 6 }.build_fabric().is_err()); // radix too small
    }

    #[test]
    fn slim_fly_beats_dragonfly_haspl_at_similar_size() {
        // q=13: 338 switches r=29 balanced vs dragonfly a=8: 264 switches
        let sf = SlimFly::balanced(13);
        let g = sf.build_with_hosts(1024, AttachOrder::RoundRobin).unwrap();
        let h_sf = path_metrics(&g).unwrap().haspl;
        let df = crate::dragonfly::Dragonfly::paper_a8()
            .build_with_hosts(1024, AttachOrder::Sequential)
            .unwrap();
        let h_df = path_metrics(&df).unwrap().haspl;
        assert!(h_sf < h_df, "slim fly {h_sf} vs dragonfly {h_df}");
    }
}
