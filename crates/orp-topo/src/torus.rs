//! The K-ary N-torus of §6.1.1: all switches form a `K`-dimensional torus
//! with `N` switches per dimension; each switch spends `2K` ports on the
//! torus (or `K` ports when `N = 2`) and can host up to `r − 2K` hosts.
//!
//! Formulae (3): `m = N^K`, `n ≤ (r − 2K)·N^K`, `r > 2K`.

use crate::spec::Topology;
use orp_core::error::GraphError;
use orp_core::graph::{HostSwitchGraph, Switch};

/// A `dim`-dimensional torus with `base` switches per dimension
/// (the paper's `K`-ary `N`-torus with `K = dim`, `N = base`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Torus {
    /// Number of dimensions (the paper's `K`).
    pub dim: u32,
    /// Switches per dimension (the paper's `N`).
    pub base: u32,
    /// Switch radix `r`; must exceed `2·dim`.
    pub radix: u32,
}

impl Torus {
    /// The 5-D torus used for the Fig. 9 comparison: `K = 5`, `N = 3`,
    /// `r = 15` (Sequoia-like; `m = 243`, `n ≤ 1215`).
    pub fn paper_5d() -> Self {
        Self {
            dim: 5,
            base: 3,
            radix: 15,
        }
    }

    /// A binary hypercube of the given dimension (a base-2 torus: the
    /// 1970s Cosmic-Cube-era topology of the paper's history section).
    pub fn hypercube(dim: u32, radix: u32) -> Self {
        Self {
            dim,
            base: 2,
            radix,
        }
    }

    /// Switch address → id (`Σ aᵢ·Nⁱ`).
    fn index(&self, addr: &[u32]) -> Switch {
        let mut id = 0u64;
        for &a in addr.iter().rev() {
            id = id * self.base as u64 + a as u64;
        }
        id as Switch
    }

    /// Validates the parameters (3c): `r > 2K`, `N ≥ 2`, `K ≥ 1`.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.dim == 0 || self.base < 2 {
            return Err(GraphError::InvalidParameters(format!(
                "torus needs dim >= 1 and base >= 2, got K={} N={}",
                self.dim, self.base
            )));
        }
        let ports = self.torus_ports();
        if self.radix <= ports {
            return Err(GraphError::InvalidParameters(format!(
                "radix {} must exceed the {ports} torus ports",
                self.radix
            )));
        }
        if (self.base as u64).pow(self.dim) > u32::MAX as u64 {
            return Err(GraphError::InvalidParameters("torus too large".into()));
        }
        Ok(())
    }

    /// Ports each switch spends on torus links: `2K`, except `K` when
    /// `N = 2` (both ring directions reach the same switch).
    pub fn torus_ports(&self) -> u32 {
        if self.base == 2 {
            self.dim
        } else {
            2 * self.dim
        }
    }
}

impl Topology for Torus {
    fn name(&self) -> String {
        format!("{}-D {}-ary torus (r={})", self.dim, self.base, self.radix)
    }

    fn radix(&self) -> u32 {
        self.radix
    }

    fn num_switches(&self) -> u32 {
        (self.base as u64).pow(self.dim) as u32
    }

    fn max_hosts(&self) -> u32 {
        (self.radix - self.torus_ports()) * self.num_switches()
    }

    fn build_fabric(&self) -> Result<HostSwitchGraph, GraphError> {
        self.validate()?;
        let m = self.num_switches();
        let mut g = HostSwitchGraph::new(m, self.radix)?;
        let mut addr = vec![0u32; self.dim as usize];
        for s in 0..m {
            // decode address of s
            let mut rest = s;
            for a in addr.iter_mut() {
                *a = rest % self.base;
                rest /= self.base;
            }
            for d in 0..self.dim as usize {
                let orig = addr[d];
                let up = (orig + 1) % self.base;
                addr[d] = up;
                let t = self.index(&addr);
                addr[d] = orig;
                // add each undirected edge once
                if !g.has_link(s, t) {
                    g.add_link(s, t)?;
                }
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orp_core::metrics::path_metrics;

    #[test]
    fn paper_5d_parameters() {
        let t = Torus::paper_5d();
        assert_eq!(t.num_switches(), 243);
        assert_eq!(t.max_hosts(), 1215);
        assert_eq!(t.radix(), 15);
    }

    #[test]
    fn fabric_is_2k_regular() {
        let t = Torus {
            dim: 3,
            base: 4,
            radix: 8,
        };
        let g = t.build_fabric().unwrap();
        assert_eq!(g.num_switches(), 64);
        assert!((0..64).all(|s| g.neighbors(s).len() == 6));
        assert_eq!(g.num_links(), 64 * 6 / 2);
        assert!(g.is_connected());
    }

    #[test]
    fn base_two_collapses_to_hypercube() {
        let t = Torus {
            dim: 4,
            base: 2,
            radix: 6,
        };
        let g = t.build_fabric().unwrap();
        assert_eq!(g.num_switches(), 16);
        // each switch has 4 distinct neighbours (±1 mod 2 coincide)
        assert!((0..16).all(|s| g.neighbors(s).len() == 4));
        assert!(g.is_connected());
    }

    #[test]
    fn ring_distances() {
        // 1-D 6-ary torus is a 6-ring.
        let t = Torus {
            dim: 1,
            base: 6,
            radix: 4,
        };
        let g = t.build_fabric().unwrap();
        let d = g.switch_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn torus_diameter_with_hosts() {
        // 2-D 3-ary torus, 1 host per switch: switch diameter = 2·⌊3/2⌋ = 2,
        // host diameter = 4.
        let t = Torus {
            dim: 2,
            base: 3,
            radix: 6,
        };
        let mut g = t.build_fabric().unwrap();
        for s in 0..9 {
            g.attach_host(s).unwrap();
        }
        let m = path_metrics(&g).unwrap();
        assert_eq!(m.diameter, 4);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Torus {
            dim: 5,
            base: 3,
            radix: 10
        }
        .build_fabric()
        .is_err());
        assert!(Torus {
            dim: 0,
            base: 3,
            radix: 10
        }
        .build_fabric()
        .is_err());
        assert!(Torus {
            dim: 2,
            base: 1,
            radix: 10
        }
        .build_fabric()
        .is_err());
    }
}
