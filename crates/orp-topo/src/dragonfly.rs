//! The dragonfly of §6.1.2 (Kim et al., ISCA 2008) under the paper's
//! balanced specialisation `a = 2h = 2p` and `g = a·h + 1`:
//!
//! * every group is an `a`-switch clique,
//! * exactly one global link between each pair of groups,
//! * each switch owns `h = a/2` global ports and `p = a/2` host ports,
//! * radix (4a): `r = (a − 1) + h + p = 2a − 1`,
//! * switches (4b): `m = a(a²/2 + 1)`, hosts (4c): `n ≤ p·m`.

use crate::spec::Topology;
use orp_core::error::GraphError;
use orp_core::graph::{HostSwitchGraph, Switch};

/// A balanced dragonfly parameterised by the group size `a` (must be even).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dragonfly {
    /// Switches per group (the paper's `a`).
    pub a: u32,
}

impl Dragonfly {
    /// The Fig. 10 instance: `a = 8` → `m = 264`, `r = 15`, `n ≤ 1056`.
    pub fn paper_a8() -> Self {
        Self { a: 8 }
    }

    /// Global ports per switch `h = a/2`.
    pub fn h(&self) -> u32 {
        self.a / 2
    }

    /// Host ports per switch `p = a/2`.
    pub fn p(&self) -> u32 {
        self.a / 2
    }

    /// Number of groups `g = a·h + 1`.
    pub fn groups(&self) -> u32 {
        self.a * self.h() + 1
    }

    fn check(&self) -> Result<(), GraphError> {
        if self.a < 2 || !self.a.is_multiple_of(2) {
            return Err(GraphError::InvalidParameters(format!(
                "dragonfly group size a = {} must be even and >= 2",
                self.a
            )));
        }
        Ok(())
    }

    /// Switch id of group `grp`, local index `idx`.
    fn switch(&self, grp: u32, idx: u32) -> Switch {
        grp * self.a + idx
    }
}

impl Topology for Dragonfly {
    fn name(&self) -> String {
        format!(
            "dragonfly (a={}, g={}, r={})",
            self.a,
            self.groups(),
            self.radix()
        )
    }

    fn radix(&self) -> u32 {
        2 * self.a - 1
    }

    fn num_switches(&self) -> u32 {
        self.a * self.groups()
    }

    fn max_hosts(&self) -> u32 {
        self.p() * self.num_switches()
    }

    fn build_fabric(&self) -> Result<HostSwitchGraph, GraphError> {
        self.check()?;
        let g = self.groups();
        let mut fab = HostSwitchGraph::new(self.num_switches(), self.radix())?;
        // intra-group cliques
        for grp in 0..g {
            for i in 0..self.a {
                for j in (i + 1)..self.a {
                    fab.add_link(self.switch(grp, i), self.switch(grp, j))?;
                }
            }
        }
        // one global link per group pair: from group u, peer v (v ≠ u) is
        // handled by local switch ⌊pos/h⌋ where pos is v's rank among u's
        // peers — each switch gets exactly h global links.
        let h = self.h();
        for u in 0..g {
            for v in (u + 1)..g {
                let pos_u = v - 1; // v > u ⇒ rank of v among u's peers is v−1
                let pos_v = u; // u < v ⇒ rank of u among v's peers is u
                let su = self.switch(u, pos_u / h);
                let sv = self.switch(v, pos_v / h);
                fab.add_link(su, sv)?;
            }
        }
        Ok(fab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attach::AttachOrder;
    use orp_core::metrics::path_metrics;

    #[test]
    fn paper_a8_parameters() {
        let d = Dragonfly::paper_a8();
        assert_eq!(d.groups(), 33);
        assert_eq!(d.num_switches(), 264);
        assert_eq!(d.radix(), 15);
        assert_eq!(d.max_hosts(), 1056);
    }

    #[test]
    fn fabric_structure() {
        let d = Dragonfly { a: 4 };
        let g = d.build_fabric().unwrap();
        // a=4: h=p=2, groups=9, m=36, r=7
        assert_eq!(g.num_switches(), 36);
        // every switch: (a-1)=3 local + h=2 global links
        assert!((0..36).all(|s| g.neighbors(s).len() == 5));
        // total links: 9 cliques of 6 + C(9,2)=36 global
        assert_eq!(g.num_links(), 9 * 6 + 36);
        assert!(g.is_connected());
        // host ports left: r − 5 = 2 = p
        assert!((0..36).all(|s| g.free_ports(s) == 2));
    }

    #[test]
    fn switch_diameter_is_three() {
        // local → global → local: at most 3 switch hops.
        let d = Dragonfly { a: 4 };
        let g = d.build_fabric().unwrap();
        for s in 0..g.num_switches() {
            let dmax = g.switch_distances(s).into_iter().max().unwrap();
            assert!(dmax <= 3, "ecc from {s} is {dmax}");
        }
    }

    #[test]
    fn host_diameter_is_five() {
        let d = Dragonfly { a: 4 };
        let g = d
            .build_with_hosts(d.max_hosts(), AttachOrder::Sequential)
            .unwrap();
        let m = path_metrics(&g).unwrap();
        assert_eq!(m.diameter, 5);
        assert!(m.haspl < 5.0);
    }

    #[test]
    fn odd_group_size_rejected() {
        assert!(Dragonfly { a: 5 }.build_fabric().is_err());
    }

    #[test]
    fn paper_a8_builds() {
        let d = Dragonfly::paper_a8();
        let g = d.build_fabric().unwrap();
        assert!(g.is_connected());
        assert!((0..264).all(|s| g.free_ports(s) == 4));
    }
}
