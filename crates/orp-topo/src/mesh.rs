//! The K-ary N-mesh: the torus of §6.1.1 without wraparound links — the
//! 2-D/3-D workhorse of 1980s machines the paper's history section
//! recalls. Boundary switches keep more ports free for hosts, which
//! makes the mesh a natural test of non-uniform host capacity.

use crate::spec::Topology;
use orp_core::error::GraphError;
use orp_core::graph::{HostSwitchGraph, Switch};

/// A `dim`-dimensional mesh with `base` switches per dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    /// Number of dimensions.
    pub dim: u32,
    /// Switches per dimension.
    pub base: u32,
    /// Switch radix; must exceed `2·dim` (interior switches use that
    /// many mesh ports).
    pub radix: u32,
}

impl Mesh {
    fn index(&self, addr: &[u32]) -> Switch {
        let mut id = 0u64;
        for &a in addr.iter().rev() {
            id = id * self.base as u64 + a as u64;
        }
        id as Switch
    }

    fn check(&self) -> Result<(), GraphError> {
        if self.dim == 0 || self.base < 2 {
            return Err(GraphError::InvalidParameters(format!(
                "mesh needs dim >= 1 and base >= 2, got K={} N={}",
                self.dim, self.base
            )));
        }
        if self.radix <= 2 * self.dim {
            return Err(GraphError::InvalidParameters(format!(
                "radix {} must exceed the {} mesh ports of interior switches",
                self.radix,
                2 * self.dim
            )));
        }
        if (self.base as u64).pow(self.dim) > u32::MAX as u64 {
            return Err(GraphError::InvalidParameters("mesh too large".into()));
        }
        Ok(())
    }
}

impl Topology for Mesh {
    fn name(&self) -> String {
        format!("{}-D {}-ary mesh (r={})", self.dim, self.base, self.radix)
    }

    fn radix(&self) -> u32 {
        self.radix
    }

    fn num_switches(&self) -> u32 {
        (self.base as u64).pow(self.dim) as u32
    }

    fn max_hosts(&self) -> u32 {
        // per-switch capacity depends on boundary position; sum exactly
        let m = self.num_switches();
        let mut total = 0u32;
        let mut addr = vec![0u32; self.dim as usize];
        for s in 0..m {
            let mut rest = s;
            for a in addr.iter_mut() {
                *a = rest % self.base;
                rest /= self.base;
            }
            let mesh_ports: u32 = addr
                .iter()
                .map(|&a| u32::from(a > 0) + u32::from(a + 1 < self.base))
                .sum();
            total += self.radix - mesh_ports;
        }
        total
    }

    fn build_fabric(&self) -> Result<HostSwitchGraph, GraphError> {
        self.check()?;
        let m = self.num_switches();
        let mut g = HostSwitchGraph::new(m, self.radix)?;
        let mut addr = vec![0u32; self.dim as usize];
        for s in 0..m {
            let mut rest = s;
            for a in addr.iter_mut() {
                *a = rest % self.base;
                rest /= self.base;
            }
            for d in 0..self.dim as usize {
                if addr[d] + 1 < self.base {
                    let orig = addr[d];
                    addr[d] = orig + 1;
                    let t = self.index(&addr);
                    addr[d] = orig;
                    g.add_link(s, t)?;
                }
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attach::AttachOrder;
    use orp_core::metrics::path_metrics;

    #[test]
    fn mesh_link_count() {
        // 2-D 4x4 mesh: 2·4·3 = 24 links
        let m = Mesh {
            dim: 2,
            base: 4,
            radix: 8,
        };
        let g = m.build_fabric().unwrap();
        assert_eq!(g.num_links(), 24);
        assert!(g.is_connected());
    }

    #[test]
    fn corners_have_more_capacity() {
        let m = Mesh {
            dim: 2,
            base: 4,
            radix: 8,
        };
        let g = m.build_fabric().unwrap();
        // corner (0,0) uses 2 ports, interior (1,1) uses 4
        assert_eq!(g.free_ports(0), 6);
        assert_eq!(g.free_ports(5), 4);
    }

    #[test]
    fn max_hosts_counts_boundaries() {
        let m = Mesh {
            dim: 1,
            base: 3,
            radix: 4,
        };
        // path of 3: ends use 1 port (3 free), middle 2 (2 free) → 8
        assert_eq!(m.max_hosts(), 8);
    }

    #[test]
    fn mesh_diameter_exceeds_torus() {
        let mesh = Mesh {
            dim: 1,
            base: 6,
            radix: 4,
        };
        let g = mesh.build_with_hosts(6, AttachOrder::RoundRobin).unwrap();
        let d = path_metrics(&g).unwrap().diameter;
        assert_eq!(d, 5 + 2); // path end-to-end
    }

    #[test]
    fn invalid_parameters() {
        assert!(Mesh {
            dim: 2,
            base: 4,
            radix: 4
        }
        .build_fabric()
        .is_err());
        assert!(Mesh {
            dim: 0,
            base: 4,
            radix: 6
        }
        .build_fabric()
        .is_err());
    }
}
