//! Host attachment strategies (§6.2.1).
//!
//! The paper attaches hosts to conventional topologies *sequentially*
//! (switch id order, filling each switch) and to the proposed topology in
//! *depth-first order with backtracking* so that consecutive MPI ranks
//! land on nearby switches. The strategy changes nothing about `m`, `r`,
//! or the fabric — only which host ids sit where — yet §1 argues (and our
//! ablation bench confirms) it visibly affects application performance.

use orp_core::error::GraphError;
use orp_core::graph::{HostSwitchGraph, Switch};

/// Order in which hosts are attached to switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttachOrder {
    /// Fill switch 0 to capacity, then switch 1, … (the paper's choice
    /// for conventional topologies).
    Sequential,
    /// One host per switch in id order, cycling until done (spreads
    /// hosts; an ablation alternative).
    RoundRobin,
}

/// Attaches `n` hosts to `g` honouring per-switch `capacity`.
pub fn attach_hosts(
    g: &mut HostSwitchGraph,
    capacity: &[u32],
    n: u32,
    order: AttachOrder,
) -> Result<(), GraphError> {
    let total: u64 = capacity.iter().map(|&c| c as u64).sum();
    if (n as u64) > total {
        return Err(GraphError::InvalidParameters(format!(
            "capacity {total} cannot hold {n} hosts"
        )));
    }
    let m = g.num_switches();
    let mut left = n;
    match order {
        AttachOrder::Sequential => {
            for s in 0..m {
                let take = capacity[s as usize].min(left);
                for _ in 0..take {
                    g.attach_host(s)?;
                }
                left -= take;
                if left == 0 {
                    break;
                }
            }
        }
        AttachOrder::RoundRobin => {
            let mut used = vec![0u32; m as usize];
            while left > 0 {
                let mut progressed = false;
                for s in 0..m {
                    if left == 0 {
                        break;
                    }
                    if used[s as usize] < capacity[s as usize] {
                        g.attach_host(s)?;
                        used[s as usize] += 1;
                        left -= 1;
                        progressed = true;
                    }
                }
                debug_assert!(progressed, "capacity checked above");
                if !progressed {
                    break;
                }
            }
        }
    }
    Ok(())
}

/// Relabels the hosts of a populated graph so that host ids follow a
/// depth-first traversal of the switch graph from `root` (the paper's
/// "depth-first order by using backtracking" for the proposed topology):
/// all hosts of the first visited switch get the lowest ids, and so on.
///
/// Returns a new graph with identical structure but renumbered hosts.
pub fn relabel_hosts_dfs(g: &HostSwitchGraph, root: Switch) -> HostSwitchGraph {
    let m = g.num_switches();
    let mut visited = vec![false; m as usize];
    let mut stack = vec![root];
    let mut order: Vec<Switch> = Vec::with_capacity(m as usize);
    while let Some(s) = stack.pop() {
        if std::mem::replace(&mut visited[s as usize], true) {
            continue;
        }
        order.push(s);
        // push neighbours in reverse id order so lower ids are visited first
        let mut nbrs: Vec<Switch> = g.neighbors(s).to_vec();
        nbrs.sort_unstable_by(|a, b| b.cmp(a));
        for v in nbrs {
            if !visited[v as usize] {
                stack.push(v);
            }
        }
    }
    // switches unreachable from root (e.g. host-less stragglers) keep
    // their relative order at the end
    for s in 0..m {
        if !visited[s as usize] {
            order.push(s);
        }
    }
    let mut out = HostSwitchGraph::new(m, g.radix()).expect("same parameters");
    for (a, b) in g.links() {
        out.add_link(a, b).expect("same structure");
    }
    for &s in &order {
        for _ in 0..g.host_count(s) {
            out.attach_host(s).expect("same capacity");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3(r: u32) -> HostSwitchGraph {
        let mut g = HostSwitchGraph::new(3, r).unwrap();
        g.add_link(0, 1).unwrap();
        g.add_link(1, 2).unwrap();
        g
    }

    #[test]
    fn sequential_fills_in_order() {
        let mut g = path3(6);
        attach_hosts(&mut g, &[4, 4, 4], 6, AttachOrder::Sequential).unwrap();
        assert_eq!(g.host_counts(), vec![4, 2, 0]);
    }

    #[test]
    fn round_robin_spreads() {
        let mut g = path3(6);
        attach_hosts(&mut g, &[4, 4, 4], 6, AttachOrder::RoundRobin).unwrap();
        assert_eq!(g.host_counts(), vec![2, 2, 2]);
    }

    #[test]
    fn round_robin_respects_uneven_capacity() {
        let mut g = path3(6);
        attach_hosts(&mut g, &[1, 4, 2], 6, AttachOrder::RoundRobin).unwrap();
        assert_eq!(g.host_counts(), vec![1, 3, 2]);
    }

    #[test]
    fn over_capacity_rejected() {
        let mut g = path3(6);
        assert!(attach_hosts(&mut g, &[1, 1, 1], 4, AttachOrder::Sequential).is_err());
    }

    #[test]
    fn dfs_relabel_groups_consecutive_ranks() {
        // star of switches: 0 linked to 1,2,3; hosts everywhere
        let mut g = HostSwitchGraph::new(4, 8).unwrap();
        g.add_link(0, 1).unwrap();
        g.add_link(0, 2).unwrap();
        g.add_link(0, 3).unwrap();
        // attach hosts round-robin so original ids interleave
        attach_hosts(&mut g, &[2, 2, 2, 2], 8, AttachOrder::RoundRobin).unwrap();
        assert_eq!(g.switch_of(0), 0);
        assert_eq!(g.switch_of(1), 1);
        let out = relabel_hosts_dfs(&g, 0);
        // DFS from 0 visits 0, then 1 (lowest neighbour first), 2, 3
        assert_eq!(out.switch_of(0), 0);
        assert_eq!(out.switch_of(1), 0);
        assert_eq!(out.switch_of(2), 1);
        assert_eq!(out.switch_of(3), 1);
        assert_eq!(out.switch_of(6), 3);
        out.validate().unwrap();
        // structure unchanged
        assert_eq!(out.num_links(), g.num_links());
        assert_eq!(out.host_counts(), g.host_counts());
    }

    #[test]
    fn dfs_relabel_handles_unreachable_switches() {
        let mut g = HostSwitchGraph::new(3, 4).unwrap();
        g.add_link(0, 1).unwrap();
        g.attach_host(0).unwrap();
        g.attach_host(1).unwrap();
        // switch 2 isolated, no hosts
        let out = relabel_hosts_dfs(&g, 0);
        assert_eq!(out.num_hosts(), 2);
        assert_eq!(out.host_counts(), vec![1, 1, 0]);
    }
}
