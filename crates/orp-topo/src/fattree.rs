//! The three-layer `K`-ary fat-tree of §6.1.3 (Al-Fares et al.,
//! SIGCOMM 2008):
//!
//! * `K` pods, each with `K/2` edge and `K/2` aggregation switches,
//! * `(K/2)²` core switches,
//! * formulae (5): `r = K`, `m = 5K²/4`, `n = K³/4`,
//! * only edge switches host computers (`K/2` each) — an *indirect*
//!   network in the paper's taxonomy.

use crate::spec::Topology;
use orp_core::error::GraphError;
use orp_core::graph::{HostSwitchGraph, Switch};

/// A `K`-ary three-layer fat-tree (`K` even, ≥ 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FatTree {
    /// Ports per switch (the paper's `K`).
    pub k: u32,
}

impl FatTree {
    /// The Fig. 11 instance: 16-ary fat-tree → `m = 320`, `r = 16`,
    /// `n = 1024`.
    pub fn paper_16ary() -> Self {
        Self { k: 16 }
    }

    fn half(&self) -> u32 {
        self.k / 2
    }

    /// Switch ids: edge switches first (`pod·K/2 + i`), then aggregation
    /// (`K²/2 + pod·K/2 + i`), then core (`K² + g·K/2 + j` for core group
    /// `g`, member `j`).
    fn edge(&self, pod: u32, i: u32) -> Switch {
        pod * self.half() + i
    }

    fn agg(&self, pod: u32, i: u32) -> Switch {
        self.k * self.half() + pod * self.half() + i
    }

    fn core(&self, grp: u32, j: u32) -> Switch {
        2 * self.k * self.half() + grp * self.half() + j
    }

    fn check(&self) -> Result<(), GraphError> {
        if self.k < 4 || !self.k.is_multiple_of(2) {
            return Err(GraphError::InvalidParameters(format!(
                "fat-tree needs even K >= 4, got {}",
                self.k
            )));
        }
        Ok(())
    }

    /// Number of edge switches (`K²/2`), the only layer holding hosts.
    pub fn num_edge_switches(&self) -> u32 {
        self.k * self.half()
    }
}

impl Topology for FatTree {
    fn name(&self) -> String {
        format!("{}-ary fat-tree", self.k)
    }

    fn radix(&self) -> u32 {
        self.k
    }

    fn num_switches(&self) -> u32 {
        5 * self.k * self.k / 4
    }

    fn max_hosts(&self) -> u32 {
        self.k * self.k * self.k / 4
    }

    fn build_fabric(&self) -> Result<HostSwitchGraph, GraphError> {
        self.check()?;
        let mut g = HostSwitchGraph::new(self.num_switches(), self.k)?;
        let half = self.half();
        for pod in 0..self.k {
            for e in 0..half {
                for a in 0..half {
                    g.add_link(self.edge(pod, e), self.agg(pod, a))?;
                }
            }
            // aggregation switch `a` of every pod uplinks to core group `a`
            for a in 0..half {
                for j in 0..half {
                    g.add_link(self.agg(pod, a), self.core(a, j))?;
                }
            }
        }
        Ok(g)
    }

    /// Hosts attach to edge switches only, `K/2` per edge switch.
    fn host_capacity(&self, _fabric: &HostSwitchGraph) -> Vec<u32> {
        let mut cap = vec![0u32; self.num_switches() as usize];
        for s in 0..self.num_edge_switches() {
            cap[s as usize] = self.half();
        }
        cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attach::AttachOrder;
    use orp_core::metrics::path_metrics;

    #[test]
    fn paper_16ary_parameters() {
        let f = FatTree::paper_16ary();
        assert_eq!(f.num_switches(), 320);
        assert_eq!(f.max_hosts(), 1024);
        assert_eq!(f.radix(), 16);
    }

    #[test]
    fn fabric_structure_k4() {
        let f = FatTree { k: 4 };
        let g = f.build_fabric().unwrap();
        assert_eq!(g.num_switches(), 20);
        // edge switches: 2 uplinks used, 2 ports free for hosts
        for s in 0..8 {
            assert_eq!(g.neighbors(s).len(), 2, "edge {s}");
            assert_eq!(g.free_ports(s), 2);
        }
        // aggregation: 2 down + 2 up = full
        for s in 8..16 {
            assert_eq!(g.neighbors(s).len(), 4, "agg {s}");
        }
        // core: one link per pod = 4
        for s in 16..20 {
            assert_eq!(g.neighbors(s).len(), 4, "core {s}");
        }
        assert!(g.is_connected());
    }

    #[test]
    fn full_fat_tree_diameter_six() {
        let f = FatTree { k: 4 };
        let g = f.build_with_hosts(16, AttachOrder::Sequential).unwrap();
        let m = path_metrics(&g).unwrap();
        // edge→agg→core→agg→edge = 4 switch hops, +2 host hops
        assert_eq!(m.diameter, 6);
        assert_eq!(g.num_hosts(), 16);
        g.validate().unwrap();
    }

    #[test]
    fn hosts_only_on_edge_layer() {
        let f = FatTree { k: 4 };
        let g = f.build_with_hosts(16, AttachOrder::Sequential).unwrap();
        for s in 0..8 {
            assert_eq!(g.host_count(s), 2);
        }
        for s in 8..20 {
            assert_eq!(g.host_count(s), 0);
        }
    }

    #[test]
    fn intra_pod_distance() {
        let f = FatTree { k: 4 };
        let g = f.build_fabric().unwrap();
        // two edge switches of pod 0 are 2 apart (via an aggregation)
        let d = g.switch_distances(f.edge(0, 0));
        assert_eq!(d[f.edge(0, 1) as usize], 2);
        // edge switches of different pods are 4 apart (via core)
        assert_eq!(d[f.edge(1, 0) as usize], 4);
    }

    #[test]
    fn odd_k_rejected() {
        assert!(FatTree { k: 5 }.build_fabric().is_err());
        assert!(FatTree { k: 2 }.build_fabric().is_err());
    }
}
