//! # orp-topo — conventional interconnection topologies
//!
//! The three Top500-representative topologies the ORP paper compares
//! against (§6.1), each expressed as a host-switch graph:
//!
//! * [`torus::Torus`] — the `K`-ary `N`-torus (Titan, Sequoia),
//! * [`dragonfly::Dragonfly`] — the balanced dragonfly (Cori, Piz Daint),
//! * [`fattree::FatTree`] — the three-layer `K`-ary fat-tree (Tianhe-2),
//!
//! plus the host-attachment strategies of §6.2.1 ([`attach`]) and the
//! common [`spec::Topology`] trait.
//!
//! ```
//! use orp_topo::prelude::*;
//!
//! let torus = Torus::paper_5d();
//! let g = torus.build_with_hosts(1024, AttachOrder::Sequential).unwrap();
//! assert_eq!(g.num_switches(), 243);
//! ```

#![warn(missing_docs)]

pub mod attach;
pub mod dragonfly;
pub mod fattree;
pub mod mesh;
pub mod slimfly;
pub mod spec;
pub mod torus;

/// Glob-import convenience: the trait plus all topology types.
pub mod prelude {
    pub use crate::attach::{attach_hosts, relabel_hosts_dfs, AttachOrder};
    pub use crate::dragonfly::Dragonfly;
    pub use crate::fattree::FatTree;
    pub use crate::mesh::Mesh;
    pub use crate::slimfly::SlimFly;
    pub use crate::spec::Topology;
    pub use crate::torus::Torus;
}

pub use attach::AttachOrder;
pub use dragonfly::Dragonfly;
pub use fattree::FatTree;
pub use mesh::Mesh;
pub use slimfly::SlimFly;
pub use spec::Topology;
pub use torus::Torus;
