//! Hardware power/cost models in the style of Mellanox InfiniBand FDR10
//! equipment (§6.2.3 uses FDR10 switches and 40 Gb/s QSFP cables).
//!
//! The exact vendor price sheets are proprietary; the constants below are
//! public ballpark figures (documented in DESIGN.md). The paper's
//! comparisons depend on *ratios* — switch count × per-switch figures vs
//! the cable-length distribution — which these preserve.

use serde::{Deserialize, Serialize};

/// Power and cost constants for switches and cables.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HardwareModel {
    /// Switch chassis power, watts (fans, management).
    pub switch_base_power: f64,
    /// Power per active port, watts.
    pub port_power: f64,
    /// Extra power per optical cable *end* (transceiver), watts.
    pub optical_end_power: f64,
    /// Switch chassis cost, dollars.
    pub switch_base_cost: f64,
    /// Cost per port (SerDes, buffers), dollars — multiplied by the
    /// radix, since you buy the whole switch.
    pub port_cost: f64,
    /// Electrical (passive copper) cable: fixed + per-meter dollars.
    pub electrical_cable_base: f64,
    /// Per-meter cost of electrical cable.
    pub electrical_cable_per_m: f64,
    /// Optical (active) cable: fixed + per-meter dollars.
    pub optical_cable_base: f64,
    /// Per-meter cost of optical cable.
    pub optical_cable_per_m: f64,
    /// Longest run an electrical cable supports, meters (the paper uses
    /// 100 cm: longer runs switch to optics).
    pub electrical_max_m: f64,
}

impl Default for HardwareModel {
    /// FDR10-flavoured constants: a 36-port FDR10 switch draws roughly
    /// 230 W fully populated and lists near $12k; passive QSFP copper
    /// runs ≈ $70 + $10/m, active optics ≈ $180 + $15/m with ≈ 1 W per
    /// transceiver.
    fn default() -> Self {
        Self {
            switch_base_power: 100.0,
            port_power: 3.6,
            optical_end_power: 1.0,
            switch_base_cost: 2500.0,
            port_cost: 270.0,
            electrical_cable_base: 70.0,
            electrical_cable_per_m: 10.0,
            optical_cable_base: 180.0,
            optical_cable_per_m: 15.0,
            electrical_max_m: 1.0,
        }
    }
}

impl HardwareModel {
    /// Whether a run of `meters` needs an optical cable.
    pub fn is_optical(&self, meters: f64) -> bool {
        meters > self.electrical_max_m
    }

    /// Cost of one cable of the given length.
    pub fn cable_cost(&self, meters: f64) -> f64 {
        if self.is_optical(meters) {
            self.optical_cable_base + self.optical_cable_per_m * meters
        } else {
            self.electrical_cable_base + self.electrical_cable_per_m * meters
        }
    }

    /// Power attributable to one cable (transceivers only; copper is
    /// passive).
    pub fn cable_power(&self, meters: f64) -> f64 {
        if self.is_optical(meters) {
            2.0 * self.optical_end_power
        } else {
            0.0
        }
    }

    /// Power of one switch with `used_ports` active ports.
    pub fn switch_power(&self, used_ports: u32) -> f64 {
        self.switch_base_power + self.port_power * used_ports as f64
    }

    /// Cost of one switch of the given radix.
    pub fn switch_cost(&self, radix: u32) -> f64 {
        self.switch_base_cost + self.port_cost * radix as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cable_type_threshold() {
        let m = HardwareModel::default();
        assert!(!m.is_optical(0.5));
        assert!(!m.is_optical(1.0));
        assert!(m.is_optical(1.01));
    }

    #[test]
    fn optical_costs_more_and_draws_power() {
        let m = HardwareModel::default();
        assert!(m.cable_cost(2.0) > m.cable_cost(1.0));
        assert!(
            m.cable_cost(1.01) > m.cable_cost(1.0) + 50.0,
            "step to optics"
        );
        assert_eq!(m.cable_power(0.5), 0.0);
        assert!(m.cable_power(5.0) > 0.0);
    }

    #[test]
    fn switch_figures_scale_with_ports() {
        let m = HardwareModel::default();
        assert!(m.switch_power(36) > m.switch_power(10));
        assert!(m.switch_cost(36) > m.switch_cost(16));
        // fully-populated 36-port switch lands near the published ~230 W
        let p = m.switch_power(36);
        assert!((200.0..280.0).contains(&p), "{p}");
    }
}
