//! # orp-layout — floorplans, cables, power and cost
//!
//! The physical-deployment model of §6.2.3: cabinets 60 cm × 210 cm on a
//! 2-D grid, Manhattan cable runs, electrical cables up to 100 cm and
//! optical beyond, and Mellanox-FDR10-flavoured power/cost constants.
//!
//! ```
//! use orp_core::construct::random_general;
//! use orp_layout::evaluate_default;
//!
//! let g = random_general(64, 16, 10, 3).unwrap();
//! let report = evaluate_default(&g);
//! assert!(report.total_cost() > 0.0);
//! assert_eq!(report.switches, 16);
//! ```

#![warn(missing_docs)]

pub mod floorplan;
pub mod models;
pub mod placement;
pub mod report;

pub use floorplan::Floorplan;
pub use models::HardwareModel;
pub use placement::optimized_floorplan;
pub use report::{evaluate, evaluate_default, LayoutReport};
