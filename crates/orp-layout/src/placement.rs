//! Cable-aware switch placement: assign switches to cabinets with the
//! multilevel partitioner so that heavily connected switches share a
//! cabinet — fewer optical runs, shorter total cable, lower cost. An
//! extension beyond the paper's id-order packing, used by the ablation
//! bench to quantify how much placement alone is worth.

use crate::floorplan::Floorplan;
use orp_core::graph::HostSwitchGraph;
use orp_partition::{partition, Graph as CutGraph, PartitionConfig};

/// Assigns switches to `⌈m / per_cabinet⌉` cabinets by partitioning the
/// switch graph, then returns the resulting floorplan. Parts that
/// overflow the cabinet capacity spill into the least-loaded cabinet
/// (the partitioner balances within a small tolerance, so spills are
/// rare and small).
pub fn optimized_floorplan(g: &HostSwitchGraph, per_cabinet: u32, seed: u64) -> Floorplan {
    assert!(per_cabinet >= 1);
    let m = g.num_switches();
    let k = m.div_ceil(per_cabinet).max(1) as usize;
    if k <= 1 {
        return Floorplan::new(g, per_cabinet);
    }
    let edges: Vec<(u32, u32)> = g.links().collect();
    let cg = CutGraph::from_edges(m as usize, &edges);
    let cfg = PartitionConfig {
        seed,
        eps: 0.02,
        ..Default::default()
    };
    let parts = partition(&cg, k, &cfg);
    // enforce the hard cabinet capacity
    let mut load = vec![0u32; k];
    let mut assignment = vec![0u32; m as usize];
    // first pass: take the partitioner's assignment where it fits
    let mut overflow = Vec::new();
    for (s, &part) in parts.assignment.iter().enumerate() {
        let c = part as usize;
        if load[c] < per_cabinet {
            load[c] += 1;
            assignment[s] = c as u32;
        } else {
            overflow.push(s);
        }
    }
    for s in overflow {
        let c = (0..k).min_by_key(|&c| load[c]).expect("k >= 1");
        load[c] += 1;
        assignment[s] = c as u32;
    }
    Floorplan::with_assignment(assignment)
}

/// Total switch-to-switch cable length under a floorplan — the quantity
/// placement optimisation minimises.
pub fn total_cable_length(g: &HostSwitchGraph, fp: &Floorplan) -> f64 {
    fp.link_lengths(g).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::HardwareModel;
    use crate::report::evaluate;
    use orp_core::construct::random_general;
    use orp_core::HostSwitchGraph;

    /// Two 8-switch cliques joined by one bridge: the optimal 2-cabinet
    /// packing is one clique per cabinet.
    fn two_cliques() -> HostSwitchGraph {
        let mut g = HostSwitchGraph::new(16, 16).unwrap();
        for base in [0u32, 8] {
            for a in 0..8 {
                for b in (a + 1)..8 {
                    g.add_link(base + a, base + b).unwrap();
                }
            }
        }
        g.add_link(0, 8).unwrap();
        g
    }

    #[test]
    fn clusters_end_up_in_one_cabinet() {
        // interleave the ids so naive packing is terrible
        let g = two_cliques();
        let fp = optimized_floorplan(&g, 8, 1);
        // all of clique 1 in one cabinet, clique 2 in the other
        let c0 = fp.cabinet_of(0);
        for s in 1..8 {
            assert_eq!(fp.cabinet_of(s), c0, "switch {s}");
        }
        assert_ne!(fp.cabinet_of(8), c0);
    }

    #[test]
    fn optimized_is_no_worse_than_naive() {
        for seed in [1u64, 2, 3] {
            let g = random_general(96, 24, 10, seed).unwrap();
            let naive = Floorplan::new(&g, 4);
            let opt = optimized_floorplan(&g, 4, seed);
            let ln = total_cable_length(&g, &naive);
            let lo = total_cable_length(&g, &opt);
            assert!(lo <= ln * 1.02, "seed {seed}: optimized {lo} vs naive {ln}");
        }
    }

    #[test]
    fn capacity_is_respected() {
        let g = random_general(96, 24, 10, 5).unwrap();
        let fp = optimized_floorplan(&g, 4, 5);
        let mut load = std::collections::HashMap::new();
        for s in 0..24 {
            *load.entry(fp.cabinet_of(s)).or_insert(0u32) += 1;
        }
        assert!(load.values().all(|&l| l <= 4), "{load:?}");
        assert_eq!(load.values().sum::<u32>(), 24);
    }

    #[test]
    fn fewer_optical_cables_after_optimization() {
        let g = two_cliques();
        let hw = HardwareModel::default();
        let naive = {
            // adversarial: alternate cliques across cabinets
            let assignment = (0..16).map(|s| s % 2).collect();
            Floorplan::with_assignment(assignment)
        };
        let opt = optimized_floorplan(&g, 8, 1);
        let rn = evaluate(&g, &naive, &hw);
        let ro = evaluate(&g, &opt, &hw);
        assert!(ro.optical_cables < rn.optical_cables);
        assert!(ro.cable_cost < rn.cable_cost);
    }

    #[test]
    fn single_cabinet_short_circuits() {
        let g = random_general(16, 4, 8, 1).unwrap();
        let fp = optimized_floorplan(&g, 8, 1);
        assert_eq!(fp.num_cabinets(), 1);
    }
}
