//! End-to-end power and cost evaluation of a host-switch network under a
//! floorplan — the data behind panels (c) and (d) of Figs. 9–11.

use crate::floorplan::Floorplan;
use crate::models::HardwareModel;
use orp_core::graph::HostSwitchGraph;
use serde::{Deserialize, Serialize};

/// Power/cost breakdown of one deployed network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayoutReport {
    /// Hosts `n`.
    pub hosts: u32,
    /// Switches `m`.
    pub switches: u32,
    /// Switch-to-switch cables.
    pub sw_cables: u32,
    /// Of which optical.
    pub optical_cables: u32,
    /// Host-to-switch cables (always electrical in-cabinet runs).
    pub host_cables: u32,
    /// Total cable length, meters.
    pub cable_m: f64,
    /// Switch power, watts.
    pub switch_power: f64,
    /// Transceiver power, watts.
    pub cable_power: f64,
    /// Switch cost, dollars.
    pub switch_cost: f64,
    /// Cable cost (switch + host cables), dollars.
    pub cable_cost: f64,
}

impl LayoutReport {
    /// Total power, watts.
    pub fn total_power(&self) -> f64 {
        self.switch_power + self.cable_power
    }

    /// Total cost, dollars.
    pub fn total_cost(&self) -> f64 {
        self.switch_cost + self.cable_cost
    }
}

/// Evaluates `g` under a floorplan and hardware model.
pub fn evaluate(g: &HostSwitchGraph, fp: &Floorplan, hw: &HardwareModel) -> LayoutReport {
    let mut sw_cables = 0u32;
    let mut optical = 0u32;
    let mut cable_m = 0.0;
    let mut cable_cost = 0.0;
    let mut cable_power = 0.0;
    for len in fp.link_lengths(g) {
        sw_cables += 1;
        cable_m += len;
        cable_cost += hw.cable_cost(len);
        cable_power += hw.cable_power(len);
        if hw.is_optical(len) {
            optical += 1;
        }
    }
    let host_len = fp.host_cable_length();
    let n = g.num_hosts();
    cable_m += host_len * n as f64;
    cable_cost += hw.cable_cost(host_len) * n as f64;
    cable_power += hw.cable_power(host_len) * n as f64;
    let mut switch_power = 0.0;
    let mut switch_cost = 0.0;
    for s in 0..g.num_switches() {
        switch_power += hw.switch_power(g.switch_degree(s));
        switch_cost += hw.switch_cost(g.radix());
    }
    LayoutReport {
        hosts: n,
        switches: g.num_switches(),
        sw_cables,
        optical_cables: optical,
        host_cables: n,
        cable_m,
        switch_power,
        cable_power,
        switch_cost,
        cable_cost,
    }
}

/// Convenience: default floorplan (one switch per cabinet) + default
/// hardware model.
pub fn evaluate_default(g: &HostSwitchGraph) -> LayoutReport {
    let fp = Floorplan::new(g, 1);
    evaluate(g, &fp, &HardwareModel::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use orp_core::construct::random_general;

    #[test]
    fn report_counts_everything() {
        let g = random_general(64, 16, 10, 3).unwrap();
        let r = evaluate_default(&g);
        assert_eq!(r.hosts, 64);
        assert_eq!(r.switches, 16);
        assert_eq!(r.sw_cables as usize, g.num_links());
        assert_eq!(r.host_cables, 64);
        assert!(r.total_power() > 0.0);
        assert!(r.total_cost() > 0.0);
        assert!(r.optical_cables <= r.sw_cables);
    }

    #[test]
    fn more_switches_cost_more() {
        let small = random_general(64, 8, 12, 3).unwrap();
        let large = random_general(64, 20, 12, 3).unwrap();
        let rs = evaluate_default(&small);
        let rl = evaluate_default(&large);
        assert!(rl.switch_cost > rs.switch_cost);
        assert!(rl.switch_power > rs.switch_power);
    }

    #[test]
    fn dense_cabinets_reduce_optics() {
        let g = random_general(64, 16, 10, 3).unwrap();
        let hw = HardwareModel::default();
        let sparse = evaluate(&g, &Floorplan::new(&g, 1), &hw);
        let dense = evaluate(&g, &Floorplan::new(&g, 8), &hw);
        assert!(dense.optical_cables <= sparse.optical_cables);
        assert!(dense.cable_m < sparse.cable_m);
    }

    #[test]
    fn power_grows_with_hosts() {
        // same switch fabric, different host populations: the extra
        // active ports must show up in the power figure
        let mut fabric = orp_core::HostSwitchGraph::new(8, 10).unwrap();
        for s in 0..8 {
            fabric.add_link(s, (s + 1) % 8).unwrap();
        }
        let mut small = fabric.clone();
        let mut large = fabric;
        for h in 0..32 {
            large.attach_host(h % 8).unwrap();
            if h < 8 {
                small.attach_host(h % 8).unwrap();
            }
        }
        let a = evaluate_default(&small);
        let b = evaluate_default(&large);
        assert!(b.switch_power > a.switch_power, "more used ports draw more");
        assert!(b.cable_cost > a.cable_cost, "more host cables cost more");
    }
}
