//! Physical floorplanning (§6.2.3): cabinets on a 2-D grid, each 60 cm
//! wide and 210 cm deep *including aisle space*, switches packed into
//! cabinets in id order, and cable runs measured with Manhattan distance
//! plus an in-cabinet overhead.

use orp_core::graph::{HostSwitchGraph, Switch};

/// Cabinet width along an aisle, meters (paper: 60 cm).
pub const CABINET_WIDTH_M: f64 = 0.6;
/// Cabinet pitch across aisles, meters (paper: 210 cm incl. aisle).
pub const CABINET_DEPTH_M: f64 = 2.1;

/// A floorplan: every switch assigned a cabinet, cabinets on a grid.
#[derive(Debug, Clone)]
pub struct Floorplan {
    /// Cabinet index per switch.
    cabinet_of: Vec<u32>,
    /// Cabinet grid positions `(row, col)`.
    cabinet_pos: Vec<(u32, u32)>,
    /// Cabinets per row of the grid.
    cols: u32,
    /// Fixed slack added to every inter-cabinet run (vertical cable
    /// managers, patch slack), meters.
    overhead_m: f64,
    /// Length assumed for runs inside one cabinet, meters.
    intra_cabinet_m: f64,
}

impl Floorplan {
    /// Packs `switches_per_cabinet` switches into each cabinet in id
    /// order and lays the cabinets out on a near-square grid, column
    /// major along aisles.
    pub fn new(g: &HostSwitchGraph, switches_per_cabinet: u32) -> Self {
        assert!(switches_per_cabinet >= 1);
        let m = g.num_switches();
        let cabinet_of: Vec<u32> = (0..m).map(|s| s / switches_per_cabinet).collect();
        Self::with_assignment(cabinet_of)
    }

    /// Builds a floorplan from an explicit switch→cabinet assignment
    /// (e.g. the partitioner-driven [`crate::placement`]); cabinet ids
    /// must be dense from 0.
    pub fn with_assignment(cabinet_of: Vec<u32>) -> Self {
        let num_cabinets = cabinet_of.iter().copied().max().map_or(0, |c| c + 1);
        let cols = (num_cabinets as f64).sqrt().ceil().max(1.0) as u32;
        let cabinet_pos: Vec<(u32, u32)> =
            (0..num_cabinets).map(|c| (c / cols, c % cols)).collect();
        Self {
            cabinet_of,
            cabinet_pos,
            cols,
            overhead_m: 2.0,
            intra_cabinet_m: 0.5,
        }
    }

    /// Number of cabinets.
    pub fn num_cabinets(&self) -> u32 {
        self.cabinet_pos.len() as u32
    }

    /// Cabinets per grid row.
    pub fn grid_cols(&self) -> u32 {
        self.cols
    }

    /// The cabinet a switch lives in.
    pub fn cabinet_of(&self, s: Switch) -> u32 {
        self.cabinet_of[s as usize]
    }

    /// Physical centre of a cabinet, meters.
    pub fn cabinet_xy(&self, cab: u32) -> (f64, f64) {
        let (row, col) = self.cabinet_pos[cab as usize];
        (col as f64 * CABINET_WIDTH_M, row as f64 * CABINET_DEPTH_M)
    }

    /// Cable length between two switches: Manhattan distance between
    /// their cabinets plus routing overhead, or the intra-cabinet length
    /// when they share one.
    pub fn cable_length(&self, a: Switch, b: Switch) -> f64 {
        let (ca, cb) = (self.cabinet_of(a), self.cabinet_of(b));
        if ca == cb {
            return self.intra_cabinet_m;
        }
        let (xa, ya) = self.cabinet_xy(ca);
        let (xb, yb) = self.cabinet_xy(cb);
        (xa - xb).abs() + (ya - yb).abs() + self.overhead_m
    }

    /// Host-to-switch cable length (hosts sit in their switch's cabinet).
    pub fn host_cable_length(&self) -> f64 {
        self.intra_cabinet_m
    }

    /// Lengths of all switch-to-switch cables of `g` under this plan.
    pub fn link_lengths<'a>(&'a self, g: &'a HostSwitchGraph) -> impl Iterator<Item = f64> + 'a {
        g.links().map(move |(a, b)| self.cable_length(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(m: u32) -> HostSwitchGraph {
        let mut g = HostSwitchGraph::new(m, 4).unwrap();
        for s in 0..m {
            g.add_link(s, (s + 1) % m).unwrap();
        }
        g
    }

    #[test]
    fn packs_switches_into_cabinets() {
        let g = ring(10);
        let fp = Floorplan::new(&g, 4);
        assert_eq!(fp.num_cabinets(), 3);
        assert_eq!(fp.cabinet_of(0), 0);
        assert_eq!(fp.cabinet_of(3), 0);
        assert_eq!(fp.cabinet_of(4), 1);
        assert_eq!(fp.cabinet_of(9), 2);
    }

    #[test]
    fn grid_is_near_square() {
        let g = ring(16);
        let fp = Floorplan::new(&g, 1);
        assert_eq!(fp.num_cabinets(), 16);
        assert_eq!(fp.grid_cols(), 4);
        let (x, y) = fp.cabinet_xy(5); // row 1, col 1
        assert!((x - CABINET_WIDTH_M).abs() < 1e-12);
        assert!((y - CABINET_DEPTH_M).abs() < 1e-12);
    }

    #[test]
    fn same_cabinet_is_short() {
        let g = ring(4);
        let fp = Floorplan::new(&g, 4);
        assert_eq!(fp.cable_length(0, 3), 0.5);
    }

    #[test]
    fn cross_cabinet_uses_manhattan_plus_overhead() {
        let g = ring(4);
        let fp = Floorplan::new(&g, 1); // 2x2 grid
                                        // cabinets 0 (0,0) and 3 (1,1)
        let l = fp.cable_length(0, 3);
        assert!((l - (CABINET_WIDTH_M + CABINET_DEPTH_M + 2.0)).abs() < 1e-12);
        // symmetric
        assert_eq!(fp.cable_length(0, 3), fp.cable_length(3, 0));
    }

    #[test]
    fn link_lengths_cover_every_link() {
        let g = ring(6);
        let fp = Floorplan::new(&g, 2);
        let ls: Vec<f64> = fp.link_lengths(&g).collect();
        assert_eq!(ls.len(), 6);
        assert!(ls.iter().all(|&l| l > 0.0));
    }
}
