//! # orp-netsim — a flow-level MPI network simulator
//!
//! The SimGrid substitute for the paper's performance evaluation
//! (§6.2.1): hosts compute at 100 GFlops; messages become fluid *flows*
//! over shortest-path routes with max-min fair bandwidth sharing (the
//! same model family as SimGrid's SMPI); MPI collectives follow the
//! MVAPICH2-style algorithms; and the NAS Parallel Benchmarks are
//! reproduced as communication skeletons with calibrated compute phases.
//!
//! Layering:
//!
//! * [`network`] — links, routes, and physical constants,
//! * [`queue`] / [`event`] / [`context`] — the explicit event-queue
//!   core: timestamped events addressed to components, with O(1)
//!   cancellation,
//! * [`sharing`] — pluggable throughput-sharing models (exact max-min
//!   and approximate per-link fair sharing),
//! * [`engine`] — the discrete-event simulator orchestrating ranks,
//!   faults, and open-loop injection over the queue, executing per-rank
//!   [`engine::Op`] programs,
//! * [`mpi`] — collective algorithms building those programs,
//! * [`npb`] — the eight NPB kernels (EP, IS, FT, MG, CG, LU, BT, SP),
//! * [`report`] — Mop/s accounting as plotted in Figs. 9a/10a/11a.
//!
//! ```
//! use orp_core::construct::random_general;
//! use orp_netsim::network::Network;
//! use orp_netsim::npb::{Benchmark, Class};
//! use orp_netsim::report::run_benchmark;
//!
//! let g = random_general(16, 4, 8, 1).unwrap();
//! let net = Network::builder(&g).build();
//! let res = run_benchmark(&net, Benchmark::Ep, 16, Class::A, 1).unwrap();
//! assert!(res.mops > 0.0);
//! ```
//!
//! The stack operates degraded instead of panicking: simulation returns
//! `Result` ([`engine::SimError`] carries deadlock/partition
//! diagnostics), networks can be compiled against an
//! [`orp_core::fault::FaultSet`]
//! ([`network::NetworkBuilder::faults`]), and mid-run element deaths
//! ([`engine::NetFault`]) tear down and re-route the affected flows.
//!
//! Long runs are crash-safe: [`engine::SimulatorBuilder::checkpoint`]
//! periodically snapshots the complete simulator state (event queue,
//! rank contexts, flows, sharing-model internals) to an atomic,
//! checksummed file; [`engine::SimulatorBuilder::resume_from`]
//! continues a killed run bit-identically; and
//! [`engine::SimulatorBuilder::watchdog`] turns a wall-clock hang into
//! a force-checkpointed, resumable [`engine::SimError::Wedged`].
//!
//! Both builders accept an [`orp_obs::Recorder`] for zero-cost-when-off
//! telemetry: flow lifecycle events, per-link utilization and
//! queue-depth histograms, and fault/reroute records (see the `orp-obs`
//! crate docs for the sinks).

#![warn(missing_docs)]

pub mod context;
pub mod engine;
pub mod event;
pub mod mpi;
pub mod network;
pub mod npb;
pub mod packet;
mod parallel;
pub mod patterns;
pub mod queue;
mod rank;
pub mod report;
pub mod sharing;

pub use context::SimContext;
pub use engine::{
    FaultEvent, InjectedFlow, NetFault, Op, Program, SimCheckpoint, SimError, SimReport, Simulator,
    SimulatorBuilder, SIM_CKPT_EVERY_DEFAULT,
};
pub use event::EventId;
pub use network::{NetConfig, Network, NetworkBuilder, RouteMode};
pub use queue::EventQueue;
pub use rank::{BlockedRank, WaitReason};
pub use report::{
    run_benchmark, run_benchmark_configured, run_benchmark_with, run_suite, BenchResult,
};
pub use sharing::{SharingMode, ThroughputSharingModel};
