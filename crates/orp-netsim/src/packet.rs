//! A store-and-forward packet-level simulator — the microscopic
//! cross-check for the fluid model in [`crate::engine`].
//!
//! Flows are chopped into MTU-sized packets; every directed link is a
//! FIFO server at link rate with a propagation/switch delay per hop and
//! unbounded buffers (virtual cut-through networks with large buffers
//! behave closely). Orders of magnitude slower than the fluid model, but
//! it resolves per-packet queueing exactly — the validation tests assert
//! that both models agree on single-flow timing and on which topology
//! wins under contention.

use crate::network::Network;
use crate::queue::EventQueue;
use orp_route::RouteError;

/// Default packet size (bytes) — a typical InfiniBand MTU.
pub const DEFAULT_MTU: f64 = 4096.0;

/// A one-shot traffic demand: all flows released at `t = 0`.
#[derive(Debug, Clone, Copy)]
pub struct FlowDemand {
    /// Source host.
    pub src: u32,
    /// Destination host.
    pub dst: u32,
    /// Payload bytes.
    pub bytes: f64,
}

/// Result of a packet-level run.
#[derive(Debug, Clone)]
pub struct PacketReport {
    /// Per-flow completion times (same order as the demands).
    pub completion: Vec<f64>,
    /// Time the last flow finished.
    pub makespan: f64,
    /// Total packets simulated.
    pub packets: u64,
    /// Total packet-hop events processed.
    pub events: u64,
}

/// Runs the packet simulation of `demands` over `net` with the given
/// packet size.
///
/// # Errors
/// Returns the [`RouteError`] of the first demand with no surviving
/// route (possible on degraded networks).
///
/// # Panics
/// Panics if a demand routes between identical hosts.
pub fn packet_simulate(
    net: &Network,
    demands: &[FlowDemand],
    mtu: f64,
) -> Result<PacketReport, RouteError> {
    let cfg = *net.config();
    let mtu = mtu.max(1.0);
    // per-flow routes and packet bookkeeping
    struct PacketState {
        route: Vec<u32>,
        flow: u32,
        bytes: f64,
    }
    let mut packets: Vec<PacketState> = Vec::new();
    let mut remaining_pkts: Vec<u32> = Vec::with_capacity(demands.len());
    for (fid, d) in demands.iter().enumerate() {
        let route = net.route(d.src, d.dst, fid as u64)?;
        let full = (d.bytes / mtu).floor() as u32;
        let tail = d.bytes - full as f64 * mtu;
        let mut count = 0;
        for _ in 0..full {
            packets.push(PacketState {
                route: route.clone(),
                flow: fid as u32,
                bytes: mtu,
            });
            count += 1;
        }
        if tail > 0.0 || full == 0 {
            packets.push(PacketState {
                route,
                flow: fid as u32,
                bytes: tail.max(0.0),
            });
            count += 1;
        }
        remaining_pkts.push(count);
    }
    let mut busy = vec![0.0f64; net.num_links() as usize];
    let mut completion = vec![0.0f64; demands.len()];
    // events are (packet, hop); the queue's (time, seq) ordering keeps
    // FIFO order stable among same-time arrivals
    let mut queue: EventQueue<(u32, u16)> = EventQueue::new();
    for pid in 0..packets.len() as u32 {
        // software overhead charged once at injection
        queue.schedule(cfg.sw_overhead, (pid, 0));
    }
    while let Some((t, (pid, hop))) = queue.pop() {
        let p = &packets[pid as usize];
        if hop as usize == p.route.len() {
            // delivered
            let f = p.flow as usize;
            completion[f] = completion[f].max(t);
            remaining_pkts[f] -= 1;
            continue;
        }
        let link = p.route[hop as usize] as usize;
        let start = busy[link].max(t);
        let tx = p.bytes / cfg.bandwidth;
        busy[link] = start + tx;
        let arrive = start + tx + cfg.hop_latency;
        queue.schedule(arrive, (pid, hop + 1));
    }
    let makespan = completion.iter().copied().fold(0.0, f64::max);
    Ok(PacketReport {
        completion,
        makespan,
        packets: packets.len() as u64,
        events: queue.processed(),
    })
}

/// Convenience: simulate a permutation pattern (see
/// [`crate::patterns::Pattern`]) at packet level.
///
/// # Errors
/// Returns the [`RouteError`] of the first unroutable demand.
pub fn packet_simulate_pattern(
    net: &Network,
    pattern: crate::patterns::Pattern,
    bytes: f64,
    seed: u64,
) -> Result<PacketReport, RouteError> {
    let n = net.num_hosts();
    let demands: Vec<FlowDemand> = (0..n)
        .filter_map(|r| {
            pattern.destination(r, n, seed).map(|d| FlowDemand {
                src: r,
                dst: d,
                bytes,
            })
        })
        .collect();
    packet_simulate(net, &demands, DEFAULT_MTU)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Op, Simulator};
    use orp_core::construct::random_general;
    use orp_core::HostSwitchGraph;

    fn dumbbell() -> Network {
        let mut g = HostSwitchGraph::new(2, 4).unwrap();
        g.add_link(0, 1).unwrap();
        g.attach_host(0).unwrap();
        g.attach_host(0).unwrap();
        g.attach_host(1).unwrap();
        g.attach_host(1).unwrap();
        // hosts 0,1 on sw0; 2,3 on sw1
        Network::builder(&g).build()
    }

    #[test]
    fn single_packet_timing_exact() {
        let net = dumbbell();
        let cfg = *net.config();
        let rep = packet_simulate(
            &net,
            &[FlowDemand {
                src: 0,
                dst: 2,
                bytes: 1000.0,
            }],
            DEFAULT_MTU,
        )
        .unwrap();
        // one packet over 3 links: sw_overhead + 3·(tx + hop_latency)
        let tx = 1000.0 / cfg.bandwidth;
        let expect = cfg.sw_overhead + 3.0 * (tx + cfg.hop_latency);
        assert!(
            (rep.makespan - expect).abs() < 1e-12,
            "{} vs {expect}",
            rep.makespan
        );
        assert_eq!(rep.packets, 1);
    }

    #[test]
    fn pipelining_across_hops() {
        // P packets over L links: makespan ≈ overhead + (L + P − 1)·tx + L·lat
        let net = dumbbell();
        let cfg = *net.config();
        let bytes = 10.0 * DEFAULT_MTU;
        let rep = packet_simulate(
            &net,
            &[FlowDemand {
                src: 0,
                dst: 2,
                bytes,
            }],
            DEFAULT_MTU,
        )
        .unwrap();
        let tx = DEFAULT_MTU / cfg.bandwidth;
        let expect = cfg.sw_overhead + (3.0 + 9.0) * tx + 3.0 * cfg.hop_latency;
        assert!(
            (rep.makespan - expect).abs() < expect * 1e-9,
            "{} vs {expect}",
            rep.makespan
        );
        assert_eq!(rep.packets, 10);
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        let net = dumbbell();
        let cfg = *net.config();
        let bytes = 64.0 * DEFAULT_MTU;
        let rep = packet_simulate(
            &net,
            &[
                FlowDemand {
                    src: 0,
                    dst: 2,
                    bytes,
                },
                FlowDemand {
                    src: 1,
                    dst: 3,
                    bytes,
                },
            ],
            DEFAULT_MTU,
        )
        .unwrap();
        // the shared switch link carries 128 packets back-to-back
        let floor = 128.0 * DEFAULT_MTU / cfg.bandwidth;
        assert!(rep.makespan > floor, "{} <= {floor}", rep.makespan);
        assert!(rep.makespan < floor * 1.2);
    }

    #[test]
    fn fluid_and_packet_models_agree_on_single_flow() {
        let net = dumbbell();
        let bytes = 100.0 * DEFAULT_MTU;
        let fluid = Simulator::builder(&net)
            .programs(vec![
                vec![Op::Send { to: 2, bytes }],
                vec![],
                vec![Op::Recv { from: 0 }],
                vec![],
            ])
            .run()
            .unwrap();
        let pkt = packet_simulate(
            &net,
            &[FlowDemand {
                src: 0,
                dst: 2,
                bytes,
            }],
            DEFAULT_MTU,
        )
        .unwrap();
        // the packet model adds per-hop serialisation the fluid model
        // folds into latency; agreement within ~5% at this size
        let ratio = pkt.makespan / fluid.time;
        assert!((0.95..1.10).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn models_agree_on_topology_ordering() {
        // hotspot traffic: a star (1 switch) beats a sparse random
        // fabric under both models
        use crate::patterns::Pattern;
        let star = orp_core::construct::star(16, 16).unwrap();
        let sparse = random_general(16, 8, 5, 3).unwrap();
        let bytes = 16.0 * DEFAULT_MTU;
        let mut res = Vec::new();
        for g in [&star, &sparse] {
            let net = Network::builder(g).build();
            let pkt = packet_simulate_pattern(&net, Pattern::UniformPermutation, bytes, 5).unwrap();
            let fl = Simulator::builder(&net)
                .programs(Pattern::UniformPermutation.programs(16, bytes, 1, 5))
                .run()
                .unwrap();
            res.push((pkt.makespan, fl.time));
        }
        assert!(res[0].0 < res[1].0, "packet: star should win");
        assert!(res[0].1 < res[1].1, "fluid: star should win");
    }

    #[test]
    fn zero_byte_flow_is_latency_only() {
        let net = dumbbell();
        let cfg = *net.config();
        let rep = packet_simulate(
            &net,
            &[FlowDemand {
                src: 0,
                dst: 2,
                bytes: 0.0,
            }],
            DEFAULT_MTU,
        )
        .unwrap();
        let expect = cfg.sw_overhead + 3.0 * cfg.hop_latency;
        assert!((rep.makespan - expect).abs() < 1e-12);
    }
}
