//! Synthetic traffic patterns — the classic interconnection-network
//! workloads (uniform random, transpose, bit-reversal, bit-complement,
//! nearest neighbour, hotspot) as rank programs, complementing the NPB
//! skeletons for microbenchmark-style topology studies.

use crate::engine::{Op, Program};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A synthetic point-to-point traffic pattern: a permutation or
/// demand-map over ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Every rank sends to one uniformly random partner (a random
    /// permutation, seeded).
    UniformPermutation,
    /// Rank `(i, j)` on the implicit √n×√n grid sends to `(j, i)`.
    Transpose,
    /// Rank `b_{k-1}…b_0` sends to the bit-reversed rank `b_0…b_{k-1}`
    /// (requires power-of-two ranks).
    BitReversal,
    /// Rank `x` sends to `!x` (bit complement; requires power of two).
    BitComplement,
    /// Rank `x` sends to `x + 1 (mod n)` — the friendliest pattern.
    NearestNeighbor,
    /// Every rank sends to rank 0 — worst-case endpoint contention.
    Hotspot,
}

impl Pattern {
    /// All patterns, for sweeps.
    pub fn all() -> [Pattern; 6] {
        [
            Pattern::UniformPermutation,
            Pattern::Transpose,
            Pattern::BitReversal,
            Pattern::BitComplement,
            Pattern::NearestNeighbor,
            Pattern::Hotspot,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::UniformPermutation => "uniform",
            Pattern::Transpose => "transpose",
            Pattern::BitReversal => "bit-reversal",
            Pattern::BitComplement => "bit-complement",
            Pattern::NearestNeighbor => "neighbor",
            Pattern::Hotspot => "hotspot",
        }
    }

    /// The destination of `rank` under this pattern (`None` = no send,
    /// e.g. the hotspot target itself).
    pub fn destination(&self, rank: u32, n: u32, seed: u64) -> Option<u32> {
        match self {
            Pattern::UniformPermutation => {
                // deterministic permutation shared by all ranks
                let mut perm: Vec<u32> = (0..n).collect();
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                perm.shuffle(&mut rng);
                let d = perm[rank as usize];
                (d != rank).then_some(d)
            }
            Pattern::Transpose => {
                let side = (n as f64).sqrt() as u32;
                if side * side != n {
                    return None;
                }
                let (i, j) = (rank / side, rank % side);
                let d = j * side + i;
                (d != rank).then_some(d)
            }
            Pattern::BitReversal => {
                if !n.is_power_of_two() {
                    return None;
                }
                let bits = n.trailing_zeros();
                let d = rank.reverse_bits() >> (32 - bits);
                (d != rank).then_some(d)
            }
            Pattern::BitComplement => {
                if !n.is_power_of_two() {
                    return None;
                }
                let d = !rank & (n - 1);
                (d != rank).then_some(d)
            }
            Pattern::NearestNeighbor => {
                let d = (rank + 1) % n;
                (d != rank).then_some(d)
            }
            Pattern::Hotspot => (rank != 0).then_some(0),
        }
    }

    /// Builds the programs: every rank sends `bytes` to its destination
    /// and receives whatever the pattern directs at it, `repeats` times.
    pub fn programs(&self, n: u32, bytes: f64, repeats: usize, seed: u64) -> Vec<Program> {
        let mut progs: Vec<Program> = vec![Vec::new(); n as usize];
        for _ in 0..repeats.max(1) {
            for r in 0..n {
                if let Some(d) = self.destination(r, n, seed) {
                    progs[r as usize].push(Op::Send { to: d, bytes });
                }
            }
            for r in 0..n {
                for src in 0..n {
                    if self.destination(src, n, seed) == Some(r) {
                        progs[r as usize].push(Op::Recv { from: src });
                    }
                }
            }
        }
        progs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::network::Network;
    use orp_core::construct::random_general;

    fn net16() -> Network {
        let g = random_general(16, 4, 8, 1).unwrap();
        Network::builder(&g).build()
    }

    #[test]
    fn destinations_are_permutations_where_claimed() {
        for p in [
            Pattern::UniformPermutation,
            Pattern::Transpose,
            Pattern::BitReversal,
            Pattern::BitComplement,
            Pattern::NearestNeighbor,
        ] {
            let mut seen = std::collections::HashSet::new();
            for r in 0..16u32 {
                if let Some(d) = p.destination(r, 16, 5) {
                    assert_ne!(d, r, "{}", p.name());
                    assert!(seen.insert(d), "{} duplicates {d}", p.name());
                }
            }
        }
    }

    #[test]
    fn transpose_is_an_involution() {
        for r in 0..16u32 {
            if let Some(d) = Pattern::Transpose.destination(r, 16, 0) {
                assert_eq!(Pattern::Transpose.destination(d, 16, 0), Some(r));
            }
        }
    }

    #[test]
    fn bit_patterns_need_power_of_two() {
        assert_eq!(Pattern::BitReversal.destination(1, 12, 0), None);
        assert_eq!(Pattern::BitComplement.destination(1, 12, 0), None);
        assert_eq!(Pattern::BitComplement.destination(0, 16, 0), Some(15));
    }

    #[test]
    fn all_patterns_simulate() {
        let net = net16();
        for p in Pattern::all() {
            let rep = Simulator::builder(&net)
                .programs(p.programs(16, 1e4, 2, 7))
                .run()
                .unwrap();
            assert!(rep.time > 0.0, "{}", p.name());
        }
    }

    #[test]
    fn hotspot_is_slowest_for_equal_bytes() {
        // all 15 senders serialise on rank 0's downlink
        let net = net16();
        let hot = Simulator::builder(&net)
            .programs(Pattern::Hotspot.programs(16, 1e6, 1, 7))
            .run()
            .unwrap()
            .time;
        let nn = Simulator::builder(&net)
            .programs(Pattern::NearestNeighbor.programs(16, 1e6, 1, 7))
            .run()
            .unwrap()
            .time;
        assert!(hot > nn * 3.0, "hotspot {hot} vs neighbor {nn}");
    }

    #[test]
    fn uniform_permutation_is_seed_deterministic() {
        let a = Pattern::UniformPermutation.destination(3, 16, 9);
        let b = Pattern::UniformPermutation.destination(3, 16, 9);
        assert_eq!(a, b);
        // different seed usually differs (check a few ranks)
        let moved = (0..16u32).any(|r| {
            Pattern::UniformPermutation.destination(r, 16, 9)
                != Pattern::UniformPermutation.destination(r, 16, 10)
        });
        assert!(moved);
    }
}
