//! MPI ranks as an event-driven simulation component.
//!
//! Each rank runs its [`Program`](crate::engine::Program) as a little
//! state machine: [`Ranks::step`] advances a rank until it either needs
//! the engine (start a compute timer, issue a flow) or blocks (send
//! awaiting delivery, receive awaiting a message). Message completion
//! re-enters through [`Ranks::deliver`]; compute timers through
//! [`Ranks::compute_done`]. Wake-ups go onto an internal FIFO the engine
//! drains — FIFO order is part of the deterministic-results contract
//! (flow ids, and with them ECMP hashes, are assigned in wake order).

use crate::engine::{Op, Program};
use orp_core::ckpt::{CkptError, Decoder, Encoder};
use std::collections::{HashMap, VecDeque};

/// What a blocked rank is waiting for — carried by
/// [`SimError::Deadlock`](crate::engine::SimError::Deadlock) and
/// [`SimError::Stalled`](crate::engine::SimError::Stalled) so the error
/// itself says *why* each rank cannot make progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitReason {
    /// Blocked in a receive with no matching message from `from`.
    Recv {
        /// Rank the receive is posted against.
        from: u32,
    },
    /// Blocked in a send whose message to `to` was never delivered.
    SendDelivery {
        /// Destination rank of the undelivered send.
        to: u32,
    },
    /// Blocked in a sendrecv: the outgoing message to `to` undelivered
    /// *and* no matching message from `from`.
    SendRecv {
        /// Destination rank of the undelivered send.
        to: u32,
        /// Rank the receive half is posted against.
        from: u32,
    },
    /// Mid-compute (cannot occur in a deadlock report — a compute phase
    /// always has a pending completion event — but a snapshot taken
    /// mid-run can observe it).
    Compute,
}

impl std::fmt::Display for WaitReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Recv { from } => write!(f, "recv from {from}"),
            Self::SendDelivery { to } => write!(f, "send to {to} undelivered"),
            Self::SendRecv { to, from } => {
                write!(f, "sendrecv (to {to} undelivered, recv from {from})")
            }
            Self::Compute => write!(f, "computing"),
        }
    }
}

/// A rank that had not finished its program when progress stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedRank {
    /// The rank id.
    pub rank: u32,
    /// What it was waiting for.
    pub reason: WaitReason,
}

/// What [`Ranks::step`] needs the engine to do before the rank can
/// continue.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Step {
    /// Rank is blocked, computing, or done — nothing to do.
    Idle,
    /// Start a compute timer of `flops` floating-point operations.
    Compute {
        /// Work to burn before [`Ranks::compute_done`].
        flops: f64,
    },
    /// Issue a message flow (the rank now blocks on its delivery).
    Send {
        /// Destination rank.
        to: u32,
        /// Payload bytes.
        bytes: f64,
    },
    /// Issue a flow *and* post a receive (MPI_Sendrecv).
    SendRecv {
        /// Destination rank of the outgoing message.
        to: u32,
        /// Outgoing payload bytes.
        bytes: f64,
        /// Source rank of the awaited incoming message.
        from: u32,
    },
}

#[derive(Debug, Default, Clone, Copy)]
struct RankCtx {
    pc: u32,
    waiting_send: bool,
    /// Destination of the blocking send (diagnostics only).
    send_to: u32,
    waiting_recv_from: u32, // u32::MAX = none
    computing: bool,
    done: bool,
}

#[derive(Debug, Default, Clone, Copy)]
struct ChannelState {
    delivered: u32,
    consumed: u32,
}

const NO_RECV: u32 = u32::MAX;

/// All ranks of a simulation plus their message-matching state.
#[derive(Debug)]
pub(crate) struct Ranks {
    programs: Vec<Program>,
    ctx: Vec<RankCtx>,
    channels: HashMap<(u32, u32), ChannelState>,
    waiting_rx: HashMap<(u32, u32), u32>,
    runnable: VecDeque<u32>,
}

impl Ranks {
    pub(crate) fn new(programs: Vec<Program>) -> Self {
        let n = programs.len();
        Self {
            programs,
            ctx: vec![
                RankCtx {
                    waiting_recv_from: NO_RECV,
                    ..Default::default()
                };
                n
            ],
            channels: HashMap::new(),
            waiting_rx: HashMap::new(),
            runnable: VecDeque::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.ctx.len()
    }

    pub(crate) fn all_done(&self) -> bool {
        self.ctx.iter().all(|c| c.done)
    }

    pub(crate) fn is_done(&self, r: u32) -> bool {
        self.ctx[r as usize].done
    }

    /// Enqueues every rank for its initial run (FIFO, rank order).
    pub(crate) fn enqueue_all(&mut self) {
        for r in 0..self.ctx.len() as u32 {
            self.runnable.push_back(r);
        }
    }

    pub(crate) fn pop_runnable(&mut self) -> Option<u32> {
        self.runnable.pop_front()
    }

    fn runnable(&self, r: u32) -> bool {
        let c = &self.ctx[r as usize];
        !c.done && !c.computing && !c.waiting_send && c.waiting_recv_from == NO_RECV
    }

    /// Advances rank `r` to its next engine-visible action. Receives are
    /// resolved internally (consuming a pending message or blocking);
    /// everything else is returned for the engine to perform.
    pub(crate) fn step(&mut self, r: u32) -> Step {
        loop {
            if !self.runnable(r) {
                return Step::Idle;
            }
            let pc = self.ctx[r as usize].pc as usize;
            let Some(&op) = self.programs[r as usize].get(pc) else {
                self.ctx[r as usize].done = true;
                return Step::Idle;
            };
            self.ctx[r as usize].pc += 1;
            match op {
                Op::Compute(flops) => {
                    self.ctx[r as usize].computing = true;
                    return Step::Compute { flops };
                }
                Op::Send { to, bytes } => {
                    let c = &mut self.ctx[r as usize];
                    c.waiting_send = true;
                    c.send_to = to;
                    return Step::Send { to, bytes };
                }
                Op::Recv { from } => {
                    self.try_recv(r, from);
                }
                Op::SendRecv { to, bytes, from } => {
                    let c = &mut self.ctx[r as usize];
                    c.waiting_send = true;
                    c.send_to = to;
                    return Step::SendRecv { to, bytes, from };
                }
            }
        }
    }

    /// Tries to consume a pending message `from → me`; blocks the rank
    /// otherwise.
    pub(crate) fn try_recv(&mut self, me: u32, from: u32) {
        let ch = self.channels.entry((from, me)).or_default();
        if ch.delivered > ch.consumed {
            ch.consumed += 1;
        } else {
            self.ctx[me as usize].waiting_recv_from = from;
            let prev = self.waiting_rx.insert((from, me), me);
            debug_assert!(prev.is_none(), "double recv on one channel");
        }
    }

    /// Marks one message from `src` delivered at `dst`, waking the
    /// blocked sender and/or receiver (sender first — wake order feeds
    /// the FIFO and is part of the determinism contract).
    pub(crate) fn deliver(&mut self, src: u32, dst: u32) {
        self.channels.entry((src, dst)).or_default().delivered += 1;
        // wake the sender (blocking send semantics)
        if let Some(c) = self.ctx.get_mut(src as usize) {
            if c.waiting_send {
                c.waiting_send = false;
                if self.runnable(src) {
                    self.runnable.push_back(src);
                }
            }
        }
        // wake a waiting receiver
        if let Some(&r) = self.waiting_rx.get(&(src, dst)) {
            let ch = self.channels.get_mut(&(src, dst)).expect("just touched");
            if ch.delivered > ch.consumed {
                ch.consumed += 1;
                self.waiting_rx.remove(&(src, dst));
                let c = &mut self.ctx[r as usize];
                debug_assert_eq!(c.waiting_recv_from, src);
                c.waiting_recv_from = NO_RECV;
                if self.runnable(r) {
                    self.runnable.push_back(r);
                }
            }
        }
    }

    /// A compute timer elapsed for rank `r`.
    pub(crate) fn compute_done(&mut self, r: u32) {
        self.ctx[r as usize].computing = false;
        if self.runnable(r) {
            self.runnable.push_back(r);
        }
    }

    /// Serializes the mutable matching state (program counters, channel
    /// delivery counts, posted receives, and the runnable FIFO in
    /// order). The programs themselves are builder configuration and
    /// are *not* serialized — the engine echoes a checksum of them.
    /// HashMaps are emitted key-sorted so identical states byte-match.
    pub(crate) fn encode_state(&self, enc: &mut Encoder) {
        enc.put_u64(self.ctx.len() as u64);
        for c in &self.ctx {
            enc.put_u32(c.pc);
            enc.put_bool(c.waiting_send);
            enc.put_u32(c.send_to);
            enc.put_u32(c.waiting_recv_from);
            enc.put_bool(c.computing);
            enc.put_bool(c.done);
        }
        let mut chans: Vec<(u32, u32, u32, u32)> = self
            .channels
            .iter()
            .map(|(&(a, b), s)| (a, b, s.delivered, s.consumed))
            .collect();
        chans.sort_unstable();
        enc.put_u64(chans.len() as u64);
        for (a, b, delivered, consumed) in chans {
            enc.put_u32(a);
            enc.put_u32(b);
            enc.put_u32(delivered);
            enc.put_u32(consumed);
        }
        let mut rx: Vec<(u32, u32, u32)> = self
            .waiting_rx
            .iter()
            .map(|(&(a, b), &r)| (a, b, r))
            .collect();
        rx.sort_unstable();
        enc.put_u64(rx.len() as u64);
        for (a, b, r) in rx {
            enc.put_u32(a);
            enc.put_u32(b);
            enc.put_u32(r);
        }
        enc.put_u64(self.runnable.len() as u64);
        for &r in &self.runnable {
            enc.put_u32(r);
        }
    }

    /// Restores state written by [`Ranks::encode_state`] over the same
    /// programs, validating every index against them.
    pub(crate) fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CkptError> {
        let bad = |what: String| CkptError::BadSection(what);
        let n = self.ctx.len();
        let stored = dec.get_u64()? as usize;
        if stored != n {
            return Err(bad(format!("ranks: {stored} contexts, expected {n}")));
        }
        let mut ctx = Vec::with_capacity(n);
        for r in 0..n {
            let c = RankCtx {
                pc: dec.get_u32()?,
                waiting_send: dec.get_bool()?,
                send_to: dec.get_u32()?,
                waiting_recv_from: dec.get_u32()?,
                computing: dec.get_bool()?,
                done: dec.get_bool()?,
            };
            if c.pc as usize > self.programs[r].len() {
                return Err(bad(format!("ranks: pc out of range for rank {r}")));
            }
            ctx.push(c);
        }
        let nc = dec.get_u64()? as usize;
        let mut channels = HashMap::with_capacity(nc);
        for _ in 0..nc {
            let key = (dec.get_u32()?, dec.get_u32()?);
            let st = ChannelState {
                delivered: dec.get_u32()?,
                consumed: dec.get_u32()?,
            };
            if st.consumed > st.delivered {
                return Err(bad("ranks: channel consumed more than delivered".into()));
            }
            channels.insert(key, st);
        }
        let nr = dec.get_u64()? as usize;
        let mut waiting_rx = HashMap::with_capacity(nr);
        for _ in 0..nr {
            let key = (dec.get_u32()?, dec.get_u32()?);
            let r = dec.get_u32()?;
            if r as usize >= n {
                return Err(bad("ranks: waiting receiver out of range".into()));
            }
            waiting_rx.insert(key, r);
        }
        let nq = dec.get_u64()? as usize;
        let mut runnable = VecDeque::with_capacity(nq);
        for _ in 0..nq {
            let r = dec.get_u32()?;
            if r as usize >= n {
                return Err(bad("ranks: runnable rank out of range".into()));
            }
            runnable.push_back(r);
        }
        self.ctx = ctx;
        self.channels = channels;
        self.waiting_rx = waiting_rx;
        self.runnable = runnable;
        Ok(())
    }

    /// Every unfinished rank with the reason it cannot progress, in
    /// rank order — the payload of the deadlock/stall errors.
    pub(crate) fn blocked(&self) -> Vec<BlockedRank> {
        (0..self.ctx.len() as u32)
            .filter(|&r| !self.ctx[r as usize].done)
            .map(|r| {
                let c = &self.ctx[r as usize];
                let reason = match (c.waiting_send, c.waiting_recv_from != NO_RECV) {
                    (true, true) => WaitReason::SendRecv {
                        to: c.send_to,
                        from: c.waiting_recv_from,
                    },
                    (true, false) => WaitReason::SendDelivery { to: c.send_to },
                    (false, true) => WaitReason::Recv {
                        from: c.waiting_recv_from,
                    },
                    (false, false) => WaitReason::Compute,
                };
                BlockedRank { rank: r, reason }
            })
            .collect()
    }
}
