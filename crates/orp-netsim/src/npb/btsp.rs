//! BT and SP — the multi-partition block-tridiagonal / scalar-
//! pentadiagonal solvers.
//!
//! Both decompose a 102³ (Class B; A: 64³) grid over a *square* process
//! grid using the multi-partition scheme: every ADI iteration performs
//! three directional line-solve sweeps (x, y, z); each sweep pipelines
//! cell boundary faces along a row (x), a column (y), or the wrapped
//! diagonal (z) of the process grid. BT moves 5×5 block faces, SP scalar
//! faces — BT's messages are ≈5× larger, its compute ≈2× heavier.

use super::{grid2, rank2, Class};
use crate::engine::Program;
use crate::mpi::ProgramBuilder;

/// BT vs SP flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Block-tridiagonal: 5×5 block faces, heavier compute.
    Bt,
    /// Scalar-pentadiagonal: scalar faces, lighter compute.
    Sp,
}

/// Builds BT/SP programs for `iters` ADI iterations.
pub fn program(n: u32, class: Class, iters: usize, variant: Variant) -> Vec<Program> {
    let grid: f64 = match class {
        Class::A => 64.0,
        Class::B => 102.0,
    };
    let (rows, cols) = grid2(n);
    // multi-partition: each rank owns `rows` cells stacked diagonally;
    // the per-sweep face is (grid/√P)² values × variables
    let cell = grid / rows as f64;
    let (vars, face_vals, flops_per_point) = match variant {
        Variant::Bt => (5.0, 5.0 * 5.0, 220.0),
        Variant::Sp => (5.0, 5.0, 120.0),
    };
    let face_bytes = cell * cell * face_vals * 8.0;
    let sweep_flops = grid.powi(3) / n as f64 * flops_per_point / 3.0;
    let mut b = ProgramBuilder::new(n);
    for _ in 0..iters.max(1) {
        // x-sweep: pipeline along process rows; `rows` cells per rank
        // means each rank forwards `rows` faces to its east neighbour
        for _cellstep in 0..rows {
            for i in 0..rows {
                for j in 0..cols {
                    let r = rank2(i, j, cols);
                    let east = rank2(i, (j + 1) % cols, cols);
                    b.compute(r, sweep_flops / rows as f64);
                    b.exchange(r, east, face_bytes);
                }
            }
        }
        // y-sweep: along columns
        for _cellstep in 0..rows {
            for i in 0..rows {
                for j in 0..cols {
                    let r = rank2(i, j, cols);
                    let south = rank2((i + 1) % rows, j, cols);
                    b.compute(r, sweep_flops / rows as f64);
                    b.exchange(r, south, face_bytes);
                }
            }
        }
        // z-sweep: along the wrapped diagonal of the process grid
        for _cellstep in 0..rows {
            for i in 0..rows {
                for j in 0..cols {
                    let r = rank2(i, j, cols);
                    let diag = rank2((i + 1) % rows, (j + 1) % cols, cols);
                    b.compute(r, sweep_flops / rows as f64);
                    b.exchange(r, diag, face_bytes);
                }
            }
        }
        // residual norm over the `vars` variables
        b.allreduce(vars * 8.0);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::network::Network;
    use orp_core::construct::random_general;

    fn sim(variant: Variant) -> crate::engine::SimReport {
        let g = random_general(16, 4, 8, 1).unwrap();
        let net = Network::builder(&g).build();
        Simulator::builder(&net)
            .programs(program(16, Class::A, 1, variant))
            .run()
            .unwrap()
    }

    #[test]
    fn bt_and_sp_complete() {
        let bt = sim(Variant::Bt);
        let sp = sim(Variant::Sp);
        assert!(bt.time > 0.0 && sp.time > 0.0);
    }

    #[test]
    fn bt_moves_more_data_than_sp() {
        let bt = sim(Variant::Bt);
        let sp = sim(Variant::Sp);
        assert!(bt.bytes > sp.bytes * 3.0, "bt {} sp {}", bt.bytes, sp.bytes);
        assert!(bt.flops > sp.flops);
    }

    #[test]
    fn sweeps_touch_all_three_directions() {
        let rep = sim(Variant::Sp);
        // 3 sweeps × rows cellsteps × 16 ranks × 2 flows per exchange
        assert_eq!(rep.flows, (3 * 4 * 16 * 2) as u64 + 64);
    }
}
