//! LU — the SSOR wavefront solver.
//!
//! Class B factorises a 102³ grid (A: 64³) with 250 time steps. The ranks
//! tile the x–y plane in a 2-D grid; each SSOR sweep marches a *wavefront*
//! of z-planes from the north-west corner to the south-east (then back for
//! the upper triangle): a rank receives boundary rows from its north and
//! west neighbours, relaxes its block, and forwards south/east. Messages
//! are thin (one pencil of 5 variables), so LU measures pipeline latency
//! rather than bandwidth.
//!
//! Skeleton knob: successive z-planes are aggregated (`PLANE_AGG`) to
//! bound the event count; the pipeline depth in ranks is preserved.

use super::{coords2, grid2, rank2, Class};
use crate::engine::{Op, Program};
use crate::mpi::ProgramBuilder;

/// z-planes aggregated into one pipeline stage.
const PLANE_AGG: u32 = 8;

/// Flops per grid point per SSOR sweep (block 5×5 solves ≈ 150 ops).
const FLOPS_PER_POINT: f64 = 150.0;

/// Builds the LU programs for `iters` time steps.
pub fn program(n: u32, class: Class, iters: usize) -> Vec<Program> {
    let grid: f64 = match class {
        Class::A => 64.0,
        Class::B => 102.0,
    };
    let (rows, cols) = grid2(n);
    let nz = grid as u32;
    let stages = (nz / PLANE_AGG).max(1);
    let local_x = grid / rows as f64;
    let local_y = grid / cols as f64;
    // pencil: 5 variables × 8 bytes × local edge × aggregated planes
    let msg_x = 5.0 * 8.0 * local_y * PLANE_AGG as f64;
    let msg_y = 5.0 * 8.0 * local_x * PLANE_AGG as f64;
    let stage_flops = local_x * local_y * PLANE_AGG as f64 * FLOPS_PER_POINT;
    let mut b = ProgramBuilder::new(n);
    for _ in 0..iters.max(1) {
        // lower-triangular sweep: NW → SE
        for _ in 0..stages {
            for r in 0..n {
                let (i, j) = coords2(r, cols);
                if i > 0 {
                    b.push_recv(r, rank2(i - 1, j, cols));
                }
                if j > 0 {
                    b.push_recv(r, rank2(i, j - 1, cols));
                }
                b.compute(r, stage_flops);
                if i + 1 < rows {
                    b.push_send(r, rank2(i + 1, j, cols), msg_x);
                }
                if j + 1 < cols {
                    b.push_send(r, rank2(i, j + 1, cols), msg_y);
                }
            }
        }
        // upper-triangular sweep: SE → NW
        for _ in 0..stages {
            for r in 0..n {
                let (i, j) = coords2(r, cols);
                if i + 1 < rows {
                    b.push_recv(r, rank2(i + 1, j, cols));
                }
                if j + 1 < cols {
                    b.push_recv(r, rank2(i, j + 1, cols));
                }
                b.compute(r, stage_flops);
                if i > 0 {
                    b.push_send(r, rank2(i - 1, j, cols), msg_x);
                }
                if j > 0 {
                    b.push_send(r, rank2(i, j - 1, cols), msg_y);
                }
            }
        }
        // RHS + residual norm
        b.compute_all(local_x * local_y * grid * 20.0);
        b.allreduce(40.0);
    }
    b.build()
}

/// Wavefront helpers: LU needs raw sends/recvs in pipeline order, which
/// the [`ProgramBuilder`] exposes via these thin extensions.
trait Wavefront {
    fn push_send(&mut self, r: u32, to: u32, bytes: f64);
    fn push_recv(&mut self, r: u32, from: u32);
}

impl Wavefront for ProgramBuilder {
    fn push_send(&mut self, r: u32, to: u32, bytes: f64) {
        self.raw(r, Op::Send { to, bytes });
    }
    fn push_recv(&mut self, r: u32, from: u32) {
        self.raw(r, Op::Recv { from });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::network::Network;
    use orp_core::construct::random_general;

    #[test]
    fn lu_wavefront_completes() {
        let g = random_general(16, 4, 8, 1).unwrap();
        let net = Network::builder(&g).build();
        let rep = Simulator::builder(&net)
            .programs(program(16, Class::A, 1))
            .run()
            .unwrap();
        assert!(rep.time > 0.0);
        // 4x4 grid, 8 stages per sweep, 2 sweeps: interior links carry
        // 2 messages per rank per stage on average
        assert!(rep.flows > 100);
    }

    #[test]
    fn pipeline_depth_shows_in_time() {
        // wavefront time ≈ (stages + pipeline depth) × stage time:
        // strictly more than the embarrassing lower bound of stage sums
        let g = random_general(16, 4, 8, 1).unwrap();
        let net = Network::builder(&g).build();
        let rep = Simulator::builder(&net)
            .programs(program(16, Class::A, 1))
            .run()
            .unwrap();
        let stages = 64 / PLANE_AGG;
        let stage_flops = (64.0 / 4.0) * (64.0 / 4.0) * PLANE_AGG as f64 * FLOPS_PER_POINT;
        let sweep_min = 2.0 * stages as f64 * stage_flops / 100e9;
        assert!(rep.time > sweep_min, "{} vs {sweep_min}", rep.time);
    }
}
