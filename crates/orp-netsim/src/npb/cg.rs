//! CG — Conjugate Gradient.
//!
//! Class B runs 75 outer iterations (A: 15) of CG on an `NA = 75000`
//! (A: 14000) sparse system, on a 2-D process grid. Each inner CG step
//! does a distributed mat-vec: a reduction across the process *row*
//! (recursive halving of vector segments), an exchange with the
//! *transpose* partner, plus two scalar allreduces. The transpose
//! exchange is the "irregular" long-range traffic the paper highlights
//! when CG runs on topologies whose locality assumptions it violates.

use super::{grid2, rank2, Class};
use crate::engine::Program;
use crate::mpi::ProgramBuilder;

/// Builds the CG programs for `iters` inner CG steps.
pub fn program(n: u32, class: Class, iters: usize) -> Vec<Program> {
    let (na, nonzer): (f64, f64) = match class {
        Class::A => (14000.0, 11.0),
        Class::B => (75000.0, 13.0),
    };
    let (rows, cols) = grid2(n);
    let seg = na / rows as f64; // vector segment per process row
    let seg_bytes = seg * 8.0;
    let nnz_per_rank = na * (nonzer + 1.0) * nonzer / n as f64;
    let mut b = ProgramBuilder::new(n);
    for _ in 0..iters.max(1) {
        // local mat-vec
        b.compute_all(2.0 * nnz_per_rank);
        // sum partial results across each process row: recursive halving —
        // each stage exchanges half of the remaining piece (NPB CG's
        // reduce_exch/reduce_send loops), so sizes go seg/2, seg/4, …
        let mut span = cols;
        let mut chunk = seg_bytes / 2.0;
        while span > 1 {
            let half = span / 2;
            for i in 0..rows {
                for j in 0..cols {
                    let r = rank2(i, j, cols);
                    let pos = j % span;
                    let partner_j = if pos < half { j + half } else { j - half };
                    let partner = rank2(i, partner_j, cols);
                    if r < partner {
                        b.exchange(r, partner, chunk);
                    }
                }
            }
            span = half;
            chunk /= 2.0;
        }
        // transpose exchange: (i, j) swaps its fully reduced na/np piece
        // with (j, i) — small and long-distance in rank space, the
        // "irregular communication" the paper blames for fat-tree CG
        let piece = seg_bytes / cols as f64;
        if rows == cols {
            for i in 0..rows {
                for j in 0..cols {
                    if i < j {
                        b.exchange(rank2(i, j, cols), rank2(j, i, cols), piece);
                    }
                }
            }
        }
        // two dot products
        b.allreduce(8.0);
        b.allreduce(8.0);
        // axpy updates
        b.compute_all(4.0 * na / rows as f64);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::network::Network;
    use orp_core::construct::random_general;

    #[test]
    fn cg_completes_on_square_grid() {
        let g = random_general(16, 4, 8, 1).unwrap();
        let net = Network::builder(&g).build();
        let rep = Simulator::builder(&net)
            .programs(program(16, Class::A, 2))
            .run()
            .unwrap();
        assert!(rep.time > 0.0);
        assert!(rep.flows > 0);
    }

    #[test]
    fn transpose_traffic_present_on_square_grids() {
        let g = random_general(16, 4, 8, 1).unwrap();
        let net = Network::builder(&g).build();
        let rep = Simulator::builder(&net)
            .programs(program(16, Class::A, 1))
            .run()
            .unwrap();
        // transpose: C(4,2)·... at least the off-diagonal pairs exchange
        assert!(rep.flows >= 12);
    }

    #[test]
    fn class_b_has_bigger_segments() {
        let g = random_general(16, 4, 8, 1).unwrap();
        let net = Network::builder(&g).build();
        let a = Simulator::builder(&net)
            .programs(program(16, Class::A, 1))
            .run()
            .unwrap();
        let b = Simulator::builder(&net)
            .programs(program(16, Class::B, 1))
            .run()
            .unwrap();
        assert!(b.bytes > a.bytes * 3.0);
    }
}
