//! NAS Parallel Benchmark communication skeletons (§6.2.1).
//!
//! The paper runs NPB 3.3.1 (MPI) under SimGrid — Class A for IS and FT,
//! Class B for the others — on 1024 processes. We reproduce each
//! benchmark as a *communication skeleton*: the published communication
//! pattern and per-iteration message volumes of the real kernels,
//! interleaved with `Compute` phases sized from the kernels' operation
//! counts. On a fixed 100 GFlops host model this preserves exactly what
//! the evaluation measures — how topology changes communication time —
//! while replacing the numerical payload with calibrated flop counts.
//!
//! Skeleton fidelity notes (per benchmark) live in the submodules;
//! iteration counts are scaled down (`iters` knob) because NPB
//! performance is steady-state per iteration — documented in
//! EXPERIMENTS.md.

pub mod btsp;
pub mod cg;
pub mod ep;
pub mod ft;
pub mod is;
pub mod lu;
pub mod mg;

use crate::engine::Program;

/// NPB problem classes used by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Class A (used for IS and FT).
    A,
    /// Class B (used for the other kernels).
    B,
}

/// The benchmarks of Figs. 9a/10a/11a.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Benchmark {
    /// Embarrassingly Parallel: random-number statistics, allreduce-only.
    Ep,
    /// Integer Sort: bucketed key histogram + alltoallv redistribution.
    Is,
    /// 3-D FFT: compute + full alltoall transposes.
    Ft,
    /// Multi-Grid: V-cycles of hierarchical halo exchanges.
    Mg,
    /// Conjugate Gradient: row/column reductions on a 2-D process grid.
    Cg,
    /// LU solver: 2-D wavefront pipeline (SSOR).
    Lu,
    /// Block-Tridiagonal solver: multi-partition directional sweeps.
    Bt,
    /// Scalar-Pentadiagonal solver: like BT with thinner faces.
    Sp,
}

impl Benchmark {
    /// All benchmarks in the paper's plotting order.
    pub fn all() -> [Benchmark; 8] {
        use Benchmark::*;
        [Bt, Cg, Ep, Ft, Is, Lu, Mg, Sp]
    }

    /// The benchmarks shown in the fat-tree comparison (Fig. 11a omits
    /// IS and FT "due to computational complexity").
    pub fn fig11_subset() -> [Benchmark; 6] {
        use Benchmark::*;
        [Bt, Cg, Ep, Lu, Mg, Sp]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Ep => "EP",
            Benchmark::Is => "IS",
            Benchmark::Ft => "FT",
            Benchmark::Mg => "MG",
            Benchmark::Cg => "CG",
            Benchmark::Lu => "LU",
            Benchmark::Bt => "BT",
            Benchmark::Sp => "SP",
        }
    }

    /// The class the paper uses for this benchmark.
    pub fn paper_class(&self) -> Class {
        match self {
            Benchmark::Is | Benchmark::Ft => Class::A,
            _ => Class::B,
        }
    }

    /// Builds the per-rank programs for `n` ranks and `iters` simulated
    /// iterations.
    ///
    /// # Panics
    /// Panics if `n` is not a power of four (the NPB requirement the
    /// paper cites) for benchmarks needing square/cubic grids.
    pub fn build(&self, n: u32, class: Class, iters: usize) -> Vec<Program> {
        match self {
            Benchmark::Ep => ep::program(n, class),
            Benchmark::Is => is::program(n, class, iters),
            Benchmark::Ft => ft::program(n, class, iters),
            Benchmark::Mg => mg::program(n, class, iters),
            Benchmark::Cg => cg::program(n, class, iters),
            Benchmark::Lu => lu::program(n, class, iters),
            Benchmark::Bt => btsp::program(n, class, iters, btsp::Variant::Bt),
            Benchmark::Sp => btsp::program(n, class, iters, btsp::Variant::Sp),
        }
    }
}

/// Splits `n` ranks into a near-square 2-D grid `(rows, cols)` with
/// `rows·cols = n` and `rows ≤ cols`.
pub fn grid2(n: u32) -> (u32, u32) {
    let mut rows = (n as f64).sqrt() as u32;
    while rows > 1 && !n.is_multiple_of(rows) {
        rows -= 1;
    }
    (rows.max(1), n / rows.max(1))
}

/// Splits `n` ranks into a near-cubic 3-D grid `(px, py, pz)`.
pub fn grid3(n: u32) -> (u32, u32, u32) {
    let mut px = (n as f64).cbrt().round() as u32;
    while px > 1 && !n.is_multiple_of(px) {
        px -= 1;
    }
    let px = px.max(1);
    let (py, pz) = grid2(n / px);
    (px, py, pz)
}

/// Rank of 2-D grid coordinates.
#[inline]
pub fn rank2(i: u32, j: u32, cols: u32) -> u32 {
    i * cols + j
}

/// 2-D grid coordinates of a rank.
#[inline]
pub fn coords2(r: u32, cols: u32) -> (u32, u32) {
    (r / cols, r % cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2_factors() {
        assert_eq!(grid2(1024), (32, 32));
        assert_eq!(grid2(16), (4, 4));
        assert_eq!(grid2(12), (3, 4));
        assert_eq!(grid2(7), (1, 7));
    }

    #[test]
    fn grid3_factors() {
        let (a, b, c) = grid3(1024);
        assert_eq!(a * b * c, 1024);
        assert!(a >= 8 && b >= 8 && c >= 8, "{a}x{b}x{c}");
        let (a, b, c) = grid3(64);
        assert_eq!((a, b, c), (4, 4, 4));
    }

    #[test]
    fn coords_roundtrip() {
        let cols = 7;
        for r in 0..21 {
            let (i, j) = coords2(r, cols);
            assert_eq!(rank2(i, j, cols), r);
        }
    }

    #[test]
    fn paper_classes() {
        assert_eq!(Benchmark::Is.paper_class(), Class::A);
        assert_eq!(Benchmark::Ft.paper_class(), Class::A);
        assert_eq!(Benchmark::Mg.paper_class(), Class::B);
    }

    #[test]
    fn all_benchmarks_build_small() {
        for b in Benchmark::all() {
            let progs = b.build(16, b.paper_class(), 1);
            assert_eq!(progs.len(), 16, "{}", b.name());
            assert!(progs.iter().any(|p| !p.is_empty()), "{}", b.name());
        }
    }
}
