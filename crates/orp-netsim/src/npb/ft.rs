//! FT — 3-D Fast Fourier Transform.
//!
//! Class A evolves a 256×256×128 complex grid for 6 iterations (B:
//! 512×256×256, 20). Each iteration performs a forward/inverse 3-D FFT
//! via 1-D FFT passes separated by a **global transpose — a full
//! alltoall** of the entire 16-byte-per-point array. FT is the paper's
//! canonical all-to-all workload; together with IS it is omitted from
//! Fig. 11a.

use super::Class;
use crate::engine::Program;
use crate::mpi::ProgramBuilder;

/// Builds the FT programs for `iters` simulated iterations.
pub fn program(n: u32, class: Class, iters: usize) -> Vec<Program> {
    let (nx, ny, nz) = match class {
        Class::A => (256.0, 256.0, 128.0),
        Class::B => (512.0, 256.0, 256.0),
    };
    let points: f64 = nx * ny * nz;
    let total_bytes = points * 16.0; // complex double
    let fft_flops = 5.0 * points * points.log2(); // classic 5 N log N
    let mut b = ProgramBuilder::new(n);
    // initial forward FFT incl. transpose
    for it in 0..iters.max(1) {
        // evolve + two local 1-D FFT passes
        b.compute_all((fft_flops * 2.0 / 3.0 + 6.0 * points) / n as f64);
        // the distributed transpose: every pair exchanges its block
        let pair_bytes = total_bytes / (n as f64 * n as f64);
        b.alltoall(pair_bytes);
        // remaining 1-D pass
        b.compute_all(fft_flops / 3.0 / n as f64);
        // checksum
        b.allreduce(16.0);
        let _ = it;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::network::Network;
    use orp_core::construct::random_general;

    #[test]
    fn ft_transposes_the_grid() {
        let g = random_general(16, 4, 8, 1).unwrap();
        let net = Network::builder(&g).build();
        let rep = Simulator::builder(&net)
            .programs(program(16, Class::A, 1))
            .run()
            .unwrap();
        let grid_bytes = 256.0 * 256.0 * 128.0 * 16.0;
        assert!(rep.bytes > grid_bytes * 0.9);
        assert!(rep.bytes < grid_bytes * 1.2);
        assert!(rep.flops > 0.0);
    }

    #[test]
    fn class_b_is_heavier() {
        let g = random_general(16, 4, 8, 1).unwrap();
        let net = Network::builder(&g).build();
        let a = Simulator::builder(&net)
            .programs(program(16, Class::A, 1))
            .run()
            .unwrap();
        let b = Simulator::builder(&net)
            .programs(program(16, Class::B, 1))
            .run()
            .unwrap();
        assert!(b.bytes > a.bytes * 3.0);
        assert!(b.time > a.time);
    }
}
