//! MG — Multi-Grid.
//!
//! Class B relaxes a 256³ grid with 20 V-cycles (A: 4). The ranks form a
//! 3-D process grid; every V-cycle exchanges ghost faces with the six
//! axis neighbours at *every* grid level — faces shrink 4× per level, so
//! coarse levels are pure latency. The restriction to coarse grids is
//! also the source of the paper's "long-distance communication" remark:
//! on a torus, coarse-level neighbours in the *problem* may sit many
//! switch hops apart. We keep the full process grid at coarse levels and
//! shrink the messages, which preserves the latency-bound character.

use super::{grid3, Class};
use crate::engine::Program;
use crate::mpi::ProgramBuilder;

/// Flops per grid point per relaxation (27-point stencil ≈ 30 ops).
const FLOPS_PER_POINT: f64 = 30.0;

/// Builds the MG programs for `iters` V-cycles.
pub fn program(n: u32, class: Class, iters: usize) -> Vec<Program> {
    let grid: f64 = 256.0;
    let levels: u32 = match class {
        Class::A => 8,
        Class::B => 8,
    };
    let (px, py, pz) = grid3(n);
    let rank = |x: u32, y: u32, z: u32| (x * py + y) * pz + z;
    let mut b = ProgramBuilder::new(n);
    for _ in 0..iters.max(1) {
        // one V-cycle: down the hierarchy and back up
        let mut level_list: Vec<u32> = (0..levels).collect();
        level_list.extend((0..levels.saturating_sub(1)).rev());
        for &l in &level_list {
            let pts = grid / 2f64.powi(l as i32);
            // Coarse levels have fewer points per dimension than the
            // process grid: only a strided subgrid of processes stays
            // active, and its neighbours sit `stride` ranks apart — the
            // paper's "long-distance communication" in MG.
            let qx = (px as f64).min(pts).max(1.0) as u32;
            let qy = (py as f64).min(pts).max(1.0) as u32;
            let qz = (pz as f64).min(pts).max(1.0) as u32;
            let (sx, sy, sz) = (px / qx, py / qy, pz / qz);
            let fx = (pts / qy as f64).max(1.0) * (pts / qz as f64).max(1.0);
            let fy = (pts / qx as f64).max(1.0) * (pts / qz as f64).max(1.0);
            let fz = (pts / qx as f64).max(1.0) * (pts / qy as f64).max(1.0);
            let local_pts = (pts / qx as f64).max(1.0)
                * (pts / qy as f64).max(1.0)
                * (pts / qz as f64).max(1.0);
            // only active ranks compute at this level
            for x in 0..qx {
                for y in 0..qy {
                    for z in 0..qz {
                        b.compute(rank(x * sx, y * sy, z * sz), local_pts * FLOPS_PER_POINT);
                    }
                }
            }
            // ghost-face exchange with the six periodic neighbours of the
            // active subgrid, one axis at a time (each pair appended once)
            for x in 0..qx {
                for y in 0..qy {
                    for z in 0..qz {
                        let r = rank(x * sx, y * sy, z * sz);
                        if qx > 1 {
                            b.exchange(r, rank((x + 1) % qx * sx, y * sy, z * sz), fx * 8.0);
                        }
                        if qy > 1 {
                            b.exchange(r, rank(x * sx, (y + 1) % qy * sy, z * sz), fy * 8.0);
                        }
                        if qz > 1 {
                            b.exchange(r, rank(x * sx, y * sy, (z + 1) % qz * sz), fz * 8.0);
                        }
                    }
                }
            }
        }
        // residual norm
        b.allreduce(8.0);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::network::Network;
    use orp_core::construct::random_general;

    #[test]
    fn mg_runs_a_v_cycle() {
        let g = random_general(16, 4, 8, 1).unwrap();
        let net = Network::builder(&g).build();
        let rep = Simulator::builder(&net)
            .programs(program(16, Class::B, 1))
            .run()
            .unwrap();
        assert!(rep.time > 0.0);
        // 15 levels traversed (8 down + 7 up), exchanges at each
        assert!(rep.flows > 15 * 16);
    }

    #[test]
    fn fine_levels_dominate_volume() {
        let g = random_general(16, 4, 8, 1).unwrap();
        let net = Network::builder(&g).build();
        let rep = Simulator::builder(&net)
            .programs(program(16, Class::B, 1))
            .run()
            .unwrap();
        // finest-level faces: 256²/(…) — volume should far exceed a
        // coarse-only estimate
        assert!(rep.bytes > 1e6);
    }
}
