//! EP — Embarrassingly Parallel.
//!
//! Generates `2^M` Gaussian pairs (Class A: `M = 28`, B: `M = 30`) with
//! essentially no communication: the only network traffic is three small
//! allreduces of the partial sums and the per-annulus counts at the end.
//! Any topology should score nearly identically here — a useful control.

use super::Class;
use crate::engine::Program;
use crate::mpi::ProgramBuilder;

/// Flops charged per generated pair (two randoms, log, sqrt ≈ 25 ops in
/// the NPB operation counting).
const FLOPS_PER_PAIR: f64 = 25.0;

/// Builds the EP programs (EP has no iteration structure to scale).
pub fn program(n: u32, class: Class) -> Vec<Program> {
    let m: u32 = match class {
        Class::A => 28,
        Class::B => 30,
    };
    let pairs = 2f64.powi(m as i32);
    let mut b = ProgramBuilder::new(n);
    b.compute_all(pairs * FLOPS_PER_PAIR / n as f64);
    // sx, sy sums (2 doubles) and the 10 annulus counts
    b.allreduce(16.0);
    b.allreduce(80.0);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::network::Network;
    use orp_core::construct::random_general;

    #[test]
    fn ep_is_compute_dominated() {
        let g = random_general(16, 4, 8, 1).unwrap();
        let net = Network::builder(&g).build();
        let rep = Simulator::builder(&net)
            .programs(program(16, Class::A))
            .run()
            .unwrap();
        let compute_time = 2f64.powi(28) * FLOPS_PER_PAIR / 16.0 / 100e9;
        assert!(rep.time >= compute_time);
        assert!(rep.time < compute_time * 1.1, "comm should be negligible");
    }

    #[test]
    fn class_b_is_4x_class_a() {
        let a = program(16, Class::A);
        let b = program(16, Class::B);
        // same op count, larger compute constants
        assert_eq!(a[0].len(), b[0].len());
    }
}
