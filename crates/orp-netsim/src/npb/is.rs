//! IS — Integer Sort.
//!
//! Class A sorts `N = 2^23` keys (B: `2^25`) in `2^10` (A) / `2^21`-range
//! buckets over 10 iterations. Per iteration the real kernel does a local
//! histogram, an allreduce of the bucket counts, an **alltoallv**
//! redistribution of the keys (uniform keys → near-uniform pair sizes),
//! and a local ranking pass. The alltoallv is what makes IS
//! latency/bisection hungry — the paper calls out its "random memory
//! access" profile as a case where low h-ASPL wins.

use super::Class;
use crate::engine::Program;
use crate::mpi::ProgramBuilder;

/// Flops charged per key per pass (bucket index + rank updates).
const FLOPS_PER_KEY: f64 = 8.0;

/// Builds the IS programs for `iters` simulated iterations.
pub fn program(n: u32, class: Class, iters: usize) -> Vec<Program> {
    let total_keys: f64 = match class {
        Class::A => (1u64 << 23) as f64,
        Class::B => (1u64 << 25) as f64,
    };
    let buckets: f64 = match class {
        Class::A => 1024.0,
        Class::B => 2048.0,
    };
    let keys_per_rank = total_keys / n as f64;
    // uniform keys: every rank sends ~keys/n to every other rank, 4 B each
    let pair_bytes = keys_per_rank / n as f64 * 4.0;
    let mut b = ProgramBuilder::new(n);
    for _ in 0..iters.max(1) {
        b.compute_all(keys_per_rank * FLOPS_PER_KEY);
        b.allreduce(buckets * 4.0);
        b.alltoallv(|_, _| pair_bytes);
        b.compute_all(keys_per_rank * FLOPS_PER_KEY / 2.0);
        // partial verification
        b.allreduce(40.0);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::network::Network;
    use orp_core::construct::random_general;

    #[test]
    fn is_moves_the_whole_key_array_per_iteration() {
        let g = random_general(16, 4, 8, 1).unwrap();
        let net = Network::builder(&g).build();
        let rep = Simulator::builder(&net)
            .programs(program(16, Class::A, 1))
            .run()
            .unwrap();
        let keys_bytes = (1u64 << 23) as f64 * 4.0;
        // alltoallv moves (n-1)/n of the array, plus the allreduces
        assert!(
            rep.bytes > keys_bytes * 0.9,
            "{} vs {keys_bytes}",
            rep.bytes
        );
        assert!(rep.bytes < keys_bytes * 1.6);
    }

    #[test]
    fn iterations_scale_linearly() {
        let p1 = program(16, Class::A, 1);
        let p3 = program(16, Class::A, 3);
        assert_eq!(p3[0].len(), 3 * p1[0].len());
    }
}
