//! An MPI-like layer: per-rank program construction with the classic
//! collective algorithms (binomial broadcast/reduce, recursive-doubling
//! allreduce, ring allgather, pairwise-exchange alltoall, recursive
//! halving reduce-scatter, dissemination barrier) — the algorithm family
//! MVAPICH2 (which the paper's SimGrid setup emulates) uses at these
//! message sizes.

use crate::engine::{Op, Program};

/// Tiny control-message payload (barrier tokens etc.), bytes.
const CTRL_BYTES: f64 = 8.0;

/// Builds one [`Program`] per rank, appending collectives and
/// point-to-point phases in program order.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    progs: Vec<Program>,
}

impl ProgramBuilder {
    /// `n` empty rank programs.
    pub fn new(n: u32) -> Self {
        Self {
            progs: vec![Vec::new(); n as usize],
        }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> u32 {
        self.progs.len() as u32
    }

    /// Finishes construction.
    pub fn build(self) -> Vec<Program> {
        self.progs
    }

    fn push(&mut self, r: u32, op: Op) {
        self.progs[r as usize].push(op);
    }

    /// Appends a raw [`Op`] to one rank — escape hatch for pipelined
    /// patterns (e.g. the LU wavefront) that no collective covers.
    pub fn raw(&mut self, r: u32, op: Op) {
        self.push(r, op);
    }

    /// Local compute on one rank.
    pub fn compute(&mut self, r: u32, flops: f64) {
        if flops > 0.0 {
            self.push(r, Op::Compute(flops));
        }
    }

    /// The same local compute on every rank (a BSP superstep).
    pub fn compute_all(&mut self, flops_per_rank: f64) {
        for r in 0..self.num_ranks() {
            self.compute(r, flops_per_rank);
        }
    }

    /// Blocking point-to-point message.
    pub fn p2p(&mut self, src: u32, dst: u32, bytes: f64) {
        if src == dst {
            return;
        }
        self.push(src, Op::Send { to: dst, bytes });
        self.push(dst, Op::Recv { from: src });
    }

    /// Paired exchange on both ranks (each sends `bytes` to the other).
    pub fn exchange(&mut self, a: u32, b: u32, bytes: f64) {
        if a == b {
            return;
        }
        self.push(
            a,
            Op::SendRecv {
                to: b,
                bytes,
                from: b,
            },
        );
        self.push(
            b,
            Op::SendRecv {
                to: a,
                bytes,
                from: a,
            },
        );
    }

    /// Dissemination barrier: ⌈log₂ n⌉ rounds of staggered token
    /// exchanges.
    pub fn barrier(&mut self) {
        let n = self.num_ranks();
        if n < 2 {
            return;
        }
        let mut k = 1u32;
        while k < n {
            for r in 0..n {
                let to = (r + k) % n;
                let from = (r + n - k) % n;
                self.push(
                    r,
                    Op::SendRecv {
                        to,
                        bytes: CTRL_BYTES,
                        from,
                    },
                );
            }
            k <<= 1;
        }
    }

    /// Binomial-tree broadcast of `bytes` from `root`.
    pub fn bcast(&mut self, root: u32, bytes: f64) {
        let n = self.num_ranks();
        if n < 2 {
            return;
        }
        for r in 0..n {
            let rel = (r + n - root) % n;
            let mut mask = 1u32;
            while mask < n {
                if rel & mask != 0 {
                    let src = (rel - mask + root) % n;
                    self.push(r, Op::Recv { from: src });
                    break;
                }
                mask <<= 1;
            }
            mask >>= 1;
            while mask > 0 {
                if rel + mask < n {
                    let dst = (rel + mask + root) % n;
                    self.push(r, Op::Send { to: dst, bytes });
                }
                mask >>= 1;
            }
        }
    }

    /// Binomial-tree reduction of `bytes` onto `root`; each combine step
    /// costs `bytes/8` flops (one op per double).
    pub fn reduce(&mut self, root: u32, bytes: f64) {
        let n = self.num_ranks();
        if n < 2 {
            return;
        }
        for r in 0..n {
            let rel = (r + n - root) % n;
            let mut mask = 1u32;
            while mask < n {
                if rel & mask != 0 {
                    let dst = (rel - mask + root) % n;
                    self.push(r, Op::Send { to: dst, bytes });
                    break;
                } else if rel + mask < n {
                    let src = (rel + mask + root) % n;
                    self.push(r, Op::Recv { from: src });
                    self.compute(r, bytes / 8.0);
                }
                mask <<= 1;
            }
        }
    }

    /// Allreduce of `bytes`: recursive doubling when `n` is a power of
    /// two (the common HPC case), otherwise reduce-to-0 + broadcast.
    pub fn allreduce(&mut self, bytes: f64) {
        let n = self.num_ranks();
        if n < 2 {
            return;
        }
        if n.is_power_of_two() {
            let mut k = 1u32;
            while k < n {
                for r in 0..n {
                    let partner = r ^ k;
                    self.push(
                        r,
                        Op::SendRecv {
                            to: partner,
                            bytes,
                            from: partner,
                        },
                    );
                    self.compute(r, bytes / 8.0);
                }
                k <<= 1;
            }
        } else {
            self.reduce(0, bytes);
            self.bcast(0, bytes);
        }
    }

    /// Ring allgather: `n − 1` rounds, each rank forwarding one
    /// `block_bytes` block to its successor.
    pub fn allgather(&mut self, block_bytes: f64) {
        let n = self.num_ranks();
        if n < 2 {
            return;
        }
        for _ in 0..(n - 1) {
            for r in 0..n {
                let to = (r + 1) % n;
                let from = (r + n - 1) % n;
                self.push(
                    r,
                    Op::SendRecv {
                        to,
                        bytes: block_bytes,
                        from,
                    },
                );
            }
        }
    }

    /// Pairwise-exchange alltoall: `n − 1` rounds; with a power-of-two
    /// rank count partners are `r XOR i` (perfectly disjoint), otherwise
    /// a send/recv ring offset.
    pub fn alltoall(&mut self, bytes_per_pair: f64) {
        self.alltoallv(|_, _| bytes_per_pair);
    }

    /// Vector alltoall: `bytes(src, dst)` gives the per-pair payload.
    pub fn alltoallv(&mut self, bytes: impl Fn(u32, u32) -> f64) {
        let n = self.num_ranks();
        if n < 2 {
            return;
        }
        for i in 1..n {
            for r in 0..n {
                if n.is_power_of_two() {
                    let partner = r ^ i;
                    self.push(
                        r,
                        Op::SendRecv {
                            to: partner,
                            bytes: bytes(r, partner),
                            from: partner,
                        },
                    );
                } else {
                    let to = (r + i) % n;
                    let from = (r + n - i) % n;
                    self.push(
                        r,
                        Op::SendRecv {
                            to,
                            bytes: bytes(r, to),
                            from,
                        },
                    );
                }
            }
        }
    }

    /// Binomial-tree scatter: the root holds `n` blocks of `block_bytes`
    /// and each tree send carries the subtree's blocks (so message sizes
    /// halve down the tree).
    pub fn scatter(&mut self, root: u32, block_bytes: f64) {
        let n = self.num_ranks();
        if n < 2 {
            return;
        }
        for r in 0..n {
            let rel = (r + n - root) % n;
            let mut mask = 1u32;
            while mask < n {
                if rel & mask != 0 {
                    let src = (rel - mask + root) % n;
                    self.push(r, Op::Recv { from: src });
                    break;
                }
                mask <<= 1;
            }
            mask >>= 1;
            while mask > 0 {
                if rel + mask < n {
                    let dst = (rel + mask + root) % n;
                    // the subtree rooted at dst holds min(mask, n-rel-mask) blocks
                    let blocks = mask.min(n - rel - mask) as f64;
                    self.push(
                        r,
                        Op::Send {
                            to: dst,
                            bytes: block_bytes * blocks,
                        },
                    );
                }
                mask >>= 1;
            }
        }
    }

    /// Binomial-tree gather — the mirror of [`Self::scatter`].
    pub fn gather(&mut self, root: u32, block_bytes: f64) {
        let n = self.num_ranks();
        if n < 2 {
            return;
        }
        for r in 0..n {
            let rel = (r + n - root) % n;
            let mut mask = 1u32;
            while mask < n {
                if rel & mask != 0 {
                    let dst = (rel - mask + root) % n;
                    let blocks = mask.min(n - rel) as f64;
                    self.push(
                        r,
                        Op::Send {
                            to: dst,
                            bytes: block_bytes * blocks,
                        },
                    );
                    break;
                } else if rel + mask < n {
                    let src = (rel + mask + root) % n;
                    self.push(r, Op::Recv { from: src });
                }
                mask <<= 1;
            }
        }
    }

    /// Rabenseifner's large-message allreduce: recursive-halving
    /// reduce-scatter followed by a recursive-doubling allgather —
    /// bandwidth-optimal, what MVAPICH2 switches to for big buffers.
    /// Power-of-two ranks only; falls back to plain
    /// [`Self::allreduce`] otherwise.
    pub fn allreduce_rabenseifner(&mut self, bytes: f64) {
        let n = self.num_ranks();
        if n < 2 {
            return;
        }
        if !n.is_power_of_two() {
            self.allreduce(bytes);
            return;
        }
        self.reduce_scatter(bytes);
        // allgather the n scattered pieces by recursive doubling:
        // piece sizes double each round
        let mut k = n / 2;
        let mut chunk = bytes / n as f64;
        while k >= 1 {
            for r in 0..n {
                let partner = r ^ k;
                self.push(
                    r,
                    Op::SendRecv {
                        to: partner,
                        bytes: chunk,
                        from: partner,
                    },
                );
            }
            chunk *= 2.0;
            if k == 1 {
                break;
            }
            k /= 2;
        }
    }

    /// Recursive-halving reduce-scatter of a `total_bytes` buffer
    /// (power-of-two ranks; falls back to reduce + scatter-by-bcast
    /// otherwise).
    pub fn reduce_scatter(&mut self, total_bytes: f64) {
        let n = self.num_ranks();
        if n < 2 {
            return;
        }
        if n.is_power_of_two() {
            let mut step = 1u32;
            let mut chunk = total_bytes / 2.0;
            while step < n {
                let k = n / (2 * step);
                for r in 0..n {
                    let partner = r ^ k;
                    self.push(
                        r,
                        Op::SendRecv {
                            to: partner,
                            bytes: chunk,
                            from: partner,
                        },
                    );
                    self.compute(r, chunk / 8.0);
                }
                step <<= 1;
                chunk /= 2.0;
            }
        } else {
            self.reduce(0, total_bytes);
            self.bcast(0, total_bytes / n as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::network::Network;
    use orp_core::construct::random_general;

    fn net(n: u32) -> Network {
        let g = random_general(n, (n / 4).max(2), 8, 42).unwrap();
        Network::builder(&g).build()
    }

    #[test]
    fn barrier_completes_and_uses_log_rounds() {
        let net = net(16);
        let mut b = ProgramBuilder::new(16);
        b.barrier();
        let rep = Simulator::builder(&net).programs(b.build()).run().unwrap();
        // dissemination: 4 rounds × 16 ranks, minus loopbacks (none here)
        assert_eq!(rep.flows, 4 * 16);
        assert!(rep.time > 0.0);
    }

    #[test]
    fn bcast_reaches_everyone_with_n_minus_1_messages() {
        let net = net(16);
        for root in [0u32, 5] {
            let mut b = ProgramBuilder::new(16);
            b.bcast(root, 1e6);
            let rep = Simulator::builder(&net).programs(b.build()).run().unwrap();
            assert_eq!(rep.flows, 15, "root {root}");
        }
    }

    #[test]
    fn reduce_mirrors_bcast_message_count() {
        let net = net(16);
        let mut b = ProgramBuilder::new(16);
        b.reduce(3, 1e6);
        let rep = Simulator::builder(&net).programs(b.build()).run().unwrap();
        assert_eq!(rep.flows, 15);
        assert!(rep.flops > 0.0);
    }

    #[test]
    fn allreduce_recursive_doubling_flow_count() {
        let net = net(16);
        let mut b = ProgramBuilder::new(16);
        b.allreduce(8.0);
        let rep = Simulator::builder(&net).programs(b.build()).run().unwrap();
        // log2(16)=4 rounds × 16 ranks
        assert_eq!(rep.flows, 64);
    }

    #[test]
    fn allreduce_non_power_of_two_falls_back() {
        let g = random_general(12, 3, 8, 1).unwrap();
        let net = Network::builder(&g).build();
        let mut b = ProgramBuilder::new(12);
        b.allreduce(8.0);
        let rep = Simulator::builder(&net).programs(b.build()).run().unwrap();
        assert_eq!(rep.flows, 22); // 11 reduce + 11 bcast
    }

    #[test]
    fn alltoall_total_flow_count() {
        let net = net(8);
        let mut b = ProgramBuilder::new(8);
        b.alltoall(1e3);
        let rep = Simulator::builder(&net).programs(b.build()).run().unwrap();
        assert_eq!(rep.flows, 8 * 7);
        assert!((rep.bytes - 56.0 * 1e3).abs() < 1.0);
    }

    #[test]
    fn alltoallv_respects_size_function() {
        let net = net(8);
        let mut b = ProgramBuilder::new(8);
        b.alltoallv(|s, d| if (s + d) % 2 == 0 { 2e3 } else { 0.0 });
        let rep = Simulator::builder(&net).programs(b.build()).run().unwrap();
        assert_eq!(rep.flows, 56);
        let expect: f64 = (0..8u32)
            .flat_map(|s| (0..8u32).filter(move |&d| d != s).map(move |d| (s, d)))
            .map(|(s, d)| if (s + d) % 2 == 0 { 2e3 } else { 0.0 })
            .sum();
        assert!((rep.bytes - expect).abs() < 1.0);
    }

    #[test]
    fn allgather_ring_rounds() {
        let net = net(8);
        let mut b = ProgramBuilder::new(8);
        b.allgather(1e4);
        let rep = Simulator::builder(&net).programs(b.build()).run().unwrap();
        assert_eq!(rep.flows, 8 * 7);
    }

    #[test]
    fn reduce_scatter_halving() {
        let net = net(8);
        let mut b = ProgramBuilder::new(8);
        b.reduce_scatter(8e6);
        let rep = Simulator::builder(&net).programs(b.build()).run().unwrap();
        // 3 rounds × 8 ranks
        assert_eq!(rep.flows, 24);
        // volumes halve: 4e6 + 2e6 + 1e6 per rank
        assert!((rep.bytes - 8.0 * 7e6).abs() < 1.0);
    }

    #[test]
    fn mixed_program_runs() {
        let net = net(8);
        let mut b = ProgramBuilder::new(8);
        b.compute_all(1e8);
        b.alltoall(1e4);
        b.allreduce(64.0);
        b.barrier();
        let rep = Simulator::builder(&net).programs(b.build()).run().unwrap();
        assert!(rep.time > 1e-3); // at least the compute time
    }

    #[test]
    fn scatter_and_gather_mirror_each_other() {
        let net = net(16);
        let mut b = ProgramBuilder::new(16);
        b.scatter(0, 1e3);
        let rep_s = Simulator::builder(&net).programs(b.build()).run().unwrap();
        let mut b = ProgramBuilder::new(16);
        b.gather(0, 1e3);
        let rep_g = Simulator::builder(&net).programs(b.build()).run().unwrap();
        assert_eq!(rep_s.flows, 15);
        assert_eq!(rep_g.flows, 15);
        // tree sends carry whole subtrees: total bytes > 15 blocks,
        // and identical between the mirrored collectives
        assert!((rep_s.bytes - rep_g.bytes).abs() < 1.0);
        assert!(rep_s.bytes > 15.0 * 1e3);
    }

    #[test]
    fn rabenseifner_matches_volume_expectation() {
        let net = net(8);
        let total = 8e6;
        let mut b = ProgramBuilder::new(8);
        b.allreduce_rabenseifner(total);
        let rep = Simulator::builder(&net).programs(b.build()).run().unwrap();
        // reduce-scatter: 8·(4+2+1)MB/8… plus allgather mirror: the
        // whole thing moves 2·(n-1)/n·total per rank
        let expect = 2.0 * 7.0 / 8.0 * total * 8.0 / 8.0 * 8.0 / 8.0;
        let _ = expect;
        assert_eq!(rep.flows, 2 * 3 * 8); // 3 halving + 3 doubling rounds
        assert!(rep.bytes > total); // strictly more than one buffer
    }

    #[test]
    fn rabenseifner_non_power_of_two_falls_back() {
        let g = random_general(12, 3, 8, 1).unwrap();
        let net = Network::builder(&g).build();
        let mut b = ProgramBuilder::new(12);
        b.allreduce_rabenseifner(1e6);
        let rep = Simulator::builder(&net).programs(b.build()).run().unwrap();
        assert_eq!(rep.flows, 22);
    }

    #[test]
    fn collectives_on_two_ranks() {
        let g = random_general(2, 2, 4, 1).unwrap();
        let net = Network::builder(&g).build();
        let mut b = ProgramBuilder::new(2);
        b.bcast(0, 1e3);
        b.allreduce(8.0);
        b.barrier();
        b.alltoall(1e3);
        let rep = Simulator::builder(&net).programs(b.build()).run().unwrap();
        assert!(rep.time > 0.0);
        assert_eq!(rep.flows, 1 + 2 + 2 + 2);
    }
}
