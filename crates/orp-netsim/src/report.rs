//! Benchmark reporting: runs an NPB skeleton on a network and expresses
//! the result in the paper's currency (operations per second).

use crate::engine::{SimError, SimReport, Simulator, SimulatorBuilder};
use crate::network::Network;
use crate::npb::{Benchmark, Class};
use crate::sharing::SharingMode;
use serde::{Deserialize, Serialize};

/// Result of one benchmark on one network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchResult {
    /// Benchmark name (EP, IS, …).
    pub name: String,
    /// Simulated seconds.
    pub time: f64,
    /// Total flops executed (identical across topologies for the same
    /// benchmark — only `time` varies).
    pub flops: f64,
    /// Mega-operations per second — the paper's Fig. 9a/10a/11a metric.
    pub mops: f64,
    /// Number of simulated network flows.
    pub flows: u64,
    /// Bytes moved.
    pub bytes: f64,
}

impl BenchResult {
    /// Wraps a raw simulation report.
    pub fn from_report(name: &str, rep: SimReport) -> Self {
        Self {
            name: name.to_string(),
            time: rep.time,
            flops: rep.flops,
            mops: rep.flops / rep.time.max(1e-30) / 1e6,
            flows: rep.flows,
            bytes: rep.bytes,
        }
    }
}

/// Runs one NPB benchmark on `net` with `ranks` MPI processes.
///
/// # Errors
/// Propagates [`SimError`] from the simulation (deadlock or partition —
/// possible on degraded networks).
pub fn run_benchmark(
    net: &Network,
    bench: Benchmark,
    ranks: u32,
    class: Class,
    iters: usize,
) -> Result<BenchResult, SimError> {
    run_benchmark_with(net, bench, ranks, class, iters, SharingMode::default())
}

/// [`run_benchmark`] under an explicit throughput-sharing model.
///
/// # Errors
/// Propagates [`SimError`] from the simulation.
pub fn run_benchmark_with(
    net: &Network,
    bench: Benchmark,
    ranks: u32,
    class: Class,
    iters: usize,
    sharing: SharingMode,
) -> Result<BenchResult, SimError> {
    run_benchmark_configured(net, bench, ranks, class, iters, sharing, |b| b)
}

/// [`run_benchmark_with`] with a hook that finishes configuring the
/// simulator builder — checkpointing, watchdog, fault schedules, or any
/// other [`SimulatorBuilder`] knob the benchmark harness itself does not
/// model.
///
/// # Errors
/// Propagates [`SimError`] from the simulation.
pub fn run_benchmark_configured<F>(
    net: &Network,
    bench: Benchmark,
    ranks: u32,
    class: Class,
    iters: usize,
    sharing: SharingMode,
    configure: F,
) -> Result<BenchResult, SimError>
where
    F: for<'a> FnOnce(SimulatorBuilder<'a>) -> SimulatorBuilder<'a>,
{
    let programs = bench.build(ranks, class, iters);
    let builder = Simulator::builder(net).programs(programs).sharing(sharing);
    let rep = configure(builder).run()?;
    Ok(BenchResult::from_report(bench.name(), rep))
}

/// Runs a suite of benchmarks, returning results in order.
///
/// # Errors
/// Fails on the first benchmark whose simulation fails.
pub fn run_suite(
    net: &Network,
    benches: &[Benchmark],
    ranks: u32,
    iters: usize,
) -> Result<Vec<BenchResult>, SimError> {
    benches
        .iter()
        .map(|&b| run_benchmark(net, b, ranks, b.paper_class(), iters))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use orp_core::construct::random_general;

    #[test]
    fn suite_runs_all_benchmarks_small() {
        let g = random_general(16, 4, 8, 1).unwrap();
        let net = Network::builder(&g).build();
        let results = run_suite(&net, &Benchmark::all(), 16, 1).unwrap();
        assert_eq!(results.len(), 8);
        for r in &results {
            assert!(r.time > 0.0, "{}", r.name);
            assert!(r.mops > 0.0, "{}", r.name);
        }
    }

    #[test]
    fn mops_is_flops_over_time() {
        let g = random_general(16, 4, 8, 1).unwrap();
        let net = Network::builder(&g).build();
        let r = run_benchmark(&net, Benchmark::Ep, 16, Class::A, 1).unwrap();
        assert!((r.mops - r.flops / r.time / 1e6).abs() < r.mops * 1e-12);
    }

    #[test]
    fn serializes_to_json() {
        let g = random_general(16, 4, 8, 1).unwrap();
        let net = Network::builder(&g).build();
        let r = run_benchmark(&net, Benchmark::Ep, 16, Class::A, 1).unwrap();
        let j = serde_json::to_string(&r).unwrap();
        assert!(j.contains("EP"));
    }
}
